#!/bin/sh
# benchdiff.sh <old.json> <new.json> — compare two BENCH_pr<N>.json files
# (as written by benchjson.sh) and print per-benchmark ns/op, allocs/op,
# and B/op deltas (plus heap_bytes, the registry suite's session-footprint
# metric, when both files carry it).
# Regressions beyond 20% are flagged with "REGRESSION"; benchmarks
# present in only one file are listed as added/removed. Exits 1 when any
# regression is flagged, so CI can surface it — wire it in as non-blocking
# (continue-on-error): bench numbers from shared runners are noisy, and the
# committed JSONs are measured locally.
set -eu
old="${1:?usage: benchdiff.sh <old.json> <new.json>}"
new="${2:?usage: benchdiff.sh <old.json> <new.json>}"

awk -v oldfile="$old" -v newfile="$new" '
function parse(line, kv,   name, ns, allocs, b, heap) {
    # one benchmark entry per line: extract "name" plus the tracked metrics
    if (match(line, /"name": "[^"]*"/) == 0) return ""
    name = substr(line, RSTART + 9, RLENGTH - 10)
    ns = ""; allocs = ""; b = ""; heap = ""
    if (match(line, /"ns_per_op": [0-9.]+/))
        ns = substr(line, RSTART + 13, RLENGTH - 13)
    if (match(line, /"allocs_per_op": [0-9.]+/))
        allocs = substr(line, RSTART + 17, RLENGTH - 17)
    if (match(line, /"b_per_op": [0-9.]+/))
        b = substr(line, RSTART + 12, RLENGTH - 12)
    if (match(line, /"heap_bytes": [0-9.]+/))
        heap = substr(line, RSTART + 14, RLENGTH - 14)
    kv[name "/ns"] = ns
    kv[name "/allocs"] = allocs
    kv[name "/b"] = b
    kv[name "/heap"] = heap
    return name
}
function pct(o, n) {
    if (o == 0) return 0
    return (n - o) * 100.0 / o
}
function fmtpct(p) {
    return sprintf("%+.1f%%", p)
}
BEGIN {
    while ((getline line < oldfile) > 0) {
        name = parse(line, oldv)
        if (name != "") oldnames[name] = 1
    }
    while ((getline line < newfile) > 0) {
        name = parse(line, newv)
        if (name != "") { newnames[name] = 1; order[++n] = name }
    }
    printf "%-42s %14s %14s %9s   %8s %8s %9s   %10s %10s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old al", "new al", "delta", "old B/op", "new B/op", "delta"
    bad = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!(name in oldnames)) {
            printf "%-42s %14s %14s %9s   (added)\n", name, "-", newv[name "/ns"], "-"
            continue
        }
        ons = oldv[name "/ns"] + 0; nns = newv[name "/ns"] + 0
        oal = oldv[name "/allocs"] + 0; nal = newv[name "/allocs"] + 0
        ob = oldv[name "/b"] + 0; nb = newv[name "/b"] + 0
        dns = pct(ons, nns); dal = pct(oal, nal); db = pct(ob, nb)
        flag = ""
        if (dns > 20 || dal > 20 || db > 20) { flag = "  REGRESSION"; bad = 1 }
        printf "%-42s %14d %14d %9s   %8d %8d %9s   %10d %10d %9s%s\n", name, ons, nns, fmtpct(dns), oal, nal, fmtpct(dal), ob, nb, fmtpct(db), flag
        # heap_bytes: the registry session-footprint metric, compared
        # when both trajectories carry it (growth >20% flags too).
        oh = oldv[name "/heap"] + 0; nh = newv[name "/heap"] + 0
        if (oldv[name "/heap"] != "" && newv[name "/heap"] != "") {
            dh = pct(oh, nh)
            hflag = ""
            if (dh > 20) { hflag = "  REGRESSION"; bad = 1 }
            printf "%-42s %14d %14d %9s   (heap_bytes)%s\n", "  " name " heap", oh, nh, fmtpct(dh), hflag
        }
    }
    for (name in oldnames) {
        if (!(name in newnames))
            printf "%-42s %14s %14s %9s   (removed)\n", name, oldv[name "/ns"], "-", "-"
    }
    exit bad
}
'
