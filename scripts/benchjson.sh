#!/bin/sh
# benchjson.sh <label> — convert `go test -bench` output (stdin) into the
# perf-trajectory JSON recorded as BENCH_<label>.json at the repo root.
# Each entry carries the benchmark name (CPU-count suffix stripped), the
# owning package, and the measured ns/op, B/op, and allocs/op — plus the
# custom units the registry suite reports via b.ReportMetric: solver_vars
# (lazy-encoder coverage) and heap_bytes (one warmed session's footprint).
set -eu
label="${1:?usage: benchjson.sh <label> < bench-output}"

printf '{\n  "label": "%s",\n  "suite": "BenchmarkConcretize|BenchmarkSessionWarm|BenchmarkPortfolio|BenchmarkSessionResolver|BenchmarkRegistry",\n  "benchmarks": [\n' "$label"
awk '
/^pkg: /       { pkg = $2 }
/^goos: /      { goos = $2 }
/^goarch: /    { goarch = $2 }
/^Benchmark/ && $3 == "ns/op" || /^Benchmark/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""; b = ""; allocs = ""; vars = ""; heap = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op")       ns = $(i - 1)
        if ($i == "B/op")        b = $(i - 1)
        if ($i == "allocs/op")   allocs = $(i - 1)
        if ($i == "solver_vars") vars = $(i - 1)
        if ($i == "heap_bytes")  heap = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"pkg\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, pkg, iters, ns
    if (b != "")      printf ", \"b_per_op\": %s", b
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (vars != "")   printf ", \"solver_vars\": %s", vars
    if (heap != "")   printf ", \"heap_bytes\": %s", heap
    printf "}"
}
END { if (n) printf "\n" }
'
printf '  ]\n}\n'
