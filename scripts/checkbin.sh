#!/usr/bin/env bash
# checkbin.sh — fail when any committed file is a compiled binary.
#
# A stray `go test -c` artifact or compiled tool committed to the tree
# bloats every clone forever (git history is append-only). This guard
# scans every tracked file's magic bytes for the common executable
# formats: ELF (Linux), Mach-O (macOS, thin and fat), and PE (Windows).
# Shell scripts and other executable-bit text files are fine.
set -euo pipefail
cd "$(dirname "$0")/.."

bad=0
while IFS= read -r f; do
    [ -f "$f" ] || continue
    magic=$(head -c 4 "$f" | od -An -tx1 | tr -d ' \n')
    case "$magic" in
        7f454c46)          kind="ELF" ;;          # \x7fELF
        feedface|feedfacf) kind="Mach-O" ;;       # 32/64-bit
        cefaedfe|cffaedfe) kind="Mach-O (LE)" ;;
        cafebabe|bebafeca) kind="Mach-O fat" ;;
        4d5a????)          kind="PE" ;;           # MZ header
        *) continue ;;
    esac
    echo "checkbin: committed binary ($kind): $f" >&2
    bad=1
done < <(git ls-files)

if [ "$bad" -ne 0 ]; then
    echo "checkbin: remove the binaries above from the index (git rm --cached) and rebuild them locally instead" >&2
    exit 1
fi
echo "checkbin: no committed binaries"
