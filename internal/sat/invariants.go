//go:build satcheck

package sat

import "fmt"

// This file is the checked solver build: a deep structural audit of the
// solver's propagation state, compiled in only under the satcheck build
// tag. The mutating entry points (Solve, TightenPB, DetachClause, RemovePB,
// RetireGuard, ForgetLearnts) call checkInvariants at their boundaries;
// without the tag those calls are empty functions (invariants_off.go) and
// cost nothing. CI runs the full test suite — including the differential
// and churn harnesses — with -tags satcheck, so every constraint edit those
// tests perform is followed by a full audit.
//
// The invariants are keyed to this solver's actual representation choices,
// not to a generic CDCL textbook:
//
//   - clauses with two or more literals are watched at exactly
//     lits[0]/lits[1] (keyed by the literal's negation), but unit learnt
//     clauses are stored unwatched, and deleted clauses may linger on watch
//     lists until lazy compaction — so the watch audit is one-directional:
//     every live clause must be on its two watch lists; watch lists may
//     hold extra (deleted) entries;
//   - a unit learnt clause recorded under assumptions can legitimately be
//     unsatisfied at level 0 (its assignment was rolled back with the
//     assumption levels), so closure-under-propagation is only asserted
//     for watched clauses and PB constraints;
//   - level-0 reasons may name deleted clauses (conflict analysis never
//     dereferences level-0 reasons), but never a retired PB slot — removePB
//     scrubs those eagerly, and slot recycling depends on it.

// satCheckEnabled reports whether this binary carries the checked solver
// build (the satcheck build tag).
const satCheckEnabled = true

// checkInvariants panics if the solver's internal state is inconsistent.
// It is called by the mutating entry points at their boundaries and
// compiles to a no-op without the satcheck build tag.
func (s *Solver) checkInvariants(site string) {
	if err := s.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("sat: invariant violation after %s: %v", site, err))
	}
}

// CheckInvariants audits the solver's internal state: watcher coverage for
// every live clause, PB counter/occurrence/slot consistency against the
// trail, branch-heap discipline (auxiliary variables never branchable,
// unassigned decision variables always available), and closure of the
// level-0 trail under unit and PB propagation. It returns nil on a solver
// that is inconsistent at the top level (ok == false): such a solver is
// frozen and its partial state makes no promises. It must be called at
// decision level 0, i.e. between solves — anywhere the solver's public
// mutating API is legal.
//
// Without the satcheck build tag this walk is not compiled in and the
// result is always nil.
func (s *Solver) CheckInvariants() error {
	if !s.ok {
		return nil
	}
	if lvl := s.decisionLevel(); lvl != 0 {
		return fmt.Errorf("decision level is %d at a checkpoint; want 0", lvl)
	}
	if s.qhead != len(s.trail) {
		return fmt.Errorf("propagation queue not drained: qhead=%d, trail length %d", s.qhead, len(s.trail))
	}
	if err := s.checkGeometry(); err != nil {
		return err
	}
	if err := s.checkTrail(); err != nil {
		return err
	}
	if err := s.checkHeap(); err != nil {
		return err
	}
	if err := s.checkClauseList(s.clauses, "original"); err != nil {
		return err
	}
	if err := s.checkClauseList(s.learnts, "learnt"); err != nil {
		return err
	}
	deleted := 0
	for _, c := range s.clauses {
		if c.deleted {
			deleted++
		}
	}
	if deleted != s.detached {
		return fmt.Errorf("detached counter is %d but the clause list holds %d deleted clauses", s.detached, deleted)
	}
	return s.checkPBState()
}

// checkGeometry verifies the per-variable and per-literal arrays all agree
// on the variable count (index 0 is the unused sentinel slot).
func (s *Solver) checkGeometry() error {
	if n := s.nVars + 1; len(s.assigns) != n || len(s.level) != n || len(s.trailPos) != n ||
		len(s.reasons) != n || len(s.polarity) != n || len(s.decision) != n || len(s.seen) != n {
		return fmt.Errorf("per-variable arrays out of step with nVars=%d", s.nVars)
	}
	if n := 2 * (s.nVars + 1); len(s.watches) != n || len(s.pbOcc) != n {
		return fmt.Errorf("per-literal arrays out of step with nVars=%d: %d watch lists, %d occurrence lists, want %d",
			s.nVars, len(s.watches), len(s.pbOcc), n)
	}
	return nil
}

// checkTrail verifies the level-0 trail and the assignment arrays describe
// the same state, and that no surviving reason names a retired PB slot.
func (s *Solver) checkTrail() error {
	assigned := 0
	for v := 1; v <= s.nVars; v++ {
		if s.assigns[v] != lUndef {
			assigned++
		}
	}
	if assigned != len(s.trail) {
		return fmt.Errorf("%d variables assigned but the trail holds %d literals", assigned, len(s.trail))
	}
	for i, l := range s.trail {
		v := l.Var()
		if v < 1 || v > s.nVars {
			return fmt.Errorf("trail[%d] names out-of-range variable %d", i, v)
		}
		if s.value(l) != lTrue {
			return fmt.Errorf("trail literal %d is not true", l)
		}
		if s.level[v] != 0 {
			return fmt.Errorf("trail variable %d carries level %d on the level-0 trail", v, s.level[v])
		}
		if int(s.trailPos[v]) != i {
			return fmt.Errorf("trail variable %d records position %d but sits at %d", v, s.trailPos[v], i)
		}
		if r := s.reasons[v]; r.pb != 0 {
			pi := int(r.pb - 1)
			if pi >= len(s.pbs) || s.pbs[pi] == nil {
				return fmt.Errorf("trail variable %d's reason names retired PB slot %d", v, pi)
			}
		}
	}
	return nil
}

// checkHeap verifies branch-heap discipline: auxiliary (defined) variables
// never become branchable, and every unassigned decision variable is
// available to pickBranchVar — a decision variable missing from the heap
// while unassigned would silently shrink the search space.
func (s *Solver) checkHeap() error {
	for v := 1; v <= s.nVars; v++ {
		switch {
		case !s.decision[v] && s.order.inHeap(v):
			return fmt.Errorf("auxiliary variable %d is in the branch heap", v)
		case s.decision[v] && s.assigns[v] == lUndef && !s.order.inHeap(v):
			return fmt.Errorf("unassigned decision variable %d is missing from the branch heap", v)
		}
	}
	return nil
}

// checkClauseList audits one clause database: literal ranges, watcher
// coverage for live multi-literal clauses, and closure of the level-0
// trail under unit propagation. Unit learnt clauses are stored unwatched
// and make no closure promise (see the file comment); original clauses are
// always stored with at least two literals.
func (s *Solver) checkClauseList(cs []*clause, kind string) error {
	for _, c := range cs {
		if c.deleted {
			if kind == "learnt" {
				return fmt.Errorf("deleted clause %v still in the learnt list", c.lits)
			}
			continue // lingers on watch lists until lazy compaction; nothing to audit
		}
		if len(c.lits) == 0 {
			return fmt.Errorf("empty %s clause stored", kind)
		}
		if kind == "original" && len(c.lits) < 2 {
			return fmt.Errorf("unit original clause %v stored; units are enqueued, never stored", c.lits)
		}
		for _, l := range c.lits {
			if l == 0 || l.Var() > s.nVars {
				return fmt.Errorf("%s clause %v holds out-of-range literal %d", kind, c.lits, l)
			}
		}
		if len(c.lits) < 2 {
			continue
		}
		for _, w := range [2]Lit{c.lits[0], c.lits[1]} {
			if !s.onWatchList(c, w) {
				return fmt.Errorf("%s clause %v is not on the watch list of its watched literal %d", kind, c.lits, w)
			}
		}
		satisfied, undef := false, 0
		for _, l := range c.lits {
			switch s.value(l) {
			case lTrue:
				satisfied = true
			case lUndef:
				undef++
			}
		}
		if !satisfied {
			switch undef {
			case 0:
				return fmt.Errorf("%s clause %v is falsified at level 0 with ok still true", kind, c.lits)
			case 1:
				return fmt.Errorf("%s clause %v is unit at level 0 but its forced literal was never propagated", kind, c.lits)
			}
		}
	}
	return nil
}

// onWatchList reports whether clause c appears on the watch list keyed by
// watched literal w (lists are keyed by the literal whose truth triggers
// the clause, i.e. the watched literal's negation).
func (s *Solver) onWatchList(c *clause, w Lit) bool {
	for _, wc := range s.watches[w.Neg().index()] {
		if wc == c {
			return true
		}
	}
	return false
}

// checkPBState audits the pseudo-Boolean subsystem: slot/free-list
// discipline (pbs[i] == nil exactly when i is on the free list, pbActive
// counts the live slots), per-constraint counter state against the trail,
// exactly-once occurrence coverage in both directions, and closure of the
// level-0 trail under PB propagation.
func (s *Solver) checkPBState() error {
	if len(s.pbGens) < len(s.pbs) {
		return fmt.Errorf("%d generation counters for %d PB slots", len(s.pbGens), len(s.pbs))
	}
	free := make(map[int32]bool, len(s.pbFree))
	for _, pi := range s.pbFree {
		if int(pi) >= len(s.pbs) {
			return fmt.Errorf("free list names out-of-range PB slot %d", pi)
		}
		if free[pi] {
			return fmt.Errorf("PB slot %d is on the free list twice", pi)
		}
		if s.pbs[pi] != nil {
			return fmt.Errorf("live PB slot %d is on the free list", pi)
		}
		free[pi] = true
	}
	live := 0
	for pi, p := range s.pbs {
		if p == nil {
			if !free[int32(pi)] {
				return fmt.Errorf("empty PB slot %d is missing from the free list", pi)
			}
			continue
		}
		live++
		if err := s.checkPB(int32(pi), p); err != nil {
			return err
		}
	}
	if live != s.pbActive {
		return fmt.Errorf("pbActive is %d but %d slots hold live constraints", s.pbActive, live)
	}
	for idx, occ := range s.pbOcc {
		for _, pi := range occ {
			if int(pi) >= len(s.pbs) || s.pbs[pi] == nil {
				return fmt.Errorf("occurrence list %d names retired PB slot %d", idx, pi)
			}
			if _, ok := s.pbs[pi].wmap[litFromIndex(idx)]; !ok {
				return fmt.Errorf("occurrence list of literal %d names PB slot %d, which does not contain it", litFromIndex(idx), pi)
			}
		}
	}
	return nil
}

// checkPB audits one live PB constraint: representation coherence
// (lits/weights/wmap/maxW agree, weights positive), the incremental
// sumTrue counter against the actual trail, exactly-once membership on its
// literals' occurrence lists, and the absence of pending PB propagation.
func (s *Solver) checkPB(pi int32, p *pbConstraint) error {
	if len(p.lits) != len(p.weights) || len(p.lits) != len(p.wmap) {
		return fmt.Errorf("PB slot %d representation out of step: %d lits, %d weights, %d map entries",
			pi, len(p.lits), len(p.weights), len(p.wmap))
	}
	sum, maxW := int64(0), int64(0)
	for i, l := range p.lits {
		if l == 0 || l.Var() > s.nVars {
			return fmt.Errorf("PB slot %d holds out-of-range literal %d", pi, l)
		}
		w := p.weights[i]
		if w <= 0 {
			return fmt.Errorf("PB slot %d holds non-positive weight %d", pi, w)
		}
		if p.wmap[l] != w {
			return fmt.Errorf("PB slot %d weight map disagrees on literal %d: %d vs %d", pi, l, p.wmap[l], w)
		}
		if w > maxW {
			maxW = w
		}
		if s.value(l) == lTrue {
			sum += w
		}
	}
	if maxW != p.maxW {
		return fmt.Errorf("PB slot %d caches maxW=%d but the heaviest weight is %d", pi, p.maxW, maxW)
	}
	if sum != p.sumTrue {
		return fmt.Errorf("PB slot %d counter out of sync: sumTrue=%d but the trail satisfies weight %d", pi, p.sumTrue, sum)
	}
	if p.sumTrue > p.k {
		return fmt.Errorf("PB slot %d is violated at level 0 (sumTrue=%d > k=%d) with ok still true", pi, p.sumTrue, p.k)
	}
	for _, l := range p.lits {
		n := 0
		for _, q := range s.pbOcc[l.index()] {
			if q == pi {
				n++
			}
		}
		if n != 1 {
			return fmt.Errorf("PB slot %d appears %d times on the occurrence list of literal %d; want exactly once", pi, n, l)
		}
	}
	for i, l := range p.lits {
		if s.value(l) == lUndef && p.sumTrue+p.weights[i] > p.k {
			return fmt.Errorf("PB slot %d forces literal %d at level 0 but it was never propagated", pi, l.Neg())
		}
	}
	return nil
}

// litFromIndex inverts Lit.index: 2v -> +v, 2v+1 -> -v.
func litFromIndex(idx int) Lit {
	if idx%2 == 1 {
		return Lit(-int32(idx / 2))
	}
	return Lit(int32(idx / 2))
}
