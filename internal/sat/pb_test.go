package sat

import "testing"

// TestPBDuplicateLiteralMerging: duplicate literals in AddPB must merge
// their weights into a single term.
func TestPBDuplicateLiteralMerging(t *testing.T) {
	s := New()
	a := s.NewVar()
	// 2a + 3a <= 4 merges to 5a <= 4, so a is forced false immediately.
	if !s.AddPB([]PBTerm{{Lit(a), 2}, {Lit(a), 3}}, 4) {
		t.Fatal("AddPB should succeed (constraint is satisfiable with a=false)")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if s.ValueOf(a) {
		t.Error("a must be false: merged weight 5 exceeds k=4")
	}
	// Adding the requirement a makes it unsat.
	if s.AddClause(Lit(a)) {
		t.Error("AddClause(a) should fail against forced !a")
	}

	s2 := New()
	b := s2.NewVar()
	// 2b + 3b <= 5 merges to 5b <= 5: b may still be true.
	s2.AddPB([]PBTerm{{Lit(b), 2}, {Lit(b), 3}}, 5)
	s2.AddClause(Lit(b))
	if got := s2.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat (merged weight exactly k)", got)
	}
	if !s2.ValueOf(b) {
		t.Error("b should be true")
	}
}

// TestPBAlreadyTrueAtLevelZero: literals already true at level 0 must count
// toward sumTrue when the constraint is added, and force the remaining
// too-heavy literals false right away.
func TestPBAlreadyTrueAtLevelZero(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Lit(a)) // a true at level 0 before the PB exists
	// 4a + 3b + 1c <= 5: with a already true, slack is 1, so b is forced
	// false at add time while c stays free.
	if !s.AddPB([]PBTerm{{Lit(a), 4}, {Lit(b), 3}, {Lit(c), 1}}, 5) {
		t.Fatal("AddPB should succeed")
	}
	if s.value(Lit(b)) != lFalse {
		t.Error("b should be forced false immediately at level 0")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if s.ValueOf(b) {
		t.Error("b must be false in the model")
	}
}

// TestPBConflictInsideAddPB: a constraint already violated by level-0
// assignments must make AddPB return false and poison the solver.
func TestPBConflictInsideAddPB(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Lit(a))
	// 6a <= 5 is violated the moment it is added.
	if s.AddPB([]PBTerm{{Lit(a), 6}}, 5) {
		t.Fatal("AddPB should return false: constraint violated at level 0")
	}
	if s.Okay() {
		t.Error("solver should be in the unsat state")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

// TestPBConflictViaInitialPropagation: AddPB's own initial propagation can
// collide with existing clauses; that conflict must surface as false too.
func TestPBConflictViaInitialPropagation(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Lit(a))
	s.AddClause(Lit(b))
	// With a true, b (weight 3, slack 1) is forced false by AddPB's initial
	// propagation — contradicting the unit clause b.
	if s.AddPB([]PBTerm{{Lit(a), 4}, {Lit(b), 3}}, 5) {
		t.Fatal("AddPB should return false: forced !b contradicts clause b")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

// TestPBNegativeLiterals: PB terms over negated literals propagate through
// the same counter machinery.
func TestPBNegativeLiterals(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// !a + !b + !c <= 1: at least two of a,b,c must be true.
	s.AddPB([]PBTerm{{Lit(a).Neg(), 1}, {Lit(b).Neg(), 1}, {Lit(c).Neg(), 1}}, 1)
	s.AddClause(Lit(a).Neg())
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.ValueOf(b) || !s.ValueOf(c) {
		t.Error("with a false, both b and c must be true")
	}
}
