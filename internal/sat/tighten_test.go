package sat

import "testing"

// TestTightenPBStrengthens: lowering k must immediately constrain the next
// solve, and the counter state carried over from the weaker bound must
// stay correct across repeated tightenings.
func TestTightenPBStrengthens(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	ref, ok := s.AddPBRef([]PBTerm{{Lit(a), 4}, {Lit(b), 2}, {Lit(c), 1}}, 7)
	if !ok || !ref.Valid() {
		t.Fatal("AddPBRef failed")
	}
	s.AddClause(Lit(c)) // c true at level 0: sumTrue = 1 carried forward
	if got := s.Solve(Lit(a), Lit(b)); got != Sat {
		t.Fatalf("Solve under 7 = %v, want Sat (4+2+1 <= 7)", got)
	}
	if !s.TightenPB(ref, 5) {
		t.Fatal("TightenPB to 5 should keep the solver consistent")
	}
	if got := s.Solve(Lit(a), Lit(b)); got != Unsat {
		t.Fatalf("Solve a,b under 5 = %v, want Unsat (4+2+1 > 5)", got)
	}
	if got := s.Solve(Lit(a)); got != Sat {
		t.Fatalf("Solve a under 5 = %v, want Sat (4+1 <= 5)", got)
	}
	if s.ValueOf(b) {
		t.Error("b must be false: 4+2+1 exceeds the tightened bound")
	}
	// Tighten again: now even a alone (with forced c) no longer fits, so
	// the tighten call itself must propagate !a at the top level.
	if !s.TightenPB(ref, 3) {
		t.Fatal("TightenPB to 3 should keep the solver consistent")
	}
	if s.value(Lit(a)) != lFalse {
		t.Error("a should be forced false at level 0 by the tighten (4+1 > 3)")
	}
	if got := s.Solve(Lit(a)); got != Unsat {
		t.Fatalf("Solve a under 3 = %v, want Unsat", got)
	}
	if got := s.Solve(Lit(b)); got != Sat {
		t.Fatalf("Solve b under 3 = %v, want Sat (2+1 <= 3)", got)
	}
}

// TestTightenPBTopLevelConflict: tightening below the weight already
// committed at level 0 is a top-level contradiction and must report it
// exactly like AddPB does.
func TestTightenPBTopLevelConflict(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	ref, ok := s.AddPBRef([]PBTerm{{Lit(a), 3}, {Lit(b), 2}}, 5)
	if !ok {
		t.Fatal("AddPBRef failed")
	}
	s.AddClause(Lit(a))
	s.AddClause(Lit(b))
	if s.TightenPB(ref, 4) {
		t.Fatal("TightenPB below the level-0 committed weight must fail")
	}
	if s.Okay() {
		t.Error("solver must be inconsistent after a failed tighten")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

// TestTightenPBContracts: the misuse paths are programming errors and
// must panic rather than silently corrupt the constraint store.
func TestTightenPBContracts(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}

	s := New()
	a, b := s.NewVar(), s.NewVar()
	ref, _ := s.AddPBRef([]PBTerm{{Lit(a), 2}, {Lit(b), 3}}, 4)

	mustPanic("zero ref", func() { s.TightenPB(PBRef{}, 1) })
	mustPanic("non-strengthening equal k", func() { s.TightenPB(ref, 4) })
	mustPanic("non-strengthening larger k", func() { s.TightenPB(ref, 9) })

	// Retiring recycles the slot; the old handle must be detected as
	// stale even after a new constraint moves in.
	g := Lit(s.NewVar())
	gref, _ := s.AddPBRef([]PBTerm{{Lit(a), 2}, {g, 5}}, 7)
	if !s.RetireGuard(g) {
		t.Fatal("RetireGuard failed")
	}
	c := s.NewVar()
	if _, ok := s.AddPBRef([]PBTerm{{Lit(c), 1}}, 1); !ok {
		t.Fatal("AddPBRef into recycled slot failed")
	}
	mustPanic("stale ref after retirement", func() { s.TightenPB(gref, 1) })
}

// TestTightenPBSlotStability: a 100-round descent-style tighten loop must
// not allocate constraint slots or occurrence-list entries — that is the
// whole point of tightening in place.
func TestTightenPBSlotStability(t *testing.T) {
	s := New()
	const n = 10
	terms := make([]PBTerm, n)
	var total int64
	for i := range terms {
		terms[i] = PBTerm{Lit: Lit(s.NewVar()), Weight: int64(i + 1)}
		total += int64(i + 1)
	}
	ref, ok := s.AddPBRef(terms, total+100)
	if !ok {
		t.Fatal("AddPBRef failed")
	}
	slots, occ, vars := s.PBSlots(), s.PBOccupancy(), s.NumVars()
	for k := total + 99; k > total-1; k-- {
		if !s.TightenPB(ref, k) {
			t.Fatalf("TightenPB to %d failed", k)
		}
		if got := s.Solve(); got != Sat {
			t.Fatalf("k=%d: Solve = %v, want Sat", k, got)
		}
		var sum int64
		for _, tm := range terms {
			if s.ValueOf(tm.Lit.Var()) {
				sum += tm.Weight
			}
		}
		if sum > k {
			t.Fatalf("k=%d: model weight %d violates the tightened bound", k, sum)
		}
	}
	if s.PBSlots() != slots {
		t.Errorf("PBSlots grew: %d -> %d", slots, s.PBSlots())
	}
	if s.PBOccupancy() != occ {
		t.Errorf("PBOccupancy changed: %d -> %d", occ, s.PBOccupancy())
	}
	if s.NumVars() != vars {
		t.Errorf("NumVars grew: %d -> %d", vars, s.NumVars())
	}
	if s.ActivePBs() != 1 {
		t.Errorf("ActivePBs = %d, want 1", s.ActivePBs())
	}
}
