package sat

// varHeap is a max-heap of variables ordered by activity, with an index map
// for decrease-key, as in MiniSat's order heap.
type varHeap struct {
	heap     []int
	indices  []int // var -> heap position+1, 0 if absent
	activity *[]float64
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{activity: act, indices: make([]int, 1)}
}

func (h *varHeap) less(a, b int) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) inHeap(v int) bool {
	return v < len(h.indices) && h.indices[v] != 0
}

func (h *varHeap) insert(v int) {
	for v >= len(h.indices) {
		h.indices = append(h.indices, 0)
	}
	if h.indices[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap)
	h.percolateUp(len(h.heap) - 1)
}

// decrease re-heapifies after v's activity increased (moves it up).
func (h *varHeap) decrease(v int) {
	if !h.inHeap(v) {
		return
	}
	h.percolateUp(h.indices[v] - 1)
}

func (h *varHeap) removeMin() int {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = 0
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 1
		h.percolateDown(0)
	}
	return v
}

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.indices[h.heap[i]] = i + 1
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = i + 1
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	for {
		left := 2*i + 1
		if left >= len(h.heap) {
			break
		}
		child := left
		if right := left + 1; right < len(h.heap) && h.less(h.heap[right], h.heap[left]) {
			child = right
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = i + 1
		i = child
	}
	h.heap[i] = v
	h.indices[v] = i + 1
}
