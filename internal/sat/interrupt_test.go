package sat

import (
	"testing"
	"time"
)

// encodePHP adds the pigeonhole principle PHP(pigeons, pigeons-1) to s:
// every pigeon sits in some hole, no two pigeons share a hole. It is
// unsatisfiable and exponentially hard for clause-learning solvers, which
// makes it a deterministic "long-running search" for interrupt tests.
func encodePHP(s *Solver, pigeons int) {
	holes := pigeons - 1
	v := make([][]int, pigeons)
	for i := range v {
		v[i] = make([]int, holes)
		for h := range v[i] {
			v[i][h] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = Lit(v[i][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for i := 0; i < pigeons; i++ {
			for j := i + 1; j < pigeons; j++ {
				s.AddClause(Lit(v[i][h]).Neg(), Lit(v[j][h]).Neg())
			}
		}
	}
}

func phpSolver(pigeons int) *Solver {
	s := New()
	encodePHP(s, pigeons)
	return s
}

func TestInterruptMidSolve(t *testing.T) {
	s := phpSolver(11)
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()

	// Let the search get going, then stop it and measure how long the
	// solver takes to notice.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	s.Interrupt()
	select {
	case st := <-done:
		if st != Canceled {
			t.Fatalf("Solve = %v, want Canceled (did the instance finish before the interrupt?)", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Solve did not return after Interrupt")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("Solve took %v to honor Interrupt, want prompt return", d)
	}

	// The solver must remain consistent and reusable: after re-arming,
	// a budgeted solve on the same hard instance runs and reports budget
	// exhaustion (Unknown), not cancellation.
	s.ClearInterrupt()
	s.MaxConflicts = s.Conflicts + 50
	if st := s.Solve(); st != Unknown {
		t.Fatalf("budgeted re-solve = %v, want Unknown", st)
	}
}

func TestInterruptIsSticky(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Lit(a))
	s.Interrupt()
	if st := s.Solve(); st != Canceled {
		t.Fatalf("Solve with pending interrupt = %v, want Canceled", st)
	}
	if st := s.Solve(); st != Canceled {
		t.Fatalf("second Solve without ClearInterrupt = %v, want Canceled", st)
	}
	if !s.Interrupted() {
		t.Fatal("Interrupted() = false after Interrupt")
	}
	s.ClearInterrupt()
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve after ClearInterrupt = %v, want Sat", st)
	}
	if !s.ValueOf(a) {
		t.Fatal("model lost after interrupt cycle")
	}
}

func TestBudgetStillReportsUnknown(t *testing.T) {
	// Budget exhaustion and cancellation must stay distinguishable.
	s := phpSolver(9)
	s.MaxConflicts = 30
	if st := s.Solve(); st != Unknown {
		t.Fatalf("budgeted Solve = %v, want Unknown", st)
	}
	if s.Interrupted() {
		t.Fatal("budget exhaustion must not set the interrupt flag")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := New().Config()
	if cfg.RestartBase != DefaultRestartBase || cfg.DescentStep != 1 || cfg.PositiveFirst {
		t.Fatalf("default config = %+v", cfg)
	}
	got := NewWithConfig(Config{RestartBase: 40, DescentStep: 4, PositiveFirst: true}).Config()
	if got.RestartBase != 40 || got.DescentStep != 4 || !got.PositiveFirst {
		t.Fatalf("config = %+v", got)
	}
}

func TestConfigPolarity(t *testing.T) {
	// With no constraints, the first decision on a fresh variable follows
	// the configured initial polarity.
	neg := New()
	v := neg.NewVar()
	if st := neg.Solve(); st != Sat || neg.ValueOf(v) {
		t.Fatalf("negative-first default: status %v, value %v", st, neg.ValueOf(v))
	}
	pos := NewWithConfig(Config{PositiveFirst: true})
	w := pos.NewVar()
	if st := pos.Solve(); st != Sat || !pos.ValueOf(w) {
		t.Fatalf("positive-first: status %v, value %v", st, pos.ValueOf(w))
	}
}

func TestConfigRestartBaseSolves(t *testing.T) {
	// An aggressive restart schedule must not change answers, only the
	// search path: the hard-but-small PHP(6) stays UNSAT under both.
	for _, base := range []int64{1, 10, 1000} {
		s := NewWithConfig(Config{RestartBase: base})
		encodePHP(s, 6)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("RestartBase=%d: PHP(6) = %v, want Unsat", base, st)
		}
	}
}
