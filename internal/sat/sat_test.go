package sat

import (
	"math/rand"
	"testing"
)

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(Lit(a), Lit(b))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.ValueOf(a) && !s.ValueOf(b) {
		t.Error("model does not satisfy (a | b)")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Lit(a))
	if ok := s.AddClause(Lit(a).Neg()); ok {
		t.Error("AddClause of contradiction should return false")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestUnitPropagationChain(t *testing.T) {
	s := New()
	vs := make([]int, 10)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	// v0, and vi -> vi+1
	s.AddClause(Lit(vs[0]))
	for i := 0; i < 9; i++ {
		s.AddClause(Lit(vs[i]).Neg(), Lit(vs[i+1]))
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	for i, v := range vs {
		if !s.ValueOf(v) {
			t.Errorf("v%d should be true", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// 4 pigeons, 3 holes: classic small UNSAT instance that requires search.
	s := New()
	p := make([][]int, 4)
	for i := range p {
		p[i] = make([]int, 3)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < 4; i++ {
		s.AddClause(Lit(p[i][0]), Lit(p[i][1]), Lit(p[i][2]))
	}
	for j := 0; j < 3; j++ {
		for i1 := 0; i1 < 4; i1++ {
			for i2 := i1 + 1; i2 < 4; i2++ {
				s.AddClause(Lit(p[i1][j]).Neg(), Lit(p[i2][j]).Neg())
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("pigeonhole: Solve = %v, want Unsat", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(Lit(a).Neg(), Lit(b))
	if got := s.Solve(Lit(a)); got != Sat {
		t.Fatalf("Solve(a) = %v", got)
	}
	if !s.ValueOf(a) || !s.ValueOf(b) {
		t.Error("assumption a should force b")
	}
	s.AddClause(Lit(b).Neg())
	if got := s.Solve(Lit(a)); got != Unsat {
		t.Fatalf("Solve(a) after !b = %v, want Unsat", got)
	}
	// Without the assumption still satisfiable.
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	if s.ValueOf(a) {
		t.Error("a must be false now")
	}
}

func TestPBAtMostOne(t *testing.T) {
	s := New()
	vs := []int{s.NewVar(), s.NewVar(), s.NewVar()}
	terms := []PBTerm{}
	for _, v := range vs {
		terms = append(terms, PBTerm{Lit(v), 1})
	}
	s.AddPB(terms, 1)
	s.AddClause(Lit(vs[0]))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	count := 0
	for _, v := range vs {
		if s.ValueOf(v) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("at-most-1 violated: %d true", count)
	}
	// forcing two of them is unsat
	s.AddClause(Lit(vs[1]))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestPBWeighted(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// 5a + 3b + 2c <= 5
	s.AddPB([]PBTerm{{Lit(a), 5}, {Lit(b), 3}, {Lit(c), 2}}, 5)
	s.AddClause(Lit(b))
	s.AddClause(Lit(c))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if s.ValueOf(a) {
		t.Error("a must be false: 5+3+2 > 5")
	}
	s2 := New()
	a2, b2 := s2.NewVar(), s2.NewVar()
	s2.AddPB([]PBTerm{{Lit(a2), 5}, {Lit(b2), 3}}, 4)
	s2.AddClause(Lit(a2))
	if got := s2.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat (a alone exceeds k)", got)
	}
}

func TestPBTopLevelPropagation(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Lit(a))
	// a already true, weight 4 of 5; b weight 3 must be forced false.
	s.AddPB([]PBTerm{{Lit(a), 4}, {Lit(b), 3}}, 5)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if s.ValueOf(b) {
		t.Error("b should be forced false at top level")
	}
}

// bruteForceSat checks satisfiability of a CNF + PB set by enumeration.
func bruteForceSat(nVars int, cnf [][]Lit, pbs []struct {
	terms []PBTerm
	k     int64
}) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		val := func(l Lit) bool {
			bit := mask>>(l.Var()-1)&1 == 1
			if l < 0 {
				return !bit
			}
			return bit
		}
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				if val(l) {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			for _, pb := range pbs {
				var sum int64
				for _, t := range pb.terms {
					if val(t.Lit) {
						sum += t.Weight
					}
				}
				if sum > pb.k {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestPropRandomCNFAgainstBruteForce cross-checks the CDCL solver against
// exhaustive enumeration on random small instances.
func TestPropRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + rng.Intn(8) // 3..10
		nClauses := 2 + rng.Intn(30)
		var cnf [][]Lit
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			var cl []Lit
			for j := 0; j < width; j++ {
				v := 1 + rng.Intn(nVars)
				l := Lit(v)
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				cl = append(cl, l)
			}
			cnf = append(cnf, cl)
			s.AddClause(cl...)
		}
		want := bruteForceSat(nVars, cnf, nil)
		got := s.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v", iter, got, want, cnf)
		}
		if got {
			// verify the model actually satisfies the CNF
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					v := s.ValueOf(l.Var())
					if (l > 0 && v) || (l < 0 && !v) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: returned model violates clause %v", iter, cl)
				}
			}
		}
	}
}

// TestPropRandomPBAgainstBruteForce adds random PB constraints to random CNF.
func TestPropRandomPBAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(6)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var cnf [][]Lit
		for i := 0; i < 1+rng.Intn(10); i++ {
			width := 1 + rng.Intn(3)
			var cl []Lit
			for j := 0; j < width; j++ {
				v := 1 + rng.Intn(nVars)
				l := Lit(v)
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				cl = append(cl, l)
			}
			cnf = append(cnf, cl)
			s.AddClause(cl...)
		}
		var pbs []struct {
			terms []PBTerm
			k     int64
		}
		for i := 0; i < 1+rng.Intn(2); i++ {
			n := 1 + rng.Intn(nVars)
			var terms []PBTerm
			used := map[int]bool{}
			var total int64
			for j := 0; j < n; j++ {
				v := 1 + rng.Intn(nVars)
				if used[v] {
					continue
				}
				used[v] = true
				w := int64(1 + rng.Intn(5))
				l := Lit(v)
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				terms = append(terms, PBTerm{l, w})
				total += w
			}
			k := int64(rng.Intn(int(total + 1)))
			pbs = append(pbs, struct {
				terms []PBTerm
				k     int64
			}{terms, k})
			if !s.AddPB(terms, k) {
				break
			}
		}
		want := bruteForceSat(nVars, cnf, pbs)
		got := s.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v", iter, got, want)
		}
		if got {
			for _, pb := range pbs {
				var sum int64
				for _, term := range pb.terms {
					v := s.ValueOf(term.Lit.Var())
					if (term.Lit > 0 && v) || (term.Lit < 0 && !v) {
						sum += term.Weight
					}
				}
				if sum > pb.k {
					t.Fatalf("iter %d: model violates PB (sum=%d k=%d)", iter, sum, pb.k)
				}
			}
		}
	}
}

// TestIncrementalSolveLoop mimics branch-and-bound: repeatedly solve and
// tighten a PB bound.
func TestIncrementalSolveLoop(t *testing.T) {
	s := New()
	n := 8
	vs := make([]int, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	// at least 3 of the first 5 must be true (as clauses over complements):
	// sum(!v_i for i<5) <= 2
	var negTerms []PBTerm
	for i := 0; i < 5; i++ {
		negTerms = append(negTerms, PBTerm{Lit(vs[i]).Neg(), 1})
	}
	s.AddPB(negTerms, 2)

	// minimize number of true vars by B&B
	best := -1
	for {
		if s.Solve() != Sat {
			break
		}
		count := 0
		for _, v := range vs {
			if s.ValueOf(v) {
				count++
			}
		}
		best = count
		var terms []PBTerm
		for _, v := range vs {
			terms = append(terms, PBTerm{Lit(v), 1})
		}
		if !s.AddPB(terms, int64(count-1)) {
			break
		}
	}
	if best != 3 {
		t.Errorf("B&B minimum = %d, want 3", best)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" ||
		Canceled.String() != "CANCELED" {
		t.Error("Status.String mismatch")
	}
}

func TestHardRandom3SAT(t *testing.T) {
	// Near phase-transition random 3-SAT at n=60: exercises restarts,
	// learning, and the heap under real search.
	rng := rand.New(rand.NewSource(7))
	n := 60
	m := int(4.2 * float64(n))
	s := New()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for i := 0; i < m; i++ {
		var cl []Lit
		for j := 0; j < 3; j++ {
			v := 1 + rng.Intn(n)
			l := Lit(v)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			cl = append(cl, l)
		}
		s.AddClause(cl...)
	}
	got := s.Solve()
	if got == Unknown {
		t.Fatal("should not time out")
	}
	t.Logf("n=%d m=%d: %v (conflicts=%d decisions=%d props=%d)",
		n, m, got, s.Conflicts, s.Decisions, s.Propagations)
}
