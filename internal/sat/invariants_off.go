//go:build !satcheck

package sat

// satCheckEnabled reports whether this binary carries the checked solver
// build (the satcheck build tag).
const satCheckEnabled = false

// checkInvariants is the checked-build audit hook; without the satcheck
// build tag it is an empty function and the call sites compile away.
func (s *Solver) checkInvariants(string) {}

// CheckInvariants audits the solver's internal state under the satcheck
// build tag (see invariants.go). Without the tag the audit is not compiled
// in and the result is always nil.
func (s *Solver) CheckInvariants() error { return nil }
