//go:build satcheck

package sat

import (
	"strings"
	"testing"
)

// checkedSolver builds a small solver with clauses, a PB constraint, and an
// auxiliary variable — enough structure that every invariant family has
// something to audit.
func checkedSolver(t *testing.T) (s *Solver, vars [4]int, aux int) {
	t.Helper()
	s = New()
	for i := range vars {
		vars[i] = s.NewVar()
	}
	aux = s.NewAuxVar()
	a, b, c, d := Lit(vars[0]), Lit(vars[1]), Lit(vars[2]), Lit(vars[3])
	if !s.AddClause(a, b) || !s.AddClause(a.Neg(), c) || !s.AddClause(b.Neg(), c, d) {
		t.Fatal("clause construction made the solver unsat")
	}
	// Tseitin-style definition for the aux var: aux OR NOT a.
	if !s.AddClause(Lit(aux), a.Neg()) {
		t.Fatal("aux definition made the solver unsat")
	}
	if !s.AddPB([]PBTerm{{a, 2}, {b, 3}, {d, 4}}, 6) {
		t.Fatal("PB constraint made the solver unsat")
	}
	return s, vars, aux
}

func TestCheckInvariantsCleanSolver(t *testing.T) {
	s, _, _ := checkedSolver(t)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("fresh solver fails audit: %v", err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want Sat", st)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("solved solver fails audit: %v", err)
	}
}

// TestCheckInvariantsDetectsCorruption injures the solver's internal state
// one invariant family at a time and proves the audit names the damage.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(t *testing.T, s *Solver, vars [4]int, aux int)
		want    string
	}{
		{
			name: "watch list missing a clause",
			corrupt: func(t *testing.T, s *Solver, _ [4]int, _ int) {
				c := s.clauses[0]
				key := c.lits[0].Neg().index()
				ws := s.watches[key][:0]
				for _, wc := range s.watches[key] {
					if wc != c {
						ws = append(ws, wc)
					}
				}
				s.watches[key] = ws
			},
			want: "not on the watch list",
		},
		{
			name: "PB counter out of sync",
			corrupt: func(t *testing.T, s *Solver, _ [4]int, _ int) {
				s.pbs[0].sumTrue++
			},
			want: "counter out of sync",
		},
		{
			name: "auxiliary variable in the branch heap",
			corrupt: func(t *testing.T, s *Solver, _ [4]int, aux int) {
				s.order.insert(aux)
			},
			want: "auxiliary variable",
		},
		{
			name: "unassigned decision variable lost from the heap",
			corrupt: func(t *testing.T, s *Solver, vars [4]int, _ int) {
				for !s.order.empty() {
					s.order.removeMin()
				}
			},
			want: "missing from the branch heap",
		},
		{
			name: "retired PB slot missing from the free list",
			corrupt: func(t *testing.T, s *Solver, _ [4]int, _ int) {
				ref, ok := s.AddPBRef([]PBTerm{{Lit(s.NewVar()), 1}}, 1)
				if !ok {
					t.Fatal("AddPBRef failed")
				}
				s.RemovePB(ref)
				s.pbFree = s.pbFree[:len(s.pbFree)-1]
			},
			want: "missing from the free list",
		},
		{
			name: "propagation queue not drained",
			corrupt: func(t *testing.T, s *Solver, vars [4]int, _ int) {
				if !s.AddClause(Lit(vars[0])) {
					t.Fatal("unit clause failed")
				}
				s.qhead--
			},
			want: "queue not drained",
		},
		{
			name: "trail position desynchronized",
			corrupt: func(t *testing.T, s *Solver, vars [4]int, _ int) {
				if !s.AddClause(Lit(vars[0])) {
					t.Fatal("unit clause failed")
				}
				s.trailPos[s.trail[0].Var()] = 99
			},
			want: "records position",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, vars, aux := checkedSolver(t)
			tt.corrupt(t, s, vars, aux)
			err := s.CheckInvariants()
			if err == nil {
				t.Fatal("audit passed a corrupted solver")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("audit error = %q, want it to mention %q", err, tt.want)
			}
		})
	}
}

// TestSolvePanicsOnCorruptedState proves the boundary hooks fire: a solver
// whose watch lists were damaged must refuse to search under satcheck
// instead of silently computing with a broken index.
func TestSolvePanicsOnCorruptedState(t *testing.T) {
	s, _, _ := checkedSolver(t)
	c := s.clauses[0]
	key := c.lits[1].Neg().index()
	ws := s.watches[key][:0]
	for _, wc := range s.watches[key] {
		if wc != c {
			ws = append(ws, wc)
		}
	}
	s.watches[key] = ws
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Solve did not panic on a corrupted solver")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violation after solve entry") {
			t.Fatalf("panic = %v, want an invariant violation at solve entry", r)
		}
	}()
	s.Solve()
}

// TestSatCheckEnabled pins the build-tag plumbing: this file only compiles
// under satcheck, where the audits must be live.
func TestSatCheckEnabled(t *testing.T) {
	if !satCheckEnabled {
		t.Fatal("satcheck test build reports satCheckEnabled == false")
	}
}
