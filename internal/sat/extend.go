package sat

// This file is the solver's support surface for live-universe skeleton
// extension (internal/concretize.Session.Extend): stable clause handles
// that let an encoder retract a clause it is about to re-emit in widened
// form, plus ForgetLearnts, which drops every learnt clause and rebuilds
// the level-0 trail from its axioms.
//
// Why widening needs both. A CDCL solver's learnt clauses are resolution
// consequences of the clause database; retracting a clause and re-adding a
// strictly weaker one (a dependency disjunction gaining a candidate, an
// exactly-one row gaining a version) invalidates any learnt clause whose
// derivation used the retracted original. Worse, consequences can be
// *units*: a level-0 assignment forced through a learnt clause — or
// through an original clause that has since been retracted — is an
// irreversible fact about the OLD formula. ForgetLearnts therefore does
// not just clear the learnt database: it unwinds the entire level-0 trail
// and re-enqueues only the axioms (literals with no clause reason: direct
// AddClause units, guard retirements, PB-forced literals), then
// re-propagates over the surviving clause database. Everything still
// implied is re-derived; everything that depended on a learnt or detached
// clause is released.

// ClauseRef is a stable handle for a clause stored by AddClauseRef,
// consumed by DetachClause. The zero value refers to no clause. A handle
// stays valid until its clause is detached; detaching twice is a no-op.
type ClauseRef struct{ c *clause }

// Valid reports whether the handle refers to a live (stored, not yet
// detached) clause.
func (r ClauseRef) Valid() bool { return r.c != nil && !r.c.deleted }

// AddClause adds a clause. Returns false if the solver is already in an
// unsatisfiable state at the top level.
func (s *Solver) AddClause(lits ...Lit) bool {
	_, ok := s.AddClauseRef(lits...)
	return ok
}

// AddClauseRef is AddClause returning a stable handle to the stored
// clause, so callers that later retract it (DetachClause, to re-emit a
// widened form) can name it. The handle is zero when no clause object was
// stored: the clause normalized away (satisfied at level 0, tautology) or
// collapsed to a unit, which is enqueued directly on the permanent level-0
// trail. The boolean matches AddClause: false only on top-level
// unsatisfiability.
func (s *Solver) AddClauseRef(lits ...Lit) (ClauseRef, bool) {
	if !s.ok {
		return ClauseRef{}, false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Normalize: drop false lits and duplicates, detect tautology/satisfied.
	out := lits[:0:0]
	seen := map[Lit]bool{}
	for _, l := range lits {
		if l == 0 || l.Var() > s.nVars {
			panic("sat: bad literal")
		}
		switch s.value(l) {
		case lTrue:
			return ClauseRef{}, true // already satisfied
		case lFalse:
			continue
		}
		if seen[l.Neg()] {
			return ClauseRef{}, true // tautology
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return ClauseRef{}, false
	case 1:
		if !s.enqueue(out[0], reason{}) {
			s.ok = false
			return ClauseRef{}, false
		}
		if s.propagate() != nil {
			s.ok = false
			return ClauseRef{}, false
		}
		return ClauseRef{}, true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return ClauseRef{c: c}, true
}

// DetachClause retracts a stored clause: it stops propagating immediately
// and is dropped from watch lists lazily (propagation already skips and
// compacts deleted clauses). Must be called at decision level 0. Detaching
// an invalid or already-detached handle is a no-op.
//
// Retracting a clause weakens the formula, so level-0 assignments that
// were propagated through it — and every learnt clause — may no longer be
// consequences. Callers that detach anything must call ForgetLearnts
// before the next solve; the concretizer's Extend does this once up front.
func (s *Solver) DetachClause(r ClauseRef) {
	if r.c == nil || r.c.deleted {
		return
	}
	if s.decisionLevel() != 0 {
		panic("sat: DetachClause above decision level 0")
	}
	r.c.deleted = true
	s.detached++
	// Compact the clause list once detached clauses dominate, so a churning
	// session's memory tracks its live formula, not its edit history.
	if s.detached > 32 && s.detached > len(s.clauses)/2 {
		keep := s.clauses[:0]
		for _, c := range s.clauses {
			if !c.deleted {
				keep = append(keep, c)
			}
		}
		s.clauses = keep
		s.detached = 0
	}
	s.checkInvariants("DetachClause")
}

// RemovePB retracts a live PB constraint by handle: it is detached from
// the propagation structures and its slot recycled, exactly like the
// internal retirement path RetireGuard uses. Stale or zero handles are
// no-ops (the constraint is already gone), which lets callers
// unconditionally remove-and-re-add a row they are widening. Must be
// called at decision level 0.
func (s *Solver) RemovePB(ref PBRef) {
	if !ref.Valid() {
		return
	}
	if s.decisionLevel() != 0 {
		panic("sat: RemovePB above decision level 0")
	}
	pi := ref.slot - 1
	if int(pi) >= len(s.pbs) || s.pbs[pi] == nil || s.pbGens[pi] != ref.gen {
		return
	}
	s.removePB(pi)
	s.checkInvariants("RemovePB")
}

// ForgetLearnts drops the entire learnt-clause database and rebuilds the
// level-0 trail from its axioms: literals whose reason is not a clause —
// direct AddClause units, RetireGuard fixes, and PB-forced assignments —
// are re-enqueued in trail order and re-propagated over the current clause
// database. Level-0 facts that were derived through a learnt clause (or
// through an original clause since retracted by DetachClause) and are no
// longer implied simply do not come back. Must be called at decision level
// 0; VSIDS activity and saved phases are kept.
func (s *Solver) ForgetLearnts() {
	if s.decisionLevel() != 0 {
		panic("sat: ForgetLearnts above decision level 0")
	}
	if !s.ok {
		return
	}
	for _, c := range s.learnts {
		c.deleted = true
	}
	s.learnts = s.learnts[:0]

	// Unwind the level-0 trail, keeping the axioms in assignment order.
	axioms := make([]Lit, 0, len(s.trail))
	for _, l := range s.trail {
		if s.reasons[l.Var()].cl == nil {
			axioms = append(axioms, l)
		}
	}
	for i := len(s.trail) - 1; i >= 0; i-- {
		l := s.trail[i]
		v := l.Var()
		for _, pi := range s.pbOcc[l.index()] {
			s.pbs[pi].sumTrue -= s.pbs[pi].weightOf(l)
		}
		s.assigns[v] = lUndef
		s.reasons[v] = reason{}
		if s.decision[v] && !s.order.inHeap(v) {
			s.order.insert(v)
		}
	}
	s.trail = s.trail[:0]
	s.qhead = 0

	// Re-assert the axioms and close under propagation. The axioms were
	// jointly consistent on the old trail and the clause set only shrank,
	// so neither step can conflict; the checks are defensive.
	for _, l := range axioms {
		if !s.enqueue(l, reason{}) {
			s.ok = false
			return
		}
	}
	if s.propagate() != nil {
		s.ok = false
	}
	s.checkInvariants("ForgetLearnts")
}

// FixedFalse reports whether the literal is permanently falsified:
// assigned false on the level-0 trail. The encoder uses it to recognize
// dead variables (versions proven unbuildable at the top level), which a
// skeleton extension cannot revive and must re-encode under fresh
// variables instead.
func (s *Solver) FixedFalse(l Lit) bool {
	v := l.Var()
	return s.assigns[v] != lUndef && s.level[v] == 0 && s.value(l) == lFalse
}

// NumClauses returns the number of stored (non-detached) original clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) - s.detached }
