// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with pseudo-Boolean (weighted at-most-k) constraints.
//
// It is the search core underneath the concretizer in internal/concretize,
// playing the role clasp plays underneath Clingo in Spack's concretizer:
// clauses come from the package-universe encoding (exactly-one version
// selection, dependency implications, conflicts) and branch-and-bound
// optimization constraints.
//
// The design follows MiniSat: two-literal watching, first-UIP conflict
// analysis with clause minimization, VSIDS branching with an indexed heap,
// phase saving, Luby restarts, and activity-based learnt-clause deletion.
package sat

import (
	"sync/atomic"
)

// Lit is a literal: +v for the positive literal of variable v, -v for its
// negation. Variables are numbered from 1.
type Lit int32

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Var returns the variable of the literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Sign reports whether the literal is negative.
func (l Lit) Sign() bool { return l < 0 }

// index maps a literal to a dense array index: 2v for +v, 2v+1 for -v.
func (l Lit) index() int {
	if l < 0 {
		return int(-l)*2 + 1
	}
	return int(l) * 2
}

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means the solver gave up because the conflict budget
	// (MaxConflicts) was exhausted.
	Unknown Status = iota
	// Sat means a model was found.
	Sat
	// Unsat means no model exists under the given assumptions.
	Unsat
	// Canceled means the search was stopped by Interrupt before reaching
	// an answer. It is distinct from Unknown so callers can tell "the
	// budget ran out" from "someone asked us to stop" — a portfolio
	// canceling losers must not be mistaken for a solver giving up.
	Canceled
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	case Canceled:
		return "CANCELED"
	default:
		return "UNKNOWN"
	}
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

// clause is a disjunction of literals. Learnt clauses carry an activity for
// the deletion heuristic.
type clause struct {
	lits     []Lit
	activity float64
	learnt   bool
	deleted  bool
}

// reason records why a literal was assigned: a clause, a PB constraint, or
// a decision (nil).
type reason struct {
	cl *clause
	pb int32 // PB constraint index+1, or 0
}

func (r reason) isDecision() bool { return r.cl == nil && r.pb == 0 }

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	nVars    int
	clauses  []*clause
	learnts  []*clause
	watches  [][]*clause // literal index -> watching clauses
	detached int         // clauses retracted by DetachClause, pending compaction

	assigns  []lbool // var -> value
	level    []int32 // var -> decision level
	trailPos []int32 // var -> position on trail when assigned
	reasons  []reason
	polarity []bool // phase saving: last assigned sign
	decision []bool // var -> branchable; false for auxiliary (defined) vars
	trail    []Lit
	trailLim []int
	qhead    int

	// VSIDS
	activity []float64
	varInc   float64
	order    *varHeap

	// PB constraints
	pbs      []*pbConstraint
	pbGens   []uint32  // slot -> generation, bumped on retirement (validates PBRefs)
	pbOcc    [][]int32 // literal index -> PB constraints watching that literal
	pbFree   []int32   // retired constraint slots available for reuse
	pbActive int       // constraints added and not retired

	// conflict analysis scratch
	seen        []bool
	analyzeTmp  []Lit
	pbReasonBuf []Lit  // reused by pbReasonLits (one live reason at a time)
	pbConfl     clause // reused by pbConflictClause (one live conflict at a time)

	ok bool // false once a top-level conflict is found

	// statistics
	Conflicts    int64
	Decisions    int64
	Propagations int64

	// MaxConflicts bounds the search; <=0 means unbounded.
	MaxConflicts int64

	// learntBase is the constant part of the learnt-DB size limit that
	// triggers reduceLearnts. Tests lower it to force heavy reduction.
	learntBase int64

	conflictBudget int64
	model          []lbool

	cfg Config

	// interrupted is the asynchronous stop flag set by Interrupt. It may
	// be written from any goroutine while Solve runs on another; the
	// search loop polls it and returns Canceled. It stays set until
	// ClearInterrupt so a cancellation can never be lost between solves.
	interrupted atomic.Bool
}

// New returns an empty solver with the default configuration.
func New() *Solver { return NewWithConfig(Config{}) }

// NewWithConfig returns an empty solver tuned by cfg (zero fields select
// defaults; see Config).
func NewWithConfig(cfg Config) *Solver {
	s := &Solver{varInc: 1.0, ok: true, learntBase: 2000, cfg: cfg.withDefaults()}
	s.order = newVarHeap(&s.activity)
	// index 0 unused
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.trailPos = append(s.trailPos, 0)
	s.reasons = append(s.reasons, reason{})
	s.polarity = append(s.polarity, false)
	s.decision = append(s.decision, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.pbOcc = append(s.pbOcc, nil, nil)
	return s
}

// Config returns the configuration the solver was created with, with
// defaults resolved. Layers above the solver (branch-and-bound in
// internal/concretize) read portfolio knobs like DescentStep from here.
func (s *Solver) Config() Config { return s.cfg }

// Interrupt asynchronously stops an in-flight Solve, which returns
// Canceled at its next poll (per search-loop iteration, so promptly). It
// is safe to call from any goroutine, before or during a solve, and is
// sticky: every Solve returns Canceled until ClearInterrupt. Interrupting
// leaves the solver fully consistent — clauses, learnts, activity, and
// phases survive, so the same solver can serve the next request.
func (s *Solver) Interrupt() { s.interrupted.Store(true) }

// ClearInterrupt re-arms the solver after an Interrupt.
func (s *Solver) ClearInterrupt() { s.interrupted.Store(false) }

// Interrupted reports whether the stop flag is currently set.
func (s *Solver) Interrupted() bool { return s.interrupted.Load() }

// ResetPhases restores every variable's saved phase to the configured
// initial polarity. Phase saving assumes the last search's trajectory is
// worth resuming; after a search is abandoned mid-flight (Canceled, or a
// budget expiry deep in a refutation) the saved phases instead pin the
// next solve inside the abandoned — possibly unsatisfiable — subspace,
// which it then must refute clause by clause before it can look anywhere
// else. Callers that interrupt a solve should reset phases before reusing
// the solver; learnt clauses and activities are kept (they remain valid
// and useful).
func (s *Solver) ResetPhases() {
	for v := 1; v <= s.nVars; v++ {
		s.polarity[v] = !s.cfg.PositiveFirst
	}
}

// SetPhase sets one variable's saved phase: the sign the search tries
// first the next time it branches on v. Phases are pure heuristics — they
// steer which model a search finds first, never what is satisfiable — so
// callers may seed them toward a known-good assignment. Branch-and-bound
// in internal/concretize seeds the objective's cheap polarity on a
// shape's first visit, so the descent's first incumbent starts near the
// optimum instead of wherever default polarities happen to land (on
// version-deep registry universes the difference is hundreds of descent
// rounds). Phase saving overwrites the seed as soon as the variable is
// assigned in search, exactly as it overwrites the configured initial
// polarity.
func (s *Solver) SetPhase(v int, val bool) {
	// polarity true means "assign -v first"; see allocVar.
	s.polarity[v] = !val
}

// NewVar allocates a fresh variable and returns its number (>= 1).
func (s *Solver) NewVar() int {
	v := s.allocVar()
	s.decision[v] = true
	s.order.insert(v)
	return v
}

// NewAuxVar allocates an auxiliary (defined) variable: one the search
// never branches on. It participates in clauses, propagation, and
// conflict analysis like any other variable, but a model may leave it
// unassigned, in which case ValueOf reports it false.
//
// Soundness is the caller's contract: an auxiliary variable must be a
// definition literal — every clause in which it occurs positively must be
// satisfied whenever the variable is unassigned after propagation (the
// Tseitin shape "aux OR NOT antecedent" has this property: an unassigned
// aux means no antecedent forced it, so those clauses are satisfied by
// the antecedent's negation, and extending the model with aux = false
// satisfies the rest). Encoders use this for shared requirement-definition
// and support literals, whose truth is only ever needed when propagation
// derives it.
func (s *Solver) NewAuxVar() int {
	return s.allocVar()
}

func (s *Solver) allocVar() int {
	s.nVars++
	v := s.nVars
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.trailPos = append(s.trailPos, 0)
	s.reasons = append(s.reasons, reason{})
	// Initial phase: polarity true => assign -v first. Negative-first is
	// the default; Config.PositiveFirst flips it.
	s.polarity = append(s.polarity, !s.cfg.PositiveFirst)
	s.decision = append(s.decision, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.pbOcc = append(s.pbOcc, nil, nil)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if l < 0 {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) watchClause(c *clause) {
	// watch the negations of the first two literals
	w0 := c.lits[0].Neg().index()
	w1 := c.lits[1].Neg().index()
	s.watches[w0] = append(s.watches[w0], c)
	s.watches[w1] = append(s.watches[w1], c)
}

// enqueue assigns a literal true with the given reason. Returns false on
// an immediate conflict with the existing assignment.
func (s *Solver) enqueue(l Lit, r reason) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l < 0 {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.trailPos[v] = int32(len(s.trail))
	s.reasons[v] = r
	s.polarity[v] = l < 0
	s.trail = append(s.trail, l)
	// update PB sums
	for _, pi := range s.pbOcc[l.index()] {
		s.pbs[pi].sumTrue += s.pbs[pi].weightOf(l)
	}
	return true
}

// propagate performs unit propagation and PB propagation. Returns a
// conflicting clause description, or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		if c := s.propagateLit(l); c != nil {
			return c
		}
		if c := s.propagatePB(l); c != nil {
			return c
		}
	}
	return nil
}

func (s *Solver) propagateLit(l Lit) *clause {
	// clauses watching l (i.e., containing Neg(l) watched... we watch
	// Neg(first two lits); when l becomes true, clauses where l.Neg() is a
	// watched literal need attention. Our watch list key is the literal
	// whose truth triggers the clause: we stored watches under
	// lits[i].Neg().index(), so the trigger key is exactly l.index() when
	// lits[i] == l.Neg().
	ws := s.watches[l.index()]
	j := 0
	for i := 0; i < len(ws); i++ {
		c := ws[i]
		if c.deleted {
			continue
		}
		// Ensure the falsified literal is lits[1].
		falsified := l.Neg()
		if c.lits[0] == falsified {
			c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
		}
		// If lits[0] is true, clause satisfied; keep watch.
		if s.value(c.lits[0]) == lTrue {
			ws[j] = c
			j++
			continue
		}
		// Find a new literal to watch.
		found := false
		for k := 2; k < len(c.lits); k++ {
			if s.value(c.lits[k]) != lFalse {
				c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
				w := c.lits[1].Neg().index()
				s.watches[w] = append(s.watches[w], c)
				found = true
				break
			}
		}
		if found {
			continue // watch moved; drop from this list
		}
		// Clause is unit or conflicting.
		ws[j] = c
		j++
		if !s.enqueue(c.lits[0], reason{cl: c}) {
			// conflict: copy remaining watches and return
			j2 := j
			for i2 := i + 1; i2 < len(ws); i2++ {
				ws[j2] = ws[i2]
				j2++
			}
			s.watches[l.index()] = ws[:j2]
			s.qhead = len(s.trail)
			return c
		}
	}
	s.watches[l.index()] = ws[:j]
	return nil
}

// unassign pops trail entries down to the given trail size.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := s.trailLim[level]
	for i := len(s.trail) - 1; i >= lim; i-- {
		l := s.trail[i]
		v := l.Var()
		for _, pi := range s.pbOcc[l.index()] {
			s.pbs[pi].sumTrue -= s.pbs[pi].weightOf(l)
		}
		s.assigns[v] = lUndef
		s.reasons[v] = reason{}
		if s.decision[v] && !s.order.inHeap(v) {
			s.order.insert(v)
		}
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.order.inHeap(v) {
		s.order.decrease(v)
	}
}

func (s *Solver) decayVarActivity() { s.varInc /= 0.95 }

// reasonLits returns the literals of the reason for variable v's
// assignment (the implied literal first).
func (s *Solver) reasonLits(v int) []Lit {
	r := s.reasons[v]
	if r.cl != nil {
		return r.cl.lits
	}
	if r.pb != 0 {
		return s.pbReasonLits(int(r.pb-1), v)
	}
	return nil
}

// analyze performs 1UIP conflict analysis. Returns the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for asserting literal
	counter := 0
	var p Lit
	pReason := confl.lits
	idx := len(s.trail) - 1
	cleanup := []int{}

	for {
		for _, q := range pReason {
			if q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			cleanup = append(cleanup, v)
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// pick next literal from trail
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Neg()
			break
		}
		pReason = s.reasonLits(v)
	}

	// Clause minimization: remove literals implied by the rest.
	minimized := learnt[:1]
	for _, q := range learnt[1:] {
		if !s.redundant(q) {
			minimized = append(minimized, q)
		}
	}
	learnt = minimized

	// compute backtrack level: max level among learnt[1:]
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	for _, v := range cleanup {
		s.seen[v] = false
	}
	return learnt, btLevel
}

// redundant reports whether literal q in a learnt clause is implied by the
// other marked literals (simple recursive self-subsumption check).
func (s *Solver) redundant(q Lit) bool {
	v := q.Var()
	r := s.reasons[v]
	if r.isDecision() {
		return false
	}
	for _, l := range s.reasonLits(v) {
		lv := l.Var()
		if lv == v || s.seen[lv] || s.level[lv] == 0 {
			continue
		}
		return false
	}
	return true
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// SolveAssuming searches for a model under the given assumption literals.
// It is the incremental entry point: each call backtracks to decision
// level 0 and searches again, reusing the learnt-clause database, VSIDS
// activity, and saved phases accumulated by earlier calls on the same
// solver — no fresh solver or re-encoding is needed between calls.
// Assumptions are decided (in order) before any free variable; an Unsat
// result means unsatisfiable under these assumptions, not necessarily
// globally. On Sat, the model is retrievable via ValueOf until the next
// solve or constraint addition.
//
// goarxivlint:blocking cancel=interrupt
func (s *Solver) SolveAssuming(assumptions []Lit) Status {
	return s.Solve(assumptions...)
}

// Solve searches for a model under the given assumptions. On Sat, the model
// is retrievable via ValueOf until the next Solve or clause addition. It
// returns Unknown when the MaxConflicts budget is exhausted and Canceled
// when Interrupt stopped the search; both leave the solver consistent and
// reusable.
//
// goarxivlint:blocking cancel=interrupt
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.checkInvariants("solve entry")
	st := s.solve(assumptions)
	s.checkInvariants("solve exit")
	return st
}

// solve is the search loop behind Solve. Every return path backtracks to
// decision level 0 (or freezes the solver with ok=false), which is what
// lets the satcheck boundary audits in Solve assume a quiesced state.
func (s *Solver) solve(assumptions []Lit) Status {
	if !s.ok {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}
	s.conflictBudget = s.MaxConflicts

	restartNum := int64(1)
	conflictsSinceRestart := int64(0)
	restartLimit := luby(restartNum) * s.cfg.RestartBase
	learntLimit := int64(len(s.clauses)/3) + s.learntBase

	for {
		// Poll the asynchronous stop flag once per iteration (every
		// propagation fixpoint / decision / conflict), so an Interrupt
		// from another goroutine is honored within microseconds.
		if s.interrupted.Load() {
			s.cancelUntil(0)
			return Canceled
		}
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				s.cancelUntil(0)
				return Unsat
			}
			if s.decisionLevel() <= len(assumptions) {
				// Conflict within assumption levels: UNSAT under assumptions.
				s.cancelUntil(0)
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			if btLevel < len(assumptions) {
				btLevel = len(assumptions)
			}
			s.cancelUntil(btLevel)
			if len(learnt) == 1 && s.decisionLevel() == 0 {
				// Store even unit learnts as (unwatched) learnt clause
				// objects and use them as the assignment's reason: the
				// level-0 trail must be able to tell learnt-derived facts
				// from axioms, because ForgetLearnts releases the former
				// when the formula is weakened by a skeleton extension.
				c := &clause{lits: learnt, learnt: true, activity: s.varInc}
				s.learnts = append(s.learnts, c)
				if !s.enqueue(learnt[0], reason{cl: c}) {
					s.ok = false
					return Unsat
				}
			} else {
				c := &clause{lits: learnt, learnt: true, activity: s.varInc}
				s.learnts = append(s.learnts, c)
				if len(learnt) >= 2 {
					s.watchClause(c)
				}
				if !s.enqueue(learnt[0], reason{cl: c}) {
					s.ok = false
					return Unsat
				}
			}
			s.decayVarActivity()
			if s.conflictBudget > 0 && s.Conflicts >= s.conflictBudget {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		// restart?
		if conflictsSinceRestart >= restartLimit {
			restartNum++
			conflictsSinceRestart = 0
			restartLimit = luby(restartNum) * s.cfg.RestartBase
			s.cancelUntil(len(assumptions))
			continue
		}
		// reduce learnt DB?
		if int64(len(s.learnts)) > learntLimit {
			s.reduceLearnts()
			learntLimit = learntLimit + learntLimit/10
		}

		// assumptions first
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// already satisfied: open an empty level to keep indices aligned
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				s.cancelUntil(0)
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, reason{})
			continue
		}

		// decide
		v := s.pickBranchVar()
		if v == 0 {
			// model found; reuse the model buffer across solves (callers
			// read it via ValueOf before the next solve)
			if cap(s.model) <= s.nVars {
				s.model = make([]lbool, s.nVars+1)
			} else {
				s.model = s.model[:s.nVars+1]
			}
			copy(s.model, s.assigns)
			s.cancelUntil(0)
			return Sat
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		var l Lit
		if s.polarity[v] {
			l = Lit(-int32(v))
		} else {
			l = Lit(int32(v))
		}
		s.enqueue(l, reason{})
	}
}

func (s *Solver) pickBranchVar() int {
	for !s.order.empty() {
		v := s.order.removeMin()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return 0
}

// locked reports whether c is currently the reason for some assignment.
// The implied literal is lits[0] at enqueue time, but watch-swapping in
// propagateLit can reorder lits afterwards, so every literal must be
// checked against the reason pointer of its variable, not just lits[0].
func (s *Solver) locked(c *clause) bool {
	for _, l := range c.lits {
		if s.value(l) == lTrue && s.reasons[l.Var()].cl == c {
			return true
		}
	}
	return false
}

func (s *Solver) reduceLearnts() {
	// sort learnts ascending by activity (simple selection of half)
	ls := s.learnts
	// insertion sort is too slow for large DBs; use a simple quicksort
	quickSortClauses(ls)
	keep := ls[:0]
	half := len(ls) / 2
	for i, c := range ls {
		if i < half && len(c.lits) > 2 && !s.locked(c) {
			c.deleted = true
		} else {
			keep = append(keep, c)
		}
	}
	s.learnts = keep
}

func quickSortClauses(cs []*clause) {
	if len(cs) < 2 {
		return
	}
	pivot := cs[len(cs)/2].activity
	i, j := 0, len(cs)-1
	for i <= j {
		for cs[i].activity < pivot {
			i++
		}
		for cs[j].activity > pivot {
			j--
		}
		if i <= j {
			cs[i], cs[j] = cs[j], cs[i]
			i++
			j--
		}
	}
	quickSortClauses(cs[:j+1])
	quickSortClauses(cs[i:])
}

// ValueOf returns the model value of variable v after a Sat result.
func (s *Solver) ValueOf(v int) bool {
	if s.model == nil || v >= len(s.model) {
		return false
	}
	return s.model[v] == lTrue
}

// Okay reports whether the solver is still consistent at the top level.
func (s *Solver) Okay() bool { return s.ok }
