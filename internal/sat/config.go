package sat

// Config tunes the search heuristics of one Solver. The zero value selects
// the defaults the solver has always used, so Config{} and New() are
// equivalent; every field only perturbs *how* the search explores the
// space, never *what* is satisfiable, which is what makes differently
// configured solvers safe to race against each other in a portfolio.
type Config struct {
	// PositiveFirst makes fresh variables branch on their positive literal
	// first. The default (false) branches negative-first, which for the
	// concretizer's encoding means "try not installing / not selecting"
	// before committing to a version. Phase saving overrides the initial
	// polarity as soon as a variable has been assigned once.
	PositiveFirst bool

	// RestartBase scales the Luby restart schedule: a restart fires after
	// luby(i) * RestartBase conflicts. Smaller values restart aggressively
	// (good on shuffled, conflict-heavy instances), larger values let deep
	// dives run. Zero selects the default of 100.
	RestartBase int64

	// DescentStep is consumed by the branch-and-bound loop layered on top
	// of this solver (internal/concretize) when descending linearly: after
	// finding a model of cost C it next asks for a model of cost
	// <= C - DescentStep instead of C - 1, trading extra UNSAT rounds near
	// the optimum for fewer SAT rounds far from it. The solver itself
	// never reads it; it lives here so one Config describes a complete
	// portfolio member. Zero selects 1 (classic linear descent).
	// DescentBinary ignores it.
	DescentStep int64

	// Descent selects how the branch-and-bound loop picks the next bound
	// target between the proven lower bound and the incumbent cost. Like
	// DescentStep it is consumed by internal/concretize, never by the
	// solver itself, and it can never change the returned answer — only
	// how many solve rounds the proof of optimality takes. The zero value
	// is DescentAdaptive.
	Descent DescentStrategy
}

// DescentStrategy names a bound-target schedule for objective descent.
type DescentStrategy uint8

const (
	// DescentAdaptive (the default) descends linearly by DescentStep on a
	// request shape it has no information about — matching the classic
	// cold-path behavior, whose first incumbent is usually near-optimal —
	// and switches to binary-search midpoints as soon as a proven lower
	// bound for the request is known (a warm session remembers bounds per
	// request shape). Midpoint probes stay far away from the incumbent,
	// which avoids the pathological "refute a region right next to the
	// just-excluded model" rounds that a phase-polluted warm solver can
	// burn tens of thousands of conflicts on.
	DescentAdaptive DescentStrategy = iota

	// DescentLinear always probes incumbent - DescentStep (clamped to the
	// proven lower bound): fewest rounds when the first incumbent is
	// already optimal, at the risk of slow one-by-one walks down from a
	// bad incumbent.
	DescentLinear

	// DescentBinary always probes the midpoint of [lower bound,
	// incumbent-1]: O(log range) rounds regardless of incumbent quality,
	// at the cost of a short ladder of UNSAT rounds near the optimum.
	DescentBinary
)

// String implements fmt.Stringer for diagnostics.
func (d DescentStrategy) String() string {
	switch d {
	case DescentLinear:
		return "linear"
	case DescentBinary:
		return "binary"
	default:
		return "adaptive"
	}
}

// DefaultRestartBase is the Luby restart multiplier used when
// Config.RestartBase is zero.
const DefaultRestartBase = 100

// withDefaults resolves zero fields to their default values.
func (c Config) withDefaults() Config {
	if c.RestartBase <= 0 {
		c.RestartBase = DefaultRestartBase
	}
	if c.DescentStep <= 0 {
		c.DescentStep = 1
	}
	return c
}
