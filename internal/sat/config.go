package sat

// Config tunes the search heuristics of one Solver. The zero value selects
// the defaults the solver has always used, so Config{} and New() are
// equivalent; every field only perturbs *how* the search explores the
// space, never *what* is satisfiable, which is what makes differently
// configured solvers safe to race against each other in a portfolio.
type Config struct {
	// PositiveFirst makes fresh variables branch on their positive literal
	// first. The default (false) branches negative-first, which for the
	// concretizer's encoding means "try not installing / not selecting"
	// before committing to a version. Phase saving overrides the initial
	// polarity as soon as a variable has been assigned once.
	PositiveFirst bool

	// RestartBase scales the Luby restart schedule: a restart fires after
	// luby(i) * RestartBase conflicts. Smaller values restart aggressively
	// (good on shuffled, conflict-heavy instances), larger values let deep
	// dives run. Zero selects the default of 100.
	RestartBase int64

	// DescentStep is consumed by the branch-and-bound loop layered on top
	// of this solver (internal/concretize): after finding a model of cost
	// C it next asks for a model of cost <= C - DescentStep instead of
	// C - 1, trading extra UNSAT rounds near the optimum for fewer SAT
	// rounds far from it. The solver itself never reads it; it lives here
	// so one Config describes a complete portfolio member. Zero selects 1
	// (classic linear descent).
	DescentStep int64
}

// DefaultRestartBase is the Luby restart multiplier used when
// Config.RestartBase is zero.
const DefaultRestartBase = 100

// withDefaults resolves zero fields to their default values.
func (c Config) withDefaults() Config {
	if c.RestartBase <= 0 {
		c.RestartBase = DefaultRestartBase
	}
	if c.DescentStep <= 0 {
		c.DescentStep = 1
	}
	return c
}
