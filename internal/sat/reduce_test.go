package sat

import (
	"math/rand"
	"testing"
)

// TestReduceLearntsKeepsReasonClause is the regression test for the unsound
// locked-clause check: a learnt clause whose implied literal is NOT at
// lits[0] (watch-swapping in propagateLit can reorder lits) must still be
// treated as locked while it is the reason for an assignment.
func TestReduceLearntsKeepsReasonClause(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()

	// Open a decision level and falsify a and c so that cl is unit on b.
	s.trailLim = append(s.trailLim, len(s.trail))
	if !s.enqueue(Lit(a).Neg(), reason{}) || !s.enqueue(Lit(c).Neg(), reason{}) {
		t.Fatal("setup enqueue failed")
	}
	// cl implies b, but b sits at lits[1] — the layout watch-swapping can
	// produce. The old check only looked at lits[0] (here: c, false) and
	// would mark this reason clause deleted.
	cl := &clause{lits: []Lit{Lit(c), Lit(b), Lit(a)}, learnt: true}
	s.learnts = append(s.learnts, cl)
	if !s.enqueue(Lit(b), reason{cl: cl}) {
		t.Fatal("enqueue of implied literal failed")
	}

	// Pad the learnt DB with higher-activity clauses so cl lands in the
	// to-be-deleted half.
	for i := 0; i < 10; i++ {
		x, y, z := s.NewVar(), s.NewVar(), s.NewVar()
		s.learnts = append(s.learnts, &clause{
			lits:     []Lit{Lit(x), Lit(y), Lit(z)},
			learnt:   true,
			activity: float64(i + 1),
		})
	}

	s.reduceLearnts()

	if cl.deleted {
		t.Fatal("reduceLearnts deleted a clause currently serving as the reason for b")
	}
	if s.reasons[b].cl != cl {
		t.Fatal("reason pointer for b was clobbered")
	}
}

// TestReduceLearntsUnderHeavyLearning forces reduceLearnts to run nearly
// every search step (learntBase=1) and cross-checks results against brute
// force. With the unsound locked check, deleting an active reason clause
// corrupts conflict analysis and yields wrong answers or panics.
func TestReduceLearntsUnderHeavyLearning(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 80; iter++ {
		nVars := 8 + rng.Intn(5) // 8..12
		nClauses := int(4.3 * float64(nVars))
		s := New()
		s.learntBase = 1
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var cnf [][]Lit
		for i := 0; i < nClauses; i++ {
			var cl []Lit
			for j := 0; j < 3; j++ {
				v := 1 + rng.Intn(nVars)
				l := Lit(v)
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				cl = append(cl, l)
			}
			cnf = append(cnf, cl)
			s.AddClause(cl...)
		}
		want := bruteForceSat(nVars, cnf, nil)
		got := s.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v", iter, got, want, cnf)
		}
		if got {
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					v := s.ValueOf(l.Var())
					if (l > 0 && v) || (l < 0 && !v) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model violates clause %v", iter, cl)
				}
			}
		}
	}
}

// TestReduceLearntsKeepsBinaryAndLocked checks the other keep conditions:
// binary learnts and clauses outside the deletion half survive.
func TestReduceLearntsKeepsBinaryAndLocked(t *testing.T) {
	s := New()
	x, y := s.NewVar(), s.NewVar()
	bin := &clause{lits: []Lit{Lit(x), Lit(y)}, learnt: true}
	s.learnts = append(s.learnts, bin)
	for i := 0; i < 9; i++ {
		a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
		s.learnts = append(s.learnts, &clause{
			lits:     []Lit{Lit(a), Lit(b), Lit(c)},
			learnt:   true,
			activity: float64(i + 1),
		})
	}
	s.reduceLearnts()
	if bin.deleted {
		t.Error("binary learnt clause must never be deleted")
	}
	if len(s.learnts) >= 10 {
		t.Errorf("reduceLearnts kept %d of 10 clauses, expected deletions", len(s.learnts))
	}
}
