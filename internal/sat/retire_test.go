package sat

import "testing"

// TestSolveAssumingIncremental exercises the incremental contract: one
// solver answers a stream of assumption-scoped queries, flipping between
// Sat and Unsat without ever being rebuilt.
func TestSolveAssumingIncremental(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// a -> b, b -> c, and (a | c) as a base formula.
	s.AddClause(Lit(a).Neg(), Lit(b))
	s.AddClause(Lit(b).Neg(), Lit(c))
	s.AddClause(Lit(a), Lit(c))

	if st := s.SolveAssuming([]Lit{Lit(a)}); st != Sat {
		t.Fatalf("assuming a: %v, want SAT", st)
	}
	if !s.ValueOf(b) || !s.ValueOf(c) {
		t.Fatal("assuming a must propagate b and c")
	}
	if st := s.SolveAssuming([]Lit{Lit(a), Lit(c).Neg()}); st != Unsat {
		t.Fatalf("assuming a, !c: %v, want UNSAT", st)
	}
	// The solver must remain usable after an assumption-scoped UNSAT.
	if st := s.SolveAssuming([]Lit{Lit(a).Neg()}); st != Sat {
		t.Fatalf("assuming !a after UNSAT round: %v, want SAT", st)
	}
	if !s.ValueOf(c) {
		t.Fatal("assuming !a must still satisfy (a | c) via c")
	}
	if st := s.SolveAssuming(nil); st != Sat {
		t.Fatalf("no assumptions: %v, want SAT", st)
	}
}

// TestRetireGuardDropsConstraint: retiring a guard removes its PB
// constraint from the propagation structures and fixes the guard false,
// while unguarded constraints stay attached.
func TestRetireGuardDropsConstraint(t *testing.T) {
	s := New()
	x, y, g := s.NewVar(), s.NewVar(), s.NewVar()
	// Permanent: x + y <= 1.
	if !s.AddPB([]PBTerm{{Lit(x), 1}, {Lit(y), 1}}, 1) {
		t.Fatal("AddPB permanent")
	}
	// Guarded bound: 2x + 2y + 3g <= 4 — assuming g forces x + y = 0.
	if !s.AddPB([]PBTerm{{Lit(x), 2}, {Lit(y), 2}, {Lit(g), 3}}, 4) {
		t.Fatal("AddPB guarded")
	}
	if got := s.ActivePBs(); got != 2 {
		t.Fatalf("ActivePBs = %d, want 2", got)
	}
	if st := s.Solve(Lit(g), Lit(x)); st != Unsat {
		t.Fatalf("assuming g, x: %v, want UNSAT (guarded bound active)", st)
	}
	if !s.RetireGuard(Lit(g)) {
		t.Fatal("RetireGuard failed")
	}
	if got := s.ActivePBs(); got != 1 {
		t.Fatalf("ActivePBs after retire = %d, want 1", got)
	}
	if got := s.PBOccupancy(); got != 2 {
		t.Fatalf("PBOccupancy after retire = %d, want 2 (x and y of the permanent constraint)", got)
	}
	// The formerly guarded bound must no longer constrain anything...
	if st := s.Solve(Lit(x)); st != Sat {
		t.Fatalf("assuming x after retire: %v, want SAT", st)
	}
	if s.ValueOf(g) {
		t.Fatal("retired guard must be fixed false")
	}
	// ...while the permanent constraint still does.
	if st := s.Solve(Lit(x), Lit(y)); st != Unsat {
		t.Fatalf("assuming x, y: %v, want UNSAT (permanent constraint)", st)
	}
}

// TestRetireGuardRecyclesSlots is the memory regression for the latent
// inefficiency this PR fixes: a loop that adds and retires one guarded
// bound per round — the branch-and-bound pattern — must run in constant PB
// memory instead of growing pbs/pbOcc forever.
func TestRetireGuardRecyclesSlots(t *testing.T) {
	s := New()
	x, y := s.NewVar(), s.NewVar()
	s.AddClause(Lit(x), Lit(y))
	baseSlots, baseOcc := s.PBSlots(), s.PBOccupancy()
	for round := 0; round < 100; round++ {
		g := s.NewVar()
		if !s.AddPB([]PBTerm{{Lit(x), 1}, {Lit(y), 1}, {Lit(g), 2}}, 3) {
			t.Fatalf("round %d: AddPB failed", round)
		}
		if st := s.Solve(Lit(g)); st != Sat {
			t.Fatalf("round %d: %v, want SAT", round, st)
		}
		if !s.RetireGuard(Lit(g)) {
			t.Fatalf("round %d: RetireGuard failed", round)
		}
	}
	if got := s.PBSlots(); got > baseSlots+1 {
		t.Errorf("PBSlots grew to %d (base %d): retired slots are not recycled", got, baseSlots)
	}
	if got := s.PBOccupancy(); got != baseOcc {
		t.Errorf("PBOccupancy = %d after retirement, want %d", got, baseOcc)
	}
	if got := s.ActivePBs(); got != 0 {
		t.Errorf("ActivePBs = %d after retirement, want 0", got)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("solver unusable after 100 retire rounds: %v", st)
	}
}

// TestRetireGuardKeepsNonVacuousConstraints: retirement must only drop
// constraints the falsified guard makes vacuous. A constraint mentioning
// the guard's negation becomes strictly tighter when the guard is fixed
// false, and one whose other weights still exceed k keeps constraining —
// both must stay enforced.
func TestRetireGuardKeepsNonVacuousConstraints(t *testing.T) {
	s := New()
	x, y, g := s.NewVar(), s.NewVar(), s.NewVar()
	// !g + x <= 1: once g is false, x is forced false.
	if !s.AddPB([]PBTerm{{Lit(g).Neg(), 1}, {Lit(x), 1}}, 1) {
		t.Fatal("AddPB neg-guard")
	}
	// g + 5y <= 4: forces y false regardless of g — not vacuous under !g.
	if !s.AddPB([]PBTerm{{Lit(g), 1}, {Lit(y), 5}}, 4) {
		t.Fatal("AddPB heavy")
	}
	if got := s.ActivePBs(); got != 2 {
		t.Fatalf("ActivePBs = %d, want 2", got)
	}
	if !s.RetireGuard(Lit(g)) {
		t.Fatal("RetireGuard failed")
	}
	if got := s.ActivePBs(); got != 2 {
		t.Fatalf("ActivePBs = %d after retire, want 2 (neither constraint is vacuous)", got)
	}
	if st := s.Solve(Lit(x)); st != Unsat {
		t.Fatalf("assuming x: %v, want UNSAT (!g + x <= 1 with g false)", st)
	}
	if st := s.Solve(Lit(y)); st != Unsat {
		t.Fatalf("assuming y: %v, want UNSAT (5y alone exceeds 4)", st)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("base formula: %v, want SAT", st)
	}
}

// TestAddPBDeterministicOrder: constraint-internal literal order must
// follow first appearance in terms, not map iteration, so repeated
// constructions propagate identically.
func TestAddPBDeterministicOrder(t *testing.T) {
	// A constraint where exactly one literal must be forced first: if the
	// internal order were map-randomized, the trail order of the forced
	// literals would vary run to run. We assert the observable trail-free
	// property instead: same formula, same decisions, same model, twice.
	build := func() *Solver {
		s := New()
		var lits []Lit
		for i := 0; i < 8; i++ {
			lits = append(lits, Lit(s.NewVar()))
		}
		terms := make([]PBTerm, len(lits))
		for i, l := range lits {
			terms[i] = PBTerm{l, int64(i + 1)}
		}
		s.AddPB(terms, 10)
		s.AddClause(lits...)
		return s
	}
	s1, s2 := build(), build()
	if st1, st2 := s1.Solve(), s2.Solve(); st1 != st2 {
		t.Fatalf("statuses differ: %v vs %v", st1, st2)
	}
	for v := 1; v <= s1.NumVars(); v++ {
		if s1.ValueOf(v) != s2.ValueOf(v) {
			t.Fatalf("var %d: models differ between identical builds", v)
		}
	}
	if s1.Decisions != s2.Decisions || s1.Conflicts != s2.Conflicts {
		t.Fatalf("search differs: decisions %d/%d conflicts %d/%d",
			s1.Decisions, s2.Decisions, s1.Conflicts, s2.Conflicts)
	}
}
