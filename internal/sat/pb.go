package sat

// PBTerm is one weighted literal of a pseudo-Boolean constraint.
type PBTerm struct {
	Lit    Lit
	Weight int64
}

// pbConstraint represents sum(w_i * l_i) <= k with counter-based
// propagation: sumTrue tracks the weight of currently-true literals and is
// maintained incrementally by enqueue/cancelUntil.
type pbConstraint struct {
	lits    []Lit
	weights []int64
	wmap    map[Lit]int64
	k       int64
	sumTrue int64
	maxW    int64
}

func (p *pbConstraint) weightOf(l Lit) int64 { return p.wmap[l] }

// PBRef is a stable handle for a live PB constraint, returned by AddPBRef
// and consumed by TightenPB. The zero value refers to no constraint.
// Handles are generation-checked: once the constraint is retired (its slot
// recycled by a later AddPB), the stale handle is detected rather than
// silently aliasing the slot's new tenant.
type PBRef struct {
	slot int32  // constraint slot + 1; 0 means "no constraint"
	gen  uint32 // slot generation at hand-out time
}

// Valid reports whether the handle refers to a constraint at all (it may
// still be stale; TightenPB checks the generation).
func (r PBRef) Valid() bool { return r.slot != 0 }

// AddPB adds the constraint sum(terms) <= k. Terms with non-positive
// weights are rejected; duplicate literals are merged. Literal order inside
// the constraint follows first appearance in terms, keeping propagation —
// and therefore the whole search — deterministic. Returns false if the
// solver becomes unsatisfiable at the top level.
func (s *Solver) AddPB(terms []PBTerm, k int64) bool {
	_, ok := s.AddPBRef(terms, k)
	return ok
}

// AddPBRef is AddPB returning a stable handle to the new constraint, so
// callers that later strengthen the bound in place (TightenPB) can name
// it. On failure (top-level unsatisfiability) the handle is zero.
func (s *Solver) AddPBRef(terms []PBTerm, k int64) (PBRef, bool) {
	if !s.ok {
		return PBRef{}, false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddPB above decision level 0")
	}
	wmap := make(map[Lit]int64, len(terms))
	order := make([]Lit, 0, len(terms))
	for _, t := range terms {
		if t.Weight <= 0 {
			panic("sat: non-positive PB weight")
		}
		if t.Lit == 0 || t.Lit.Var() > s.nVars {
			panic("sat: bad PB literal")
		}
		if _, seen := wmap[t.Lit]; !seen {
			order = append(order, t.Lit)
		}
		wmap[t.Lit] += t.Weight
	}
	p := &pbConstraint{wmap: wmap, k: k}
	for _, l := range order {
		w := wmap[l]
		p.lits = append(p.lits, l)
		p.weights = append(p.weights, w)
		if w > p.maxW {
			p.maxW = w
		}
		// already-true literals at level 0 count immediately
		if s.value(l) == lTrue {
			p.sumTrue += w
		}
	}
	if p.sumTrue > p.k {
		s.ok = false
		return PBRef{}, false
	}
	var pi int32
	if n := len(s.pbFree); n > 0 {
		pi = s.pbFree[n-1]
		s.pbFree = s.pbFree[:n-1]
		s.pbs[pi] = p
	} else {
		s.pbs = append(s.pbs, p)
		pi = int32(len(s.pbs) - 1)
	}
	for int(pi) >= len(s.pbGens) {
		s.pbGens = append(s.pbGens, 0)
	}
	s.pbActive++
	for _, l := range p.lits {
		s.pbOcc[l.index()] = append(s.pbOcc[l.index()], pi)
	}
	ref := PBRef{slot: pi + 1, gen: s.pbGens[pi]}
	// initial propagation: literals too heavy to ever be true
	for i, l := range p.lits {
		if s.value(l) == lUndef && p.sumTrue+p.weights[i] > p.k {
			if !s.enqueue(l.Neg(), reason{pb: pi + 1}) {
				s.ok = false
				return PBRef{}, false
			}
		}
	}
	if s.propagate() != nil {
		s.ok = false
		return PBRef{}, false
	}
	return ref, true
}

// TightenPB lowers the bound of a live PB constraint in place: the
// constraint sum(terms) <= k becomes sum(terms) <= newK with newK < k.
// Because lowering k only ever strengthens the constraint, no watcher or
// occurrence rebuild is needed, every clause learnt from the weaker bound
// remains a valid consequence, and the counter state (sumTrue) carries
// over untouched — which is what lets a branch-and-bound descent install
// its objective bound once and ratchet it downward for the price of an
// integer store plus any newly forced propagations.
//
// Must be called at decision level 0 (between solves): tightening can
// force literals, and those assignments must land on the permanent level-0
// trail. Panics on a stale or zero handle and on a non-strengthening newK
// (>= the current bound). Returns false if the solver becomes
// unsatisfiable at the top level, exactly like AddPB.
func (s *Solver) TightenPB(ref PBRef, newK int64) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: TightenPB above decision level 0")
	}
	if !ref.Valid() {
		panic("sat: TightenPB on zero PBRef")
	}
	pi := ref.slot - 1
	if int(pi) >= len(s.pbs) || s.pbs[pi] == nil || s.pbGens[pi] != ref.gen {
		panic("sat: TightenPB on retired PB constraint")
	}
	p := s.pbs[pi]
	if newK >= p.k {
		panic("sat: TightenPB must strengthen (newK >= current bound)")
	}
	p.k = newK
	if p.sumTrue > p.k {
		s.ok = false
		return false
	}
	// Newly forced literals: too heavy to ever be true under the lower
	// bound (mirrors AddPB's initial propagation).
	for i, l := range p.lits {
		if s.value(l) == lUndef && p.sumTrue+p.weights[i] > p.k {
			if !s.enqueue(l.Neg(), reason{pb: pi + 1}) {
				s.ok = false
				return false
			}
		}
	}
	if s.propagate() != nil {
		s.ok = false
		return false
	}
	s.checkInvariants("TightenPB")
	return true
}

// RetireGuard permanently retires a guard literal used to activate a
// temporary PB constraint (e.g. a branch-and-bound objective bound): it
// fixes the guard false at the top level and garbage-collects every PB
// constraint the falsified guard makes vacuous. Retired constraint slots
// are recycled by later AddPB calls, so a solve loop that adds and retires
// one guarded constraint per round runs in constant PB memory. Must be
// called at decision level 0. Returns false if the solver is (or becomes)
// unsatisfiable at the top level.
//
// Only constraints containing the positive guard whose remaining weights
// sum to at most k are removed: with the guard false such a constraint can
// never again propagate or conflict, so dropping it preserves the model
// set, and clauses learnt while the guard was assumed all contain the
// guard's negation and remain valid consequences of the fixed formula.
// Constraints the falsified guard does not make vacuous — ones mentioning
// the guard's negation (now permanently contributing weight), or ones the
// guard's weight was not large enough to neutralize — are left attached
// and stay enforced.
func (s *Solver) RetireGuard(guard Lit) bool {
	if s.decisionLevel() != 0 {
		panic("sat: RetireGuard above decision level 0")
	}
	if guard == 0 || guard.Var() > s.nVars {
		panic("sat: bad guard literal")
	}
	// removePB edits pbOcc lists, so snapshot this one first.
	occ := append([]int32(nil), s.pbOcc[guard.index()]...)
	for _, pi := range occ {
		p := s.pbs[pi]
		sumOther := int64(0)
		for i := range p.lits {
			if p.lits[i] != guard {
				sumOther += p.weights[i]
			}
		}
		if sumOther <= p.k {
			s.removePB(pi)
		}
	}
	if !s.ok {
		return false
	}
	ok := s.AddClause(guard.Neg())
	s.checkInvariants("RetireGuard")
	return ok
}

// removePB detaches PB constraint pi from all occurrence lists, clears any
// stale reason references to it on the (level-0) trail, and recycles its
// slot for future AddPB calls.
func (s *Solver) removePB(pi int32) {
	p := s.pbs[pi]
	if p == nil {
		return
	}
	for _, l := range p.lits {
		occ := s.pbOcc[l.index()]
		j := 0
		for _, q := range occ {
			if q != pi {
				occ[j] = q
				j++
			}
		}
		s.pbOcc[l.index()] = occ[:j]
	}
	// Level-0 assignments may still name this constraint as their reason;
	// conflict analysis never dereferences level-0 reasons, but clearing
	// them keeps slot recycling airtight.
	for _, l := range s.trail {
		v := l.Var()
		if s.reasons[v].pb == pi+1 {
			s.reasons[v] = reason{}
		}
	}
	s.pbs[pi] = nil
	s.pbGens[pi]++ // invalidate outstanding PBRef handles to this slot
	s.pbFree = append(s.pbFree, pi)
	s.pbActive--
}

// ActivePBs returns the number of PB constraints currently attached to the
// propagation structures (added and not retired).
func (s *Solver) ActivePBs() int { return s.pbActive }

// PBSlots returns the number of PB constraint slots ever allocated,
// including recycled ones. A solve loop that retires its temporary
// constraints keeps this bounded.
func (s *Solver) PBSlots() int { return len(s.pbs) }

// PBOccupancy returns the total length of all PB occurrence lists — the
// per-assignment bookkeeping cost. Retiring a constraint removes its
// occurrences, so this is a direct memory/time regression signal.
func (s *Solver) PBOccupancy() int {
	n := 0
	for _, occ := range s.pbOcc {
		n += len(occ)
	}
	return n
}

// propagatePB handles PB constraints after literal l became true. The sum
// update itself happened in enqueue; here we detect conflicts and force
// literals whose weight no longer fits.
func (s *Solver) propagatePB(l Lit) *clause {
	for _, pi := range s.pbOcc[l.index()] {
		p := s.pbs[pi]
		if p.sumTrue > p.k {
			return s.pbConflictClause(p)
		}
		slack := p.k - p.sumTrue
		if p.maxW <= slack {
			continue
		}
		for i, q := range p.lits {
			if p.weights[i] > slack && s.value(q) == lUndef {
				if !s.enqueue(q.Neg(), reason{pb: pi + 1}) {
					return s.pbConflictClause(p)
				}
			}
		}
	}
	return nil
}

// pbConflictClause synthesizes a conflicting clause (all literals false)
// from the true literals of a violated PB constraint. The returned clause
// is a per-solver scratch object valid only until the next PB conflict:
// conflict analysis consumes it immediately and never retains it, so
// reusing one backing array keeps the conflict-heavy descent rounds off
// the allocator.
func (s *Solver) pbConflictClause(p *pbConstraint) *clause {
	lits := s.pbConfl.lits[:0]
	for _, q := range p.lits {
		if s.value(q) == lTrue {
			lits = append(lits, q.Neg())
		}
	}
	s.pbConfl.lits = lits
	return &s.pbConfl
}

// pbReasonLits builds the reason clause for the assignment of variable v
// forced by PB constraint pi: the implied literal plus the negations of
// constraint literals that were already true when v was assigned. The
// returned slice is per-solver scratch, valid until the next call: analyze
// and redundant both consume a reason fully before requesting the next
// one, so a single buffer serves every PB reason in a search.
func (s *Solver) pbReasonLits(pi int, v int) []Lit {
	p := s.pbs[pi]
	var implied Lit
	if s.assigns[v] == lTrue {
		implied = Lit(int32(v))
	} else {
		implied = Lit(-int32(v))
	}
	lits := append(s.pbReasonBuf[:0], implied)
	vpos := s.trailPosOf(v)
	for _, q := range p.lits {
		if s.value(q) == lTrue && s.trailPosOf(q.Var()) < vpos {
			lits = append(lits, q.Neg())
		}
	}
	s.pbReasonBuf = lits
	return lits
}

func (s *Solver) trailPosOf(v int) int32 {
	if v < len(s.trailPos) {
		return s.trailPos[v]
	}
	return 1 << 30
}
