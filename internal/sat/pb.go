package sat

// PBTerm is one weighted literal of a pseudo-Boolean constraint.
type PBTerm struct {
	Lit    Lit
	Weight int64
}

// pbConstraint represents sum(w_i * l_i) <= k with counter-based
// propagation: sumTrue tracks the weight of currently-true literals and is
// maintained incrementally by enqueue/cancelUntil.
type pbConstraint struct {
	lits    []Lit
	weights []int64
	wmap    map[Lit]int64
	k       int64
	sumTrue int64
	maxW    int64
}

func (p *pbConstraint) weightOf(l Lit) int64 { return p.wmap[l] }

// AddPB adds the constraint sum(terms) <= k. Terms with non-positive
// weights are rejected; duplicate literals are merged. Returns false if the
// solver becomes unsatisfiable at the top level.
func (s *Solver) AddPB(terms []PBTerm, k int64) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddPB above decision level 0")
	}
	wmap := make(map[Lit]int64, len(terms))
	for _, t := range terms {
		if t.Weight <= 0 {
			panic("sat: non-positive PB weight")
		}
		if t.Lit == 0 || t.Lit.Var() > s.nVars {
			panic("sat: bad PB literal")
		}
		wmap[t.Lit] += t.Weight
	}
	p := &pbConstraint{wmap: wmap, k: k}
	for l, w := range wmap {
		p.lits = append(p.lits, l)
		p.weights = append(p.weights, w)
		if w > p.maxW {
			p.maxW = w
		}
		// already-true literals at level 0 count immediately
		if s.value(l) == lTrue {
			p.sumTrue += w
		}
	}
	if p.sumTrue > p.k {
		s.ok = false
		return false
	}
	s.pbs = append(s.pbs, p)
	pi := int32(len(s.pbs) - 1)
	for _, l := range p.lits {
		s.pbOcc[l.index()] = append(s.pbOcc[l.index()], pi)
	}
	// initial propagation: literals too heavy to ever be true
	for i, l := range p.lits {
		if s.value(l) == lUndef && p.sumTrue+p.weights[i] > p.k {
			if !s.enqueue(l.Neg(), reason{pb: pi + 1}) {
				s.ok = false
				return false
			}
		}
	}
	if s.propagate() != nil {
		s.ok = false
		return false
	}
	return true
}

// propagatePB handles PB constraints after literal l became true. The sum
// update itself happened in enqueue; here we detect conflicts and force
// literals whose weight no longer fits.
func (s *Solver) propagatePB(l Lit) *clause {
	for _, pi := range s.pbOcc[l.index()] {
		p := s.pbs[pi]
		if p.sumTrue > p.k {
			return s.pbConflictClause(p)
		}
		slack := p.k - p.sumTrue
		if p.maxW <= slack {
			continue
		}
		for i, q := range p.lits {
			if p.weights[i] > slack && s.value(q) == lUndef {
				if !s.enqueue(q.Neg(), reason{pb: pi + 1}) {
					return s.pbConflictClause(p)
				}
			}
		}
	}
	return nil
}

// pbConflictClause synthesizes a conflicting clause (all literals false)
// from the true literals of a violated PB constraint.
func (s *Solver) pbConflictClause(p *pbConstraint) *clause {
	var lits []Lit
	for _, q := range p.lits {
		if s.value(q) == lTrue {
			lits = append(lits, q.Neg())
		}
	}
	return &clause{lits: lits}
}

// pbReasonLits builds the reason clause for the assignment of variable v
// forced by PB constraint pi: the implied literal plus the negations of
// constraint literals that were already true when v was assigned.
func (s *Solver) pbReasonLits(pi int, v int) []Lit {
	p := s.pbs[pi]
	var implied Lit
	if s.assigns[v] == lTrue {
		implied = Lit(int32(v))
	} else {
		implied = Lit(-int32(v))
	}
	lits := []Lit{implied}
	vpos := s.trailPosOf(v)
	for _, q := range p.lits {
		if s.value(q) == lTrue && s.trailPosOf(q.Var()) < vpos {
			lits = append(lits, q.Neg())
		}
	}
	return lits
}

func (s *Solver) trailPosOf(v int) int32 {
	if v < len(s.trailPos) {
		return s.trailPos[v]
	}
	return 1 << 30
}
