package sat

import "testing"

// TestDetachClauseWiden: retracting a clause and re-adding a widened form
// must change satisfiability exactly as replacing it would.
func TestDetachClauseWiden(t *testing.T) {
	s := New()
	x1, x2, x3 := s.NewVar(), s.NewVar(), s.NewVar()
	ref, ok := s.AddClauseRef(Lit(x1), Lit(x2))
	if !ok || !ref.Valid() {
		t.Fatalf("AddClauseRef: ok=%v valid=%v", ok, ref.Valid())
	}
	if got := s.Solve(Lit(x1).Neg(), Lit(x2).Neg()); got != Unsat {
		t.Fatalf("before widen: Solve = %v, want Unsat", got)
	}

	s.ForgetLearnts() // assumption-level refutations may have banked learnts
	s.DetachClause(ref)
	if ref.Valid() {
		t.Fatalf("handle still valid after DetachClause")
	}
	s.DetachClause(ref) // double detach: no-op

	wide, ok := s.AddClauseRef(Lit(x1), Lit(x2), Lit(x3))
	if !ok || !wide.Valid() {
		t.Fatalf("re-add: ok=%v valid=%v", ok, wide.Valid())
	}
	if got := s.Solve(Lit(x1).Neg(), Lit(x2).Neg()); got != Sat {
		t.Fatalf("after widen: Solve = %v, want Sat", got)
	}
	if !s.ValueOf(x3) {
		t.Fatalf("widened clause not enforced: x3 false with x1, x2 assumed false")
	}
	if got := s.Solve(Lit(x1).Neg(), Lit(x2).Neg(), Lit(x3).Neg()); got != Unsat {
		t.Fatalf("widened clause dropped entirely: Solve = %v, want Unsat", got)
	}
}

// TestDetachReleasesPropagation: a level-0 assignment propagated through a
// clause must be released when the clause is detached and learnts are
// forgotten — the trail rebuild re-derives only what the surviving formula
// implies.
func TestDetachReleasesPropagation(t *testing.T) {
	s := New()
	x1, x2 := s.NewVar(), s.NewVar()
	ref, _ := s.AddClauseRef(Lit(x1), Lit(x2))
	s.AddClause(Lit(x1).Neg()) // axiom: !x1, so the clause forces x2
	if !s.FixedFalse(Lit(x2).Neg()) {
		t.Fatalf("x2 not propagated true at level 0")
	}
	s.DetachClause(ref)
	s.ForgetLearnts()
	if !s.FixedFalse(Lit(x1)) {
		t.Fatalf("axiom !x1 lost by ForgetLearnts")
	}
	if s.FixedFalse(Lit(x2).Neg()) || s.FixedFalse(Lit(x2)) {
		t.Fatalf("x2 still fixed after its deriving clause was detached")
	}
	if got := s.Solve(Lit(x2).Neg()); got != Sat {
		t.Fatalf("Solve assuming !x2 = %v, want Sat after detach", got)
	}
}

// TestForgetLearntsPreservesSemantics: forgetting learnts changes no
// answers, only derived state; level-0 learnt units must be unwound (they
// are consequences, not axioms) yet re-derivable by search.
func TestForgetLearntsPreservesSemantics(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Lit(a), Lit(b))
	s.AddClause(Lit(a), Lit(b).Neg())
	// (a|b) and (a|!b) imply a; a refutation under !a learns it at level 0.
	if got := s.Solve(Lit(a).Neg()); got != Unsat {
		t.Fatalf("Solve assuming !a = %v, want Unsat", got)
	}
	s.ForgetLearnts()
	if s.FixedFalse(Lit(a).Neg()) {
		t.Fatalf("learnt unit a survived ForgetLearnts as a fixed fact")
	}
	// Still implied by the originals: the answer must not change.
	if got := s.Solve(Lit(a).Neg()); got != Unsat {
		t.Fatalf("after forget: Solve assuming !a = %v, want Unsat", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("after forget: Solve = %v, want Sat", got)
	}
	if !s.ValueOf(a) {
		t.Fatalf("model violates implied literal a")
	}
}

// TestRemovePBWiden: removing an at-most-one row and re-adding it over a
// wider literal set is the PB half of skeleton widening.
func TestRemovePBWiden(t *testing.T) {
	s := New()
	x1, x2, x3 := s.NewVar(), s.NewVar(), s.NewVar()
	terms := []PBTerm{{Lit: Lit(x1), Weight: 1}, {Lit: Lit(x2), Weight: 1}}
	ref, ok := s.AddPBRef(terms, 1)
	if !ok {
		t.Fatalf("AddPBRef rejected")
	}
	if got := s.Solve(Lit(x1), Lit(x2)); got != Unsat {
		t.Fatalf("AMO violated: Solve = %v, want Unsat", got)
	}
	s.ForgetLearnts()
	s.RemovePB(ref)
	s.RemovePB(ref) // stale handle: no-op
	if got := s.Solve(Lit(x1), Lit(x2)); got != Sat {
		t.Fatalf("after RemovePB: Solve = %v, want Sat", got)
	}
	wide := []PBTerm{{Lit: Lit(x1), Weight: 1}, {Lit: Lit(x2), Weight: 1}, {Lit: Lit(x3), Weight: 1}}
	if _, ok := s.AddPBRef(wide, 1); !ok {
		t.Fatalf("re-add rejected")
	}
	if got := s.Solve(Lit(x1), Lit(x3)); got != Unsat {
		t.Fatalf("widened AMO not enforced: Solve = %v, want Unsat", got)
	}
	if got := s.Solve(Lit(x3)); got != Sat {
		t.Fatalf("widened AMO overconstrains: Solve = %v, want Sat", got)
	}
}

// TestNumClausesTracksDetach: the live-clause count must reflect detaches,
// including across the lazy compaction threshold.
func TestNumClausesTracksDetach(t *testing.T) {
	s := New()
	vars := make([]int, 100)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	refs := make([]ClauseRef, 0, 99)
	for i := 0; i+1 < len(vars); i++ {
		r, _ := s.AddClauseRef(Lit(vars[i]), Lit(vars[i+1]))
		refs = append(refs, r)
	}
	if got := s.NumClauses(); got != 99 {
		t.Fatalf("NumClauses = %d, want 99", got)
	}
	for _, r := range refs[:80] {
		s.DetachClause(r)
	}
	if got := s.NumClauses(); got != 19 {
		t.Fatalf("NumClauses after detaching 80 = %d, want 19", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve after compaction = %v, want Sat", got)
	}
}
