package lockheldcall_test

import (
	"path/filepath"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis/analysistest"
	"github.com/paper-repo-growth/go-arxiv/internal/analysis/lockheldcall"
)

func TestLockHeldCall(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "epochlock"), lockheldcall.Analyzer)
}
