// Package lockheldcall pins the lock taxonomy of the solver stack: which
// locks are long-hold, which calls may block, and which paths must stay
// lock-free. It is seeded from a real bug: Session.Epoch() once took the
// session mutex — held for the duration of a solve — so the serving
// tier's coalescing-key computation queued behind the leader solve and
// coalescing never fired.
//
// Rules, driven by goarxivlint directives:
//
//	R1: a function that calls a goarxivlint:blocking callee while a
//	    goarxivlint:lock mutex is held (Lock or RLock, including via
//	    defer Unlock) must itself be annotated goarxivlint:blocking —
//	    holding a long-hold lock across a blocking call is part of the
//	    caller's contract and must be declared, not implicit.
//	R2: a method annotated goarxivlint:lockfree must not acquire any
//	    goarxivlint:lock mutex (the Epoch() bug class directly).
//	R3: a field annotated goarxivlint:lockfree must have a sync/atomic
//	    type — a plain field cannot be read safely without the lock.
package lockheldcall

import (
	"go/ast"
	"go/types"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis"
)

// Analyzer flags blocking calls under annotated locks, lock acquisition
// on lock-free paths, and non-atomic lock-free fields.
var Analyzer = &analysis.Analyzer{
	Name: "lockheldcall",
	Doc:  "check goarxivlint lock/blocking/lockfree annotations: no undeclared blocking calls under long-hold locks, no locks on lock-free paths, atomic types for lock-free fields",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, n)
				return false // checkFunc walks the body itself
			case *ast.StructType:
				checkFields(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkFields enforces R3 at the declaration site.
func checkFields(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if _, ok := pass.Dirs.FieldDirective(obj, "lockfree"); !ok {
				continue
			}
			if !isAtomicType(obj.Type()) {
				pass.Reportf(name.Pos(),
					"goarxivlint:lockfree field %s has non-atomic type %s; use a sync/atomic type",
					name.Name, obj.Type())
			}
		}
	}
}

// isAtomicType reports whether t is (a pointer to) a type from
// sync/atomic, e.g. atomic.Uint64 or atomic.Pointer[T].
func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// checkFunc walks one function body in source order tracking which
// annotated locks are held, enforcing R1 and R2. The tracking is linear
// (no control-flow join analysis): Lock/RLock adds, Unlock/RUnlock
// removes, defer Unlock holds to function end — which matches how this
// codebase actually uses its solve locks.
func checkFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	obj, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	_, callerBlocking := pass.Dirs.FuncDirective(obj, "blocking")
	_, lockfree := pass.Dirs.FuncDirective(obj, "lockfree")

	held := make(map[*types.Var]bool)
	var funcLits []*ast.FuncLit
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lock, op := lockOp(pass, n.Call); lock != nil && op == opRelease {
				// Deferred unlock: the lock stays held to function end.
				return false
			}
			return true
		case *ast.FuncLit:
			// Closure bodies run later (goroutines, deferred funcs,
			// singleflight leaders); analyze them without the current
			// lock context instead of attributing held locks to them.
			funcLits = append(funcLits, n)
			return false
		case *ast.CallExpr:
			if lock, op := lockOp(pass, n); lock != nil {
				switch op {
				case opAcquire:
					if lockfree {
						pass.Reportf(n.Pos(),
							"goarxivlint:lockfree function %s acquires annotated lock %s",
							decl.Name.Name, lock.Name())
					}
					held[lock] = true
				case opRelease:
					delete(held, lock)
				}
				return true
			}
			if callee := calleeFunc(pass, n); callee != nil && !callerBlocking && len(held) > 0 {
				if _, blocking := pass.Dirs.FuncDirective(callee, "blocking"); blocking {
					pass.Reportf(n.Pos(),
						"call to blocking %s while annotated lock is held; annotate %s goarxivlint:blocking or move the call outside the lock",
						callee.Name(), decl.Name.Name)
				}
			}
		}
		return true
	})

	// Closures inherit the enclosing function's blocking declaration (a
	// blocking func's worker closure is part of its contract) but start
	// with no locks held.
	for _, lit := range funcLits {
		checkFuncLit(pass, lit, callerBlocking)
	}
}

func checkFuncLit(pass *analysis.Pass, lit *ast.FuncLit, callerBlocking bool) {
	held := make(map[*types.Var]bool)
	var nested []*ast.FuncLit
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lock, op := lockOp(pass, n.Call); lock != nil && op == opRelease {
				return false
			}
			return true
		case *ast.FuncLit:
			nested = append(nested, n)
			return false
		case *ast.CallExpr:
			if lock, op := lockOp(pass, n); lock != nil {
				switch op {
				case opAcquire:
					held[lock] = true
				case opRelease:
					delete(held, lock)
				}
				return true
			}
			if callee := calleeFunc(pass, n); callee != nil && !callerBlocking && len(held) > 0 {
				if _, blocking := pass.Dirs.FuncDirective(callee, "blocking"); blocking {
					pass.Reportf(n.Pos(),
						"call to blocking %s while annotated lock is held in func literal; move the call outside the lock",
						callee.Name())
				}
			}
		}
		return true
	})
	for _, n := range nested {
		checkFuncLit(pass, n, callerBlocking)
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opAcquire
	opRelease
)

// lockOp reports whether call is Lock/RLock/Unlock/RUnlock on a
// goarxivlint:lock annotated mutex, and which operation it is.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (*types.Var, lockOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	var op lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opAcquire
	case "Unlock", "RUnlock":
		op = opRelease
	default:
		return nil, opNone
	}
	v := mutexVar(pass, sel.X)
	if v == nil {
		return nil, opNone
	}
	if _, ok := pass.Dirs.FieldDirective(v, "lock"); !ok {
		return nil, opNone
	}
	return v, op
}

// mutexVar resolves the receiver expression of a lock call to the
// variable it names: a struct field (s.mu, s.inner.mu) or a plain var.
func mutexVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// calleeFunc resolves the called function or method object, if static.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
