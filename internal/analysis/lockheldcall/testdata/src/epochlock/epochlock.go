// Package epochlock reconstructs the PR 7 epoch-under-mutex bug: an
// Epoch accessor that takes the long-hold solve mutex, serializing the
// serving tier's coalescing-key computation behind in-flight solves.
package epochlock

import (
	"sync"
	"sync/atomic"
)

type session struct {
	// goarxivlint:lock
	mu sync.Mutex
	// goarxivlint:lockfree
	epoch uint64 // want `goarxivlint:lockfree field epoch has non-atomic type uint64`
	// goarxivlint:lockfree
	epochA atomic.Uint64 // atomic mirror: fine
}

// goarxivlint:blocking cancel=none
func (s *session) solve() uint64 {
	return s.epochA.Load()
}

// Epoch is the historical bug: annotated lock-free (the serving tier
// computes coalescing keys through it) but grabs the solve mutex.
//
// goarxivlint:lockfree
func (s *session) Epoch() uint64 {
	s.mu.Lock() // want `goarxivlint:lockfree function Epoch acquires annotated lock mu`
	defer s.mu.Unlock()
	return s.epoch
}

// EpochFast is the fix: read the atomic mirror, never touch the lock.
//
// goarxivlint:lockfree
func (s *session) EpochFast() uint64 {
	return s.epochA.Load()
}

// Resolve holds the solve mutex across a blocking solve without declaring
// itself blocking — callers cannot see that it stalls the lock.
func (s *session) Resolve() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solve() // want `call to blocking solve while annotated lock is held`
}

// ResolveDeclared is the annotated escape: it does exactly the same
// thing, but its signature carries the blocking contract.
//
// goarxivlint:blocking cancel=none
func (s *session) ResolveDeclared() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solve()
}

// ResolveOutside releases before solving: no finding.
func (s *session) ResolveOutside() uint64 {
	s.mu.Lock()
	s.epoch++
	s.mu.Unlock()
	return s.solve()
}
