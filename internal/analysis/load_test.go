package analysis

import (
	"strings"
	"testing"
)

// TestLoadModule typechecks the entire module (plus its stdlib closure)
// from source — the same load the lint gate performs — and sanity-checks
// target selection and directive indexing.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck is slow")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	targets := prog.Targets()
	if len(targets) == 0 {
		t.Fatal("no target packages loaded")
	}
	seen := make(map[string]bool)
	for _, pkg := range targets {
		if pkg.Standard {
			t.Errorf("standard package %s in targets", pkg.ImportPath)
		}
		base := pkg.ImportPath
		if i := strings.IndexByte(base, ' '); i >= 0 {
			base = base[:i]
		}
		if pkg.ForTest == "" && seen[base] {
			t.Errorf("package %s visited more than once", base)
		}
		seen[base] = true
	}
	for _, want := range []string{
		"github.com/paper-repo-growth/go-arxiv/internal/sat",
		"github.com/paper-repo-growth/go-arxiv/internal/concretize",
		"github.com/paper-repo-growth/go-arxiv/resolve",
		"github.com/paper-repo-growth/go-arxiv/serve",
	} {
		if !seen[want] {
			t.Errorf("expected target %s not loaded", want)
		}
	}
	if dirs := BuildDirectives(prog); len(dirs.funcs) == 0 || len(dirs.fields) == 0 {
		t.Errorf("directive index empty (funcs=%d fields=%d); annotations missing?",
			len(dirs.funcs), len(dirs.fields))
	}
}
