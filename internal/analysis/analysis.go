// Package analysis is a small, self-contained static-analysis framework
// modeled on golang.org/x/tools/go/analysis, built only on the standard
// library (go/parser + go/types over `go list` metadata) so the linter
// works in hermetic builds with no module downloads.
//
// An Analyzer inspects one package at a time through a Pass. Packages are
// loaded and typechecked from source by Load (see load.go), and project
// annotations (`// goarxivlint:` directives) are indexed across the whole
// program by BuildDirectives (see directives.go) so analyzers can see
// annotations on objects defined in other packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named analysis and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the interface between the driver and one analyzer run over one
// package. Analyzers report problems via Report/Reportf and must not
// retain the Pass after Run returns.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dirs indexes goarxivlint directives program-wide, so a pass over
	// package serve can see annotations declared in package resolve.
	Dirs *Directives
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
