// Package errtaxonomy pins the error-inspection contract of the public
// API: wrapped errors (resolve.MemberError carrying a member's failure,
// concretize.UnsatError under the portfolio) must stay inspectable, so
// callers outside a sentinel's defining package must use errors.Is, and
// extraction of concrete error types must use errors.As.
//
// Flagged:
//
//   - err == pkg.ErrSentinel / err != pkg.ErrSentinel where the sentinel
//     is a package-level error value defined in another package.
//   - err.(*SomeError) / switch err.(type) where the asserted types are
//     defined in another package.
//
// The defining package itself is exempt: that is where Is/As methods
// (e.g. UnsatError.Is comparing against ErrUnsatisfiable) legitimately
// compare identity.
package errtaxonomy

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis"
)

// Analyzer enforces errors.Is/errors.As over identity comparison and type
// assertion for errors crossing package boundaries.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc:  "forbid == against foreign sentinel errors and type assertions on error outside the defining package; require errors.Is / errors.As",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNilLiteral(pass, n.X) || isNilLiteral(pass, n.Y) {
					return true // err == nil is always fine
				}
				for _, operand := range []ast.Expr{n.X, n.Y} {
					if s := foreignSentinel(pass, operand, errorIface); s != nil {
						pass.Reportf(n.Pos(),
							"comparison %s against sentinel error %s.%s; use errors.Is",
							n.Op, s.Pkg().Name(), s.Name())
						break
					}
				}
			case *ast.TypeAssertExpr:
				if n.Type == nil {
					return true // part of a type switch, handled below
				}
				if !isErrorExpr(pass, n.X) {
					return true
				}
				if t := foreignErrorType(pass, pass.TypesInfo.Types[n.Type].Type, errorIface); t != nil {
					pass.Reportf(n.Pos(),
						"type assertion on error to %s outside its package; use errors.As", t)
				}
			case *ast.TypeSwitchStmt:
				expr := typeSwitchOperand(n)
				if expr == nil || !isErrorExpr(pass, expr) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc := stmt.(*ast.CaseClause)
					for _, tExpr := range cc.List {
						tv, ok := pass.TypesInfo.Types[tExpr]
						if !ok {
							continue
						}
						if t := foreignErrorType(pass, tv.Type, errorIface); t != nil {
							pass.Reportf(tExpr.Pos(),
								"type switch on error with case %s outside its package; use errors.As", t)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func isNilLiteral(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// isErrorExpr reports whether e has static type exactly `error`.
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

// foreignSentinel resolves e to a package-level error-typed variable
// defined outside the current package, or nil.
func foreignSentinel(pass *analysis.Pass, e ast.Expr, errorIface *types.Interface) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg() == pass.Pkg {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !types.Implements(v.Type(), errorIface) {
		return nil
	}
	return v
}

// foreignErrorType returns t if it is an error-implementing named type
// (possibly behind a pointer) defined outside the current package, else
// nil. Interface types (including `error` itself) are not flagged:
// narrowing to a behavior interface is not identity inspection.
func foreignErrorType(pass *analysis.Pass, t types.Type, errorIface *types.Interface) types.Type {
	if t == nil {
		return nil
	}
	if !types.Implements(t, errorIface) {
		return nil
	}
	if types.IsInterface(t) {
		return nil
	}
	core := t
	if p, ok := core.(*types.Pointer); ok {
		core = p.Elem()
	}
	named, ok := core.(*types.Named)
	if !ok {
		return nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || pkg == pass.Pkg {
		return nil
	}
	return t
}

func typeSwitchOperand(n *ast.TypeSwitchStmt) ast.Expr {
	var ta *ast.TypeAssertExpr
	switch s := n.Assign.(type) {
	case *ast.ExprStmt:
		ta, _ = s.X.(*ast.TypeAssertExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			ta, _ = s.Rhs[0].(*ast.TypeAssertExpr)
		}
	}
	if ta == nil {
		return nil
	}
	return ta.X
}
