package errtaxonomy_test

import (
	"path/filepath"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis/analysistest"
	"github.com/paper-repo-growth/go-arxiv/internal/analysis/errtaxonomy"
)

func TestErrTaxonomy(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "senterr"), errtaxonomy.Analyzer)
}
