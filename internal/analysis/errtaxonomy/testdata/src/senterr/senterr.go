// Package senterr reconstructs the resolve/concretize error taxonomy:
// a sentinel, a wrapping error type with an Is method, and the legal
// same-package identity comparison inside that Is method.
package senterr

import "errors"

// ErrUnsat is the sentinel for definitive unsatisfiability.
var ErrUnsat = errors.New("unsatisfiable")

// UnsatError wraps ErrUnsat with the conflicting roots.
type UnsatError struct {
	Roots []string
}

func (e *UnsatError) Error() string { return "unsatisfiable" }

// Is makes errors.Is(err, ErrUnsat) work; the identity comparison is in
// the defining package, the designed escape from the errtaxonomy rule.
func (e *UnsatError) Is(target error) bool { return target == ErrUnsat }
