// Package client consumes the senterr taxonomy from outside its defining
// package — where identity comparison and type assertion break wrapped
// errors (a portfolio MemberError wrapping an UnsatError would never
// compare equal to the sentinel).
package client

import (
	"errors"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis/errtaxonomy/testdata/src/senterr"
)

// BadCompare is the historical bug shape: portfolio callers comparing a
// possibly-wrapped error against the sentinel by identity.
func BadCompare(err error) bool {
	return err == senterr.ErrUnsat // want `comparison == against sentinel error senterr.ErrUnsat; use errors.Is`
}

func BadNotEqual(err error) bool {
	return err != senterr.ErrUnsat // want `comparison != against sentinel error senterr.ErrUnsat; use errors.Is`
}

func BadAssert(err error) ([]string, bool) {
	ue, ok := err.(*senterr.UnsatError) // want `type assertion on error to \*.*UnsatError outside its package; use errors.As`
	if !ok {
		return nil, false
	}
	return ue.Roots, true
}

func BadSwitch(err error) string {
	switch err.(type) {
	case *senterr.UnsatError: // want `type switch on error with case \*.*UnsatError outside its package; use errors.As`
		return "unsat"
	default:
		return "other"
	}
}

// Good uses the taxonomy as designed; nil checks stay legal.
func Good(err error) ([]string, bool) {
	if err == nil {
		return nil, false
	}
	var ue *senterr.UnsatError
	if errors.As(err, &ue) && errors.Is(err, senterr.ErrUnsat) {
		return ue.Roots, true
	}
	return nil, false
}
