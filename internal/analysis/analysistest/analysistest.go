// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want "regexp"` comments in the fixture
// source, in the style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <analyzer>/testdata/src/<fixture>/ — inside the
// module, so they typecheck with the ordinary loader, but under a
// testdata directory so `./...` wildcards (the build, the lint gate)
// never see them. A fixture file imports sibling fixture packages by
// their full module path.
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis"
)

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)
var strRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture rooted at dir (patterns default to "./..."),
// applies the analyzer to every target package, and reports mismatches
// between diagnostics and // want comments as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	prog, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	seenFile := make(map[string]bool)
	for _, pkg := range prog.Targets() {
		for _, f := range pkg.Files {
			name := prog.Fset.Position(f.Pos()).Filename
			if seenFile[name] {
				continue // base package re-listed under a test variant
			}
			seenFile[name] = true
			wants = append(wants, collectWants(t, prog, f)...)
		}
	}

	findings, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for i := range findings {
		fd := &findings[i]
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == fd.Pos.Filename && w.line == fd.Pos.Line && w.re.MatchString(fd.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", fd)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
		}
	}
}

// collectWants extracts // want expectations from one file. The patterns
// are Go string literals (quoted or backquoted) following the word want;
// several patterns on one line all anchor to that line.
func collectWants(t *testing.T, prog *analysis.Program, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := prog.Fset.Position(c.Pos())
			for _, lit := range strRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: lit})
			}
		}
	}
	return out
}
