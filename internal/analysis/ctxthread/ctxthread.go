// Package ctxthread pins context threading through the blocking call
// graph. Every exported blocking entry point whose cancellation mode is
// the default (cancel=ctx) must accept a context.Context, and no caller
// that has a context may call a blocking callee with a fresh
// context.Background() / context.TODO() — that silently detaches the
// callee from the caller's deadline and cancellation, exactly the class
// of bug the serving tier's deadline plumbing (waiter deadlines vs leader
// detach via context.WithoutCancel) exists to prevent.
//
// Blocking functions with other cancellation mechanisms declare them:
// cancel=interrupt (sat.Solver.Solve is canceled by Interrupt, not ctx)
// and cancel=none (Session.Extend is non-interruptible skeleton surgery).
package ctxthread

import (
	"go/ast"
	"go/types"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis"
)

// Analyzer enforces context.Context parameters on ctx-cancelable blocking
// entry points and flags context.Background()/TODO() passed to blocking
// callees by functions that have a context of their own.
var Analyzer = &analysis.Analyzer{
	Name: "ctxthread",
	Doc:  "exported goarxivlint:blocking entry points (cancel=ctx) must take a context.Context; callers with a context must not hand blocking callees a fresh Background/TODO",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				obj, _ := pass.TypesInfo.Defs[n.Name].(*types.Func)
				if obj == nil {
					return true
				}
				checkSignature(pass, obj, n.Name)
				if n.Body != nil {
					checkBody(pass, obj, n.Body)
				}
				return false
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					if len(m.Names) == 0 {
						continue
					}
					if obj, ok := pass.TypesInfo.Defs[m.Names[0]].(*types.Func); ok {
						checkSignature(pass, obj, m.Names[0])
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkSignature enforces the entry-point rule: exported, blocking,
// default cancel mode => first parameter is a context.Context.
func checkSignature(pass *analysis.Pass, obj *types.Func, name *ast.Ident) {
	dir, ok := pass.Dirs.FuncDirective(obj, "blocking")
	if !ok || !obj.Exported() || dir.Arg("cancel", "ctx") != "ctx" {
		return
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	if params.Len() == 0 || !isContext(params.At(0).Type()) {
		pass.Reportf(name.Pos(),
			"exported blocking %s must take a context.Context first parameter (or declare goarxivlint:blocking cancel=interrupt|none)",
			name.Name)
	}
}

// checkBody flags blocking calls that discard an available context by
// passing a fresh context.Background() or context.TODO(). Function
// literals are included: a closure inside a function with a context (the
// singleflight leader pattern) is still on that request's call path.
func checkBody(pass *analysis.Pass, obj *types.Func, body *ast.BlockStmt) {
	if !hasContextParam(obj.Type().(*types.Signature)) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return true
		}
		if _, blocking := pass.Dirs.FuncDirective(callee, "blocking"); !blocking {
			return true
		}
		for _, arg := range call.Args {
			if name := freshContextCall(pass, arg); name != "" {
				pass.Reportf(arg.Pos(),
					"blocking call to %s drops the caller's context (context.%s()); pass or derive from the caller's ctx",
					callee.Name(), name)
			}
		}
		return true
	})
}

// freshContextCall reports whether e is a direct context.Background() or
// context.TODO() call, returning the function name if so.
func freshContextCall(pass *analysis.Pass, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	f := calleeFunc(pass, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" {
		return ""
	}
	if f.Name() == "Background" || f.Name() == "TODO" {
		return f.Name()
	}
	return ""
}

func hasContextParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContext(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
