// Package ctxentry reconstructs the ctx-less blocking entry point: a
// public solve API that cannot be canceled because it never accepts a
// context, and a serving path that silently detaches a blocking callee
// from its request deadline with a fresh Background context.
package ctxentry

import "context"

// Solve is the bug shape: an exported blocking entry with no context.
//
// goarxivlint:blocking
func Solve(roots []string) error { // want `exported blocking Solve must take a context.Context first parameter`
	return SolveCtx(context.Background(), roots)
}

// SolveCtx threads the context: fine.
//
// goarxivlint:blocking
func SolveCtx(ctx context.Context, roots []string) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// SolveInterrupt is the annotated escape: cancellation happens through an
// out-of-band interrupt (the sat.Solver.Interrupt pattern), declared in
// the directive instead of the signature.
//
// goarxivlint:blocking cancel=interrupt
func SolveInterrupt(roots []string) error {
	return nil
}

// Handler is a blocking interface entry point; signature rules apply to
// interface method declarations too.
type Handler interface {
	// goarxivlint:blocking
	Handle(name string) error // want `exported blocking Handle must take a context.Context first parameter`
}

// Serve has a deadline-carrying context but hands its blocking callee a
// fresh one — waiters would never see their deadlines honored.
//
// goarxivlint:blocking
func Serve(ctx context.Context, roots []string) error {
	return SolveCtx(context.Background(), roots) // want `blocking call to SolveCtx drops the caller's context \(context.Background\(\)\)`
}

// ServeDerived detaches deliberately but keeps values, the singleflight
// leader pattern: deriving from the caller's ctx is fine.
//
// goarxivlint:blocking
func ServeDerived(ctx context.Context, roots []string) error {
	return SolveCtx(context.WithoutCancel(ctx), roots)
}
