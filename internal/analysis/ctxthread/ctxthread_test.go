package ctxthread_test

import (
	"path/filepath"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis/analysistest"
	"github.com/paper-repo-growth/go-arxiv/internal/analysis/ctxthread"
)

func TestCtxThread(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "ctxentry"), ctxthread.Analyzer)
}
