package slicereturn_test

import (
	"path/filepath"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis/analysistest"
	"github.com/paper-repo-growth/go-arxiv/internal/analysis/slicereturn"
)

func TestSliceReturn(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "picks"), slicereturn.Analyzer)
}
