// Package picks reconstructs the coalesced-Picks ownership bug: a result
// cache whose accessors hand out the cached map itself, so one waiter
// mutating its "own" result corrupts every other waiter sharing the
// leader's solve.
package picks

type cache struct {
	last map[string]string
	hist []string
}

// Last is the bug shape: the cached map escapes by reference.
func (c *cache) Last() map[string]string {
	return c.last // want `exported Last returns a slice/map aliasing internal state`
}

// History aliases through a trivially-assigned local.
func (c *cache) History() []string {
	h := c.hist
	return h // want `exported History returns a slice/map aliasing internal state`
}

// Recent aliases through a reslice — still the same backing array.
func (c *cache) Recent(n int) []string {
	return c.hist[:n] // want `exported Recent returns a slice/map aliasing internal state`
}

// LastView is the annotated escape: a deliberate borrowed view whose
// contract is documented at the declaration.
//
// goarxivlint:owned read-only view; callers must not mutate
func (c *cache) LastView() map[string]string {
	return c.last
}

// LastCopy is the fix: a fresh map per caller (serve.copyResult's shape).
func (c *cache) LastCopy() map[string]string {
	out := make(map[string]string, len(c.last))
	for k, v := range c.last {
		out[k] = v
	}
	return out
}

// Merge returns one of its own arguments: the caller already owns it.
func Merge(dst map[string]string, src map[string]string) map[string]string {
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
