// Package slicereturn pins the ownership contract on returned slices and
// maps. It is seeded from a real contract in the serving tier: coalesced
// followers share one leader Result, so Result.Picks must be a fresh copy
// per waiter (serve.copyResult) — an exported accessor quietly returning
// an internal map or slice hands callers a mutable alias into shared
// state.
//
// An exported function or method whose return value is a slice or map
// aliasing a field reached through the receiver or a parameter (directly,
// through a map/slice index, or via a trivially-assigned local) is
// flagged unless its declaration carries goarxivlint:owned — the escape
// hatch for accessors whose doc comment spells out the borrowed-view
// contract (e.g. repo.Package.Versions: "owned by the package; callers
// must not mutate").
package slicereturn

import (
	"go/ast"
	"go/types"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis"
)

// Analyzer flags exported functions returning aliases of internal
// slice/map state without a copy or an ownership annotation.
var Analyzer = &analysis.Analyzer{
	Name: "slicereturn",
	Doc:  "flag exported functions returning a slice/map aliasing receiver or parameter fields without a copy; goarxivlint:owned documents intentional borrowed views",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if _, owned := pass.Dirs.FuncDirective(obj, "owned"); owned {
				continue
			}
			checkFunc(pass, fd, obj)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, obj *types.Func) {
	sig := obj.Type().(*types.Signature)
	results := sig.Results()
	aliasable := false
	for i := 0; i < results.Len(); i++ {
		if isSliceOrMap(results.At(i).Type()) {
			aliasable = true
		}
	}
	if !aliasable {
		return
	}

	// Roots: the receiver and every parameter. Returning a bare parameter
	// is fine (the caller handed it in); returning a *field of* one leaks
	// internal state.
	roots := make(map[types.Object]bool)
	if recv := sig.Recv(); recv != nil {
		roots[recv] = true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		roots[sig.Params().At(i)] = true
	}

	// One linear pass marking locals trivially assigned from an aliasing
	// expression (v := s.field, v, ok := u.m[k], v := s.field[a:b]).
	tainted := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			switch {
			case len(assign.Rhs) == len(assign.Lhs):
				rhs = assign.Rhs[i]
			case len(assign.Rhs) == 1 && i == 0:
				rhs = assign.Rhs[0] // v, ok := m[k]
			}
			if rhs == nil || !aliases(pass, rhs, roots, tainted) {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				tainted[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				tainted[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are not this function's return path
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			tv, ok := pass.TypesInfo.Types[res]
			if !ok || !isSliceOrMap(tv.Type) {
				continue
			}
			if aliases(pass, res, roots, tainted) {
				pass.Reportf(res.Pos(),
					"exported %s returns a slice/map aliasing internal state; return a copy or annotate the declaration goarxivlint:owned",
					fd.Name.Name)
			}
		}
		return true
	})
}

// aliases reports whether e reaches internal state through a root: a
// field selection rooted at a receiver/parameter, an index or reslice of
// such a selection, or a local already marked as aliasing.
func aliases(pass *analysis.Pass, e ast.Expr, roots, tainted map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj != nil && tainted[obj]
	case *ast.SelectorExpr:
		sel := pass.TypesInfo.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return false
		}
		return rootedAt(pass, e.X, roots, tainted)
	case *ast.IndexExpr:
		return aliases(pass, e.X, roots, tainted)
	case *ast.SliceExpr:
		return aliases(pass, e.X, roots, tainted)
	}
	return false
}

// rootedAt reports whether the selector base expression bottoms out at a
// receiver/parameter object or an aliasing local.
func rootedAt(pass *analysis.Pass, e ast.Expr, roots, tainted map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj != nil && (roots[obj] || tainted[obj])
	case *ast.SelectorExpr:
		return rootedAt(pass, e.X, roots, tainted)
	case *ast.IndexExpr:
		return rootedAt(pass, e.X, roots, tainted)
	case *ast.StarExpr:
		return rootedAt(pass, e.X, roots, tainted)
	}
	return false
}

func isSliceOrMap(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}
