package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and typechecked package.
type Package struct {
	// ImportPath is the go list identity, including test-variant suffixes
	// such as "p [p.test]" for a package rebuilt with its _test.go files.
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Standard   bool // part of the Go standard library
	DepOnly    bool // reached only as a dependency of the patterns
	ForTest    string
	// TypeErrors holds typechecking problems. Standard-library errors are
	// tolerated (source typechecking of runtime internals is best-effort);
	// errors in module packages make Load fail.
	TypeErrors []error
}

// Program is a loaded set of packages in dependency order.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	ByPath   map[string]*Package
}

// Targets returns the packages named by the load patterns (module packages
// and their test variants), the ones analyzers should visit. An in-package
// test variant ("p [p.test]") contains every file of its base package plus
// the _test.go files, so it supersedes the base to avoid visiting the
// non-test files twice. External test packages ("p_test [p.test]") are
// included; synthesized test mains are never loaded at all.
func (p *Program) Targets() []*Package {
	superseded := make(map[string]bool)
	for _, pkg := range p.Packages {
		if pkg.ForTest != "" && strings.HasPrefix(pkg.ImportPath, pkg.ForTest+" ") {
			superseded[pkg.ForTest] = true
		}
	}
	var out []*Package
	for _, pkg := range p.Packages {
		if pkg.Standard || pkg.DepOnly || superseded[pkg.ImportPath] {
			continue
		}
		out = append(out, pkg)
	}
	return out
}

// listPkg mirrors the subset of `go list -json` fields the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	ForTest    string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load runs `go list -deps -test` in dir over the patterns, parses every
// listed package from source, and typechecks the full closure (standard
// library included — there is no export-data reader in the stdlib, and
// hermetic builds cannot fetch golang.org/x/tools). CGO is disabled for
// the listing so cgo packages resolve to their pure-Go fallbacks.
//
// Patterns may be wildcards ("./...") or explicit directories; explicit
// paths reach packages under testdata/, which wildcards skip — that is how
// analysistest loads fixtures.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-test",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,ImportMap,Standard,ForTest,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPkg
	byPath := make(map[string]*listPkg)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Name == "main" && strings.HasSuffix(lp.ImportPath, ".test") {
			// Synthesized test-main package; its GoFiles are generated at
			// build time and may not exist on disk.
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, lp)
		byPath[lp.ImportPath] = lp
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		ByPath: make(map[string]*Package, len(listed)),
	}
	sizes := types.SizesFor("gc", build.Default.GOARCH)

	// `go list -deps` emits dependencies before dependents, so a single
	// in-order sweep typechecks imports before importers; the recursive
	// ensure handles any stragglers defensively.
	var ensure func(lp *listPkg) (*Package, error)
	ensure = func(lp *listPkg) (*Package, error) {
		if done, ok := prog.ByPath[lp.ImportPath]; ok {
			return done, nil
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			DepOnly:    lp.DepOnly,
			ForTest:    lp.ForTest,
		}
		// Mark in-progress to break accidental cycles (go list output is
		// acyclic, so hitting an in-progress entry is a loader bug).
		prog.ByPath[lp.ImportPath] = pkg

		if lp.ImportPath == "unsafe" {
			pkg.Types = types.Unsafe
			prog.Packages = append(prog.Packages, pkg)
			return pkg, nil
		}

		for _, fname := range lp.GoFiles {
			path := fname
			if !filepath.IsAbs(path) {
				path = filepath.Join(lp.Dir, fname)
			}
			f, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", path, err)
			}
			pkg.Files = append(pkg.Files, f)
		}

		imp := importerFunc(func(importPath string) (*types.Package, error) {
			resolved := importPath
			if mapped, ok := lp.ImportMap[importPath]; ok {
				resolved = mapped
			}
			if resolved == "unsafe" {
				return types.Unsafe, nil
			}
			dep := byPath[resolved]
			if dep == nil {
				return nil, fmt.Errorf("package %s (for %s) not in go list output", resolved, importPath)
			}
			depPkg, err := ensure(dep)
			if err != nil {
				return nil, err
			}
			return depPkg.Types, nil
		})

		cfg := &types.Config{
			Importer: imp,
			Sizes:    sizes,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		if !pkg.Standard {
			pkg.Info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
			}
		}
		// Ignore Check's error return: cfg.Error collected everything and
		// Check still produces a (possibly incomplete) package, which is
		// what tolerant stdlib loading needs.
		pkg.Types, _ = cfg.Check(lp.ImportPath, prog.Fset, pkg.Files, pkg.Info)
		if !pkg.Standard && len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("typechecking %s: %v (+%d more)", lp.ImportPath, pkg.TypeErrors[0], len(pkg.TypeErrors)-1)
		}
		prog.Packages = append(prog.Packages, pkg)
		return pkg, nil
	}

	for _, lp := range listed {
		if _, err := ensure(lp); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Finding is one diagnostic tagged with its analyzer and resolved position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every target package of prog and returns
// the combined findings sorted by position. Directives are indexed once,
// program-wide, before any analyzer runs.
func Run(prog *Program, analyzers []*Analyzer) ([]Finding, error) {
	dirs := BuildDirectives(prog)
	var findings []Finding
	for _, pkg := range prog.Targets() {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dirs:      dirs,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Pos:      prog.Fset.Position(d.Pos),
					Analyzer: name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
