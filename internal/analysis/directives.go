package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive is one parsed `// goarxivlint:<verb> [k=v ...]` annotation.
// The vocabulary (documented in internal/analysis/README.md):
//
//	goarxivlint:lock              on a mutex struct field: a long-hold lock
//	goarxivlint:blocking [cancel=ctx|interrupt|none]
//	                              on a func/method: may block for a long time
//	goarxivlint:lockfree          on a method: must not acquire annotated locks;
//	                              on a field: must be a sync/atomic type
//	goarxivlint:owned [reason...] on a slice/map-returning func: ownership
//	                              contract documented, silences slicereturn
type Directive struct {
	Verb string
	Args map[string]string
	Pos  token.Pos
}

// Arg returns the value of key, or def if the directive does not set it.
func (d Directive) Arg(key, def string) string {
	if v, ok := d.Args[key]; ok {
		return v
	}
	return def
}

// Directives indexes every goarxivlint annotation in a Program by the
// typechecked object it is attached to. Because base packages and their
// test variants are typechecked separately (distinct object identities),
// the index covers both; lookups work from any importing package.
type Directives struct {
	funcs  map[*types.Func][]Directive
	fields map[*types.Var][]Directive
}

// Func returns the directives attached to a function or method
// declaration (including interface method declarations).
//
// goarxivlint:owned borrowed view of the index; callers must not mutate
func (d *Directives) Func(obj *types.Func) []Directive {
	if obj == nil {
		return nil
	}
	return d.funcs[obj]
}

// Field returns the directives attached to a struct field declaration.
//
// goarxivlint:owned borrowed view of the index; callers must not mutate
func (d *Directives) Field(obj *types.Var) []Directive {
	if obj == nil {
		return nil
	}
	return d.fields[obj]
}

// FuncDirective returns the first directive with the given verb on obj.
func (d *Directives) FuncDirective(obj *types.Func, verb string) (Directive, bool) {
	for _, dir := range d.Func(obj) {
		if dir.Verb == verb {
			return dir, true
		}
	}
	return Directive{}, false
}

// FieldDirective returns the first directive with the given verb on obj.
func (d *Directives) FieldDirective(obj *types.Var, verb string) (Directive, bool) {
	for _, dir := range d.Field(obj) {
		if dir.Verb == verb {
			return dir, true
		}
	}
	return Directive{}, false
}

// parseDirectives extracts goarxivlint directives from a comment group.
// Both "//goarxivlint:verb" and "// goarxivlint:verb" spellings are
// accepted; arguments are space-separated key=value pairs (a bare word is
// recorded with an empty value, usable as free-text rationale).
func parseDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "goarxivlint:") {
			continue
		}
		rest := strings.TrimPrefix(text, "goarxivlint:")
		parts := strings.Fields(rest)
		if len(parts) == 0 {
			continue
		}
		d := Directive{Verb: parts[0], Pos: c.Pos()}
		if len(parts) > 1 {
			d.Args = make(map[string]string, len(parts)-1)
			for _, p := range parts[1:] {
				if k, v, ok := strings.Cut(p, "="); ok {
					d.Args[k] = v
				} else {
					d.Args[p] = ""
				}
			}
		}
		out = append(out, d)
	}
	return out
}

// BuildDirectives walks every non-stdlib package of prog and indexes
// goarxivlint annotations on function declarations, interface method
// declarations, and struct fields.
func BuildDirectives(prog *Program) *Directives {
	d := &Directives{
		funcs:  make(map[*types.Func][]Directive),
		fields: make(map[*types.Var][]Directive),
	}
	for _, pkg := range prog.Packages {
		if pkg.Standard || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if dirs := parseDirectives(n.Doc); len(dirs) > 0 {
						if obj, ok := pkg.Info.Defs[n.Name].(*types.Func); ok {
							d.funcs[obj] = append(d.funcs[obj], dirs...)
						}
					}
				case *ast.StructType:
					for _, field := range n.Fields.List {
						dirs := parseDirectives(field.Doc)
						dirs = append(dirs, parseDirectives(field.Comment)...)
						if len(dirs) == 0 {
							continue
						}
						for _, name := range field.Names {
							if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
								d.fields[obj] = append(d.fields[obj], dirs...)
							}
						}
					}
				case *ast.InterfaceType:
					for _, m := range n.Methods.List {
						dirs := parseDirectives(m.Doc)
						dirs = append(dirs, parseDirectives(m.Comment)...)
						if len(dirs) == 0 || len(m.Names) == 0 {
							continue
						}
						if obj, ok := pkg.Info.Defs[m.Names[0]].(*types.Func); ok {
							d.funcs[obj] = append(d.funcs[obj], dirs...)
						}
					}
				}
				return true
			})
		}
	}
	return d
}
