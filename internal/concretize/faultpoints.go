package concretize

import "github.com/paper-repo-growth/go-arxiv/internal/faultpoint"

// Fault-injection sites (see internal/faultpoint for the naming
// convention). Both sites carry an empty label: a session has no identity
// of its own — resolver layers that need to target one member or shard do
// it by schedule position (the broadcast order is deterministic) or
// through their own labeled sites.
var (
	// fpExtend fires at the top of Session.Extend, before the universe or
	// the skeleton mutate. For a session whose universe a sibling already
	// advanced (the portfolio/pool broadcast case) an injected error
	// leaves the skeleton one epoch behind the universe — exactly the
	// stale-member state quarantine and shard-rebuild exist for.
	fpExtend = faultpoint.New("concretize/extend")
	// fpMaterialize fires when a lazy session is about to materialize a
	// request's reachable subgraph; an injected error fails the request
	// before any solver mutation.
	fpMaterialize = faultpoint.New("concretize/materialize")
)
