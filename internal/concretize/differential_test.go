package concretize

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// This file is the differential test harness for the warm path: it fires
// identical request streams through a long-lived shared Session and
// through fresh cold Concretize calls, across ~200 seeded random
// universes, and requires the two paths to agree.
//
// Two universe families give two oracle strengths:
//
//   - Monotone (SynthDense): every dependency range is an upper bound, so
//     each request has a unique optimal resolution (see the SynthDense
//     doc). Warm and cold answers must match pick-for-pick and
//     cost-for-cost, no matter how much solver state the session has
//     accumulated.
//
//   - Adversarial (SynthDenseConflicts): conflicts admit co-optimal
//     resolutions and unsatisfiable requests. Both paths must agree on
//     satisfiability and on the optimal cost, and every answer must
//     independently pass verify — but tie-broken picks may differ.

// diffRequest builds a deterministic pseudo-random request over a dense
// universe: 1-3 roots, each any of {unconstrained, ":k", "k:", exact k},
// occasionally out of range to exercise the unsatisfiable-root path.
func diffRequest(rng *rand.Rand, pkgs, versions int) []Root {
	n := 1 + rng.Intn(3)
	roots := make([]Root, 0, n)
	for i := 0; i < n; i++ {
		pkg := fmt.Sprintf("dense%d", rng.Intn(pkgs))
		k := 1 + rng.Intn(versions+1) // versions+1 is out of range
		var spec string
		switch rng.Intn(4) {
		case 0:
			spec = pkg
		case 1:
			spec = fmt.Sprintf("%s@:%d", pkg, k)
		case 2:
			spec = fmt.Sprintf("%s@%d:", pkg, k)
		default:
			spec = fmt.Sprintf("%s@%d", pkg, k)
		}
		roots = append(roots, MustParseRoot(spec))
	}
	return roots
}

// runDifferentialStream drives one universe: a stream of requests through
// one shared Session vs fresh Concretize calls, with some requests
// repeated later in the stream so cached answers are differentially
// checked too. exactPicks selects the strong (unique-optimum) oracle.
func runDifferentialStream(t *testing.T, rng *rand.Rand, u *repo.Universe, pkgs, versions, nReqs int, exactPicks bool) {
	t.Helper()
	gen := func(rng *rand.Rand) []Root { return diffRequest(rng, pkgs, versions) }
	runDifferentialGenStream(t, rng, u, gen, nReqs, exactPicks)
}

// runDifferentialGenStream is the generator-agnostic core of the
// differential harness: requests come from gen, so universe families with
// their own root vocabulary (virtual roots, trigger packages) plug in their
// own request shapes.
func runDifferentialGenStream(t *testing.T, rng *rand.Rand, u *repo.Universe, gen func(rng *rand.Rand) []Root, nReqs int, exactPicks bool) {
	t.Helper()
	sess := NewSession(u, SessionOptions{})
	var replay [][]Root
	for i := 0; i < nReqs; i++ {
		var roots []Root
		if len(replay) > 0 && rng.Intn(4) == 0 {
			roots = replay[rng.Intn(len(replay))] // repeat: exercises the cache
		} else {
			roots = gen(rng)
			replay = append(replay, roots)
		}

		cold, coldErr := Concretize(u, roots, Options{})
		warm, warmErr := sess.Resolve(context.Background(), roots, Options{})

		if (coldErr == nil) != (warmErr == nil) {
			t.Fatalf("roots %s: cold err %v, warm err %v", rootsString(roots), coldErr, warmErr)
		}
		if coldErr != nil {
			if !errors.Is(coldErr, ErrUnsatisfiable) || !errors.Is(warmErr, ErrUnsatisfiable) {
				t.Fatalf("roots %s: non-unsat errors: cold %v, warm %v", rootsString(roots), coldErr, warmErr)
			}
			continue
		}
		if !cold.Stats.Optimal || !warm.Stats.Optimal {
			t.Fatalf("roots %s: non-optimal without a budget", rootsString(roots))
		}
		if cold.Stats.Cost != warm.Stats.Cost {
			t.Fatalf("roots %s: cost %d (cold) vs %d (warm)", rootsString(roots), cold.Stats.Cost, warm.Stats.Cost)
		}
		if err := verify(u, roots, cold.Picks); err != nil {
			t.Fatalf("roots %s: cold answer invalid: %v", rootsString(roots), err)
		}
		if err := verify(u, roots, warm.Picks); err != nil {
			t.Fatalf("roots %s: warm answer invalid: %v", rootsString(roots), err)
		}
		if exactPicks && !reflect.DeepEqual(pickStrings(cold), pickStrings(warm)) {
			t.Fatalf("roots %s: picks differ:\n cold: %v\n warm: %v",
				rootsString(roots), pickStrings(cold), pickStrings(warm))
		}
	}
}

// TestDifferentialMonotone: the strong oracle. 140 seeded monotone
// universes, ~10 requests each; warm must equal cold pick-for-pick and
// cost-for-cost.
func TestDifferentialMonotone(t *testing.T) {
	nUniverses := 140
	if testing.Short() {
		nUniverses = 30
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < nUniverses; i++ {
		pkgs := 4 + rng.Intn(14)
		versions := 1 + rng.Intn(5)
		depsPer := rng.Intn(4)
		seed := rng.Int63()
		u, _ := repo.SynthDense(pkgs, versions, depsPer, seed)
		t.Run(fmt.Sprintf("u%03d_p%d_v%d_d%d", i, pkgs, versions, depsPer), func(t *testing.T) {
			runDifferentialStream(t, rng, u, pkgs, versions, 10, true)
		})
	}
}

// TestDifferentialConflicts: the adversarial oracle. 60 seeded
// conflict-bearing universes; warm and cold must agree on satisfiability
// and optimal cost, and all answers must verify.
func TestDifferentialConflicts(t *testing.T) {
	nUniverses := 60
	if testing.Short() {
		nUniverses = 12
	}
	rng := rand.New(rand.NewSource(1337))
	for i := 0; i < nUniverses; i++ {
		pkgs := 4 + rng.Intn(12)
		versions := 2 + rng.Intn(4)
		depsPer := rng.Intn(4)
		conflictsPer := 1 + rng.Intn(3)
		seed := rng.Int63()
		u, _ := repo.SynthDenseConflicts(pkgs, versions, depsPer, conflictsPer, seed)
		t.Run(fmt.Sprintf("u%03d_p%d_v%d_d%d_c%d", i, pkgs, versions, depsPer, conflictsPer), func(t *testing.T) {
			runDifferentialStream(t, rng, u, pkgs, versions, 10, false)
		})
	}
}

// TestDifferentialUnsatWeb: wholly unsatisfiable universes through the
// same harness — both paths must consistently refute, including cached
// refutations.
func TestDifferentialUnsatWeb(t *testing.T) {
	for width := 2; width <= 6; width++ {
		u, root := repo.SynthUnsatWeb(width, 3)
		sess := NewSession(u, SessionOptions{})
		roots := []Root{{Pkg: root}}
		for rep := 0; rep < 3; rep++ {
			_, coldErr := Concretize(u, roots, Options{})
			_, warmErr := sess.Resolve(context.Background(), roots, Options{})
			if !errors.Is(coldErr, ErrUnsatisfiable) || !errors.Is(warmErr, ErrUnsatisfiable) {
				t.Fatalf("width %d rep %d: cold %v, warm %v", width, rep, coldErr, warmErr)
			}
		}
	}
}
