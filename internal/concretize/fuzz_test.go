package concretize

import "testing"

// FuzzParseRoot: ParseRoot must never panic, never accept an empty package
// name (in either namespace), and every accepted input must round-trip
// through Root.String to an equivalent root — virtual namespace included —
// with a stable rendering. The seed corpus lives under
// testdata/fuzz/FuzzParseRoot.
func FuzzParseRoot(f *testing.F) {
	for _, seed := range []string{
		"zlib", "zlib@1.2", "zlib@1.2:1.4", "zlib@:", "zlib@1.2:", "zlib@:1.4",
		"hdf5@1.14", "a@b@1.2", "pkg-with-dash@2021.06.0", "x@0:9",
		"virtual:mpi", "virtual:mpi@2:", "virtual:mpi@2:3", "virtual:",
		"virtual:@1.2", "virtual:virtual:mpi", "virtual:x@:",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRoot(s)
		if err != nil {
			return // rejected inputs only need to be crash-free
		}
		if r.Pkg == "" {
			t.Fatalf("accepted empty package name from %q", s)
		}
		rendered := r.String()
		r2, err := ParseRoot(rendered)
		if err != nil {
			t.Fatalf("round-trip parse failed: %q -> %q: %v", s, rendered, err)
		}
		if r2.Pkg != r.Pkg {
			t.Fatalf("round-trip changed package: %q -> %q vs %q", s, r.Pkg, r2.Pkg)
		}
		if r2.Virtual != r.Virtual {
			t.Fatalf("round-trip changed namespace: %q -> virtual=%v vs %v", s, r.Virtual, r2.Virtual)
		}
		if r2.Range.String() != r.Range.String() || r2.Range.IsAny() != r.Range.IsAny() {
			t.Fatalf("round-trip changed range: %q -> %q vs %q", s, r.Range, r2.Range)
		}
		if again := r2.String(); again != rendered {
			t.Fatalf("String unstable: %q -> %q -> %q", s, rendered, again)
		}
	})
}
