package concretize

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// assertWarmMatchesCold resolves roots through the warm session and a
// fresh cold session over the same (current) universe and requires the two
// answers to agree exactly: same error-ness, same picks, same cost, and
// both independently passing verify.
func assertWarmMatchesCold(t *testing.T, sess *Session, u *repo.Universe, roots []Root, label string) {
	t.Helper()
	cold := NewSession(u, SessionOptions{})
	coldRes, coldErr := cold.Resolve(context.Background(), roots, Options{})
	warmRes, warmErr := sess.Resolve(context.Background(), roots, Options{})
	if (coldErr == nil) != (warmErr == nil) {
		t.Fatalf("%s: cold err %v, warm err %v", label, coldErr, warmErr)
	}
	if coldErr != nil {
		if !errors.Is(coldErr, ErrUnsatisfiable) || !errors.Is(warmErr, ErrUnsatisfiable) {
			t.Fatalf("%s: errors disagree: cold %v, warm %v", label, coldErr, warmErr)
		}
		return
	}
	if !reflect.DeepEqual(pickStrings(coldRes), pickStrings(warmRes)) {
		t.Fatalf("%s: picks differ: cold %v, warm %v", label, pickStrings(coldRes), pickStrings(warmRes))
	}
	if coldRes.Stats.Cost != warmRes.Stats.Cost {
		t.Fatalf("%s: cost %d (cold) vs %d (warm)", label, coldRes.Stats.Cost, warmRes.Stats.Cost)
	}
	if err := verify(u, roots, warmRes.Picks); err != nil {
		t.Fatalf("%s: warm resolution fails verify: %v", label, err)
	}
}

// TestExtendMatchesCold grows a curated universe through a stream of
// deltas and, after every Extend, checks the warm in-place-extended
// session against a freshly encoded cold session on a mix of old and new
// request shapes, with repeats so post-delta cache state is exercised.
func TestExtendMatchesCold(t *testing.T) {
	u := repo.New()
	u.Add("app", "2.0", repo.Dep("liba", ":"), repo.Dep("libb", ":"))
	u.Add("app", "1.0", repo.Dep("liba", ":"))
	u.Add("liba", "2.0", repo.Dep("base", "1.2"))
	u.Add("liba", "1.0", repo.Dep("base", ":"))
	u.Add("libb", "1.0", repo.Dep("base", "1.2.8:"))
	u.Add("base", "1.2.11")
	u.Add("base", "1.1")

	sess := NewSession(u, SessionOptions{})
	requests := [][]Root{
		{MustParseRoot("app")},
		{MustParseRoot("liba"), MustParseRoot("libb")},
		{MustParseRoot("app@3:")}, // unsat until a delta adds app 3.x
		{MustParseRoot("base")},
	}
	check := func(label string) {
		t.Helper()
		for i, roots := range requests {
			assertWarmMatchesCold(t, sess, u, roots, fmt.Sprintf("%s req %d", label, i))
		}
	}
	check("pre-delta")

	// Delta 1: a newer base and a newer liba that requires it.
	d1 := repo.NewDelta()
	d1.Add("base", "1.3")
	d1.Add("liba", "3.0", repo.Dep("base", "1.3:"))
	if _, err := sess.Extend(d1); err != nil {
		t.Fatalf("Extend d1: %v", err)
	}
	if got := sess.epoch; got != 1 {
		t.Fatalf("session epoch = %d, want 1", got)
	}
	check("delta1")

	// Delta 2: an app 3.0 flipping the unsat request shape to sat, plus a
	// brand-new package hanging off it.
	d2 := repo.NewDelta()
	d2.Add("app", "3.0", repo.Dep("liba", "3:"), repo.Dep("extra", ":"))
	d2.Add("extra", "1.0")
	if _, err := sess.Extend(d2); err != nil {
		t.Fatalf("Extend d2: %v", err)
	}
	requests = append(requests, []Root{MustParseRoot("extra")})
	check("delta2")

	res, err := sess.Resolve(context.Background(), []Root{MustParseRoot("app@3:")}, Options{})
	if err != nil {
		t.Fatalf("post-delta app@3:: %v", err)
	}
	if got := pickStrings(res)["app"]; got != "3.0" {
		t.Fatalf("app pick = %s, want 3.0", got)
	}
	if res.Stats.Epoch != 2 {
		t.Fatalf("Stats.Epoch = %d, want 2", res.Stats.Epoch)
	}
}

// TestExtendDeltaScopedInvalidation is the acceptance regression test for
// delta-scoped invalidation: with two disjoint dependency subgraphs, a
// delta touching only one of them must leave the other's cached answer
// live — repeat resolution stays a SolutionCacheHit, allocates zero new
// solver variables, and does zero solver work — while the touched
// subgraph's entry is dropped and re-solved to the new optimum.
func TestExtendDeltaScopedInvalidation(t *testing.T) {
	u := repo.New()
	u.Add("appA", "1.0", repo.Dep("libA", ":"))
	u.Add("libA", "1.5")
	u.Add("libA", "1.0")
	u.Add("appB", "1.0", repo.Dep("libB", ":"))
	u.Add("libB", "1.5")
	u.Add("libB", "1.0")

	sess := NewSession(u, SessionOptions{})
	rootsA := []Root{MustParseRoot("appA")}
	rootsB := []Root{MustParseRoot("appB")}

	firstA, err := sess.Resolve(context.Background(), rootsA, Options{})
	if err != nil {
		t.Fatalf("resolve A: %v", err)
	}
	if _, err := sess.Resolve(context.Background(), rootsB, Options{}); err != nil {
		t.Fatalf("resolve B: %v", err)
	}

	d := repo.NewDelta()
	d.Add("libB", "2.0")
	if _, err := sess.Extend(d); err != nil {
		t.Fatalf("Extend: %v", err)
	}

	vars := sess.solver.NumVars()
	decisions := sess.solver.Decisions

	// Untouched subgraph: still served from cache, zero solver growth.
	againA, err := sess.Resolve(context.Background(), rootsA, Options{})
	if err != nil {
		t.Fatalf("repeat A: %v", err)
	}
	if !againA.Stats.SolutionCacheHit {
		t.Error("delta to libB invalidated appA's cached answer")
	}
	if !reflect.DeepEqual(pickStrings(firstA), pickStrings(againA)) {
		t.Errorf("appA picks changed: %v -> %v", pickStrings(firstA), pickStrings(againA))
	}
	if got := sess.solver.NumVars(); got != vars {
		t.Errorf("cache hit on untouched shape grew solver variables: %d -> %d", vars, got)
	}
	if sess.solver.Decisions != decisions {
		t.Error("cache hit on untouched shape touched the solver")
	}

	// Touched subgraph: entry dropped, re-solve picks the delta's version.
	againB, err := sess.Resolve(context.Background(), rootsB, Options{})
	if err != nil {
		t.Fatalf("repeat B: %v", err)
	}
	if againB.Stats.SolutionCacheHit {
		t.Error("delta to libB left appB's stale answer cached")
	}
	if got := pickStrings(againB)["libB"]; got != "2.0" {
		t.Errorf("libB pick = %s, want 2.0", got)
	}
	assertWarmMatchesCold(t, sess, u, rootsB, "post-delta B")
}

// TestExtendVirtualProviderFlip: a delta-introduced provider must join the
// virtual's selection and win when the objective prefers it — both from an
// unsatisfiable virtual requirement flipping to sat, and from a satisfiable
// one flipping to a cheaper optimum.
func TestExtendVirtualProviderFlip(t *testing.T) {
	u := repo.New()
	// app needs mpi@2:, but the only provider provides 1.0: unsat.
	u.Add("app", "1.0", repo.Dep("mpi", "2:"))
	u.Add("mpich-old", "1.0", repo.Prov("mpi", "1.0"), repo.Dep("heavy", ":"))
	u.Add("heavy", "1.0")
	// tool needs any mpi and resolves through the heavy provider for now.
	u.Add("tool", "1.0", repo.Dep("mpi", ":"))

	sess := NewSession(u, SessionOptions{})
	appRoots := []Root{MustParseRoot("app")}
	toolRoots := []Root{MustParseRoot("tool")}

	if _, err := sess.Resolve(context.Background(), appRoots, Options{}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("pre-delta app err = %v, want ErrUnsatisfiable", err)
	}
	pre, err := sess.Resolve(context.Background(), toolRoots, Options{})
	if err != nil {
		t.Fatalf("pre-delta tool: %v", err)
	}
	if _, ok := pre.Picks["heavy"]; !ok {
		t.Fatalf("pre-delta tool skipped the only provider's dep: %v", pickStrings(pre))
	}

	// The new provider satisfies mpi@2: and drags in no extra packages, so
	// it both revives app and becomes tool's optimum.
	d := repo.NewDelta()
	d.Add("mpich-new", "2.0", repo.Prov("mpi", "2.0"))
	if _, err := sess.Extend(d); err != nil {
		t.Fatalf("Extend: %v", err)
	}

	post, err := sess.Resolve(context.Background(), appRoots, Options{})
	if err != nil {
		t.Fatalf("post-delta app: %v", err)
	}
	if _, ok := post.Picks["mpich-new"]; !ok {
		t.Errorf("app did not select the new provider: %v", pickStrings(post))
	}
	flip, err := sess.Resolve(context.Background(), toolRoots, Options{})
	if err != nil {
		t.Fatalf("post-delta tool: %v", err)
	}
	if flip.Stats.SolutionCacheHit {
		t.Error("provider delta left tool's stale answer cached")
	}
	if _, ok := flip.Picks["mpich-new"]; !ok {
		t.Errorf("optimum did not flip to the new provider: %v", pickStrings(flip))
	}
	assertWarmMatchesCold(t, sess, u, appRoots, "post-delta app")
	assertWarmMatchesCold(t, sess, u, toolRoots, "post-delta tool")
}

// TestExtendResurrection: versions pruned at level 0 because a dependency
// range had no candidates must come back to life when a delta supplies
// one — both a single version of a live package and a whole package all of
// whose versions were dead.
func TestExtendResurrection(t *testing.T) {
	u := repo.New()
	// app 2.0 is dead on arrival (base@9: empty); app 1.0 carries the
	// requests until the delta revives 2.0.
	u.Add("app", "2.0", repo.Dep("base", "9:"))
	u.Add("app", "1.0", repo.Dep("base", ":"))
	u.Add("base", "1.0")
	// doomed is dead in every version, making the whole package — and the
	// chain rooted at it — unsatisfiable until the delta.
	u.Add("doomed", "1.0", repo.Dep("base", "9:"))

	sess := NewSession(u, SessionOptions{})
	appRoots := []Root{MustParseRoot("app")}
	doomedRoots := []Root{MustParseRoot("doomed")}

	pre, err := sess.Resolve(context.Background(), appRoots, Options{})
	if err != nil {
		t.Fatalf("pre-delta app: %v", err)
	}
	if got := pickStrings(pre)["app"]; got != "1.0" {
		t.Fatalf("pre-delta app pick = %s, want 1.0", got)
	}
	if _, err := sess.Resolve(context.Background(), doomedRoots, Options{}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("pre-delta doomed err = %v, want ErrUnsatisfiable", err)
	}

	d := repo.NewDelta()
	d.Add("base", "9.1")
	if _, err := sess.Extend(d); err != nil {
		t.Fatalf("Extend: %v", err)
	}

	post, err := sess.Resolve(context.Background(), appRoots, Options{})
	if err != nil {
		t.Fatalf("post-delta app: %v", err)
	}
	if got := pickStrings(post)["app"]; got != "2.0" {
		t.Errorf("resurrected app 2.0 not picked: %v", pickStrings(post))
	}
	if got := pickStrings(post)["base"]; got != "9.1" {
		t.Errorf("base pick = %s, want 9.1", got)
	}
	revived, err := sess.Resolve(context.Background(), doomedRoots, Options{})
	if err != nil {
		t.Fatalf("post-delta doomed: %v", err)
	}
	if got := pickStrings(revived)["doomed"]; got != "1.0" {
		t.Errorf("resurrected doomed not picked: %v", pickStrings(revived))
	}
	assertWarmMatchesCold(t, sess, u, appRoots, "post-delta app")
	assertWarmMatchesCold(t, sess, u, doomedRoots, "post-delta doomed")
}

// TestExtendDormantTrigger: a conditional dependency whose trigger names a
// package absent from the universe is dormant — and must arm itself when a
// delta introduces the trigger package.
func TestExtendDormantTrigger(t *testing.T) {
	u := repo.New()
	// tool needs plugin only when ext is selected; ext does not exist yet.
	u.Add("tool", "1.0", repo.DepWhen("plugin", ":", "ext", ":"))
	u.Add("plugin", "1.0")

	sess := NewSession(u, SessionOptions{})
	toolRoots := []Root{MustParseRoot("tool")}

	pre, err := sess.Resolve(context.Background(), toolRoots, Options{})
	if err != nil {
		t.Fatalf("pre-delta tool: %v", err)
	}
	if _, ok := pre.Picks["plugin"]; ok {
		t.Fatalf("dormant trigger installed plugin: %v", pickStrings(pre))
	}

	d := repo.NewDelta()
	d.Add("ext", "1.0")
	if _, err := sess.Extend(d); err != nil {
		t.Fatalf("Extend: %v", err)
	}

	both := []Root{MustParseRoot("tool"), MustParseRoot("ext")}
	post, err := sess.Resolve(context.Background(), both, Options{})
	if err != nil {
		t.Fatalf("post-delta tool+ext: %v", err)
	}
	if _, ok := post.Picks["plugin"]; !ok {
		t.Errorf("armed trigger did not require plugin: %v", pickStrings(post))
	}
	// tool alone still leaves the trigger unselected and plugin out.
	alone, err := sess.Resolve(context.Background(), toolRoots, Options{})
	if err != nil {
		t.Fatalf("post-delta tool: %v", err)
	}
	if _, ok := alone.Picks["plugin"]; ok {
		t.Errorf("unselected trigger installed plugin: %v", pickStrings(alone))
	}
	assertWarmMatchesCold(t, sess, u, both, "post-delta tool+ext")
}

// TestExtendEpochContract: Extend accepts the delta only when the session
// can reconcile its epoch with the universe's — apply-and-extend at parity,
// extend-only one epoch behind a sibling, error otherwise — and refuses
// request-scoped sessions outright.
func TestExtendEpochContract(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0", repo.Dep("lib", ":"))
	u.Add("lib", "1.0")

	s1 := NewSession(u, SessionOptions{})
	s2 := NewSession(u, SessionOptions{})

	// Parity: s1 applies the delta itself.
	d1 := repo.NewDelta()
	d1.Add("lib", "2.0")
	e, err := s1.Extend(d1)
	if err != nil || e != 1 {
		t.Fatalf("s1.Extend = (%d, %v), want (1, nil)", e, err)
	}
	// One behind: s2 sees the sibling's apply and extends in place.
	e, err = s2.Extend(d1)
	if err != nil || e != 1 {
		t.Fatalf("s2.Extend = (%d, %v), want (1, nil)", e, err)
	}
	res, err := s2.Resolve(context.Background(), []Root{MustParseRoot("app")}, Options{})
	if err != nil {
		t.Fatalf("s2 resolve: %v", err)
	}
	if got := pickStrings(res)["lib"]; got != "2.0" {
		t.Fatalf("sibling-extended session missed the delta: lib = %s", got)
	}

	// Two or more behind: unrecoverable drift must be rejected.
	d2 := repo.NewDelta()
	d2.Add("lib", "3.0")
	d3 := repo.NewDelta()
	d3.Add("lib", "4.0")
	if _, err := u.Apply(d2); err != nil {
		t.Fatalf("Apply d2: %v", err)
	}
	if _, err := u.Apply(d3); err != nil {
		t.Fatalf("Apply d3: %v", err)
	}
	d4 := repo.NewDelta()
	d4.Add("lib", "5.0")
	if _, err := s1.Extend(d4); err == nil {
		t.Fatal("Extend two epochs behind did not error")
	}

	// A validation failure mutates neither the universe nor the session.
	fresh := repo.New()
	fresh.Add("app", "1.0")
	se := NewSession(fresh, SessionOptions{})
	bad := repo.NewDelta()
	bad.Add("app", "1.0") // re-adds an existing version
	if _, err := se.Extend(bad); err == nil {
		t.Fatal("invalid delta accepted")
	}
	if fresh.Epoch() != 0 || se.epoch != 0 {
		t.Fatalf("failed Extend moved epochs: universe %d, session %d", fresh.Epoch(), se.epoch)
	}

	// Request-scoped sessions cannot extend.
	scoped := newSession(fresh, fresh.Names(), SessionOptions{}, false)
	ok := repo.NewDelta()
	ok.Add("app", "2.0")
	if _, err := scoped.Extend(ok); err == nil {
		t.Fatal("Extend on a request-scoped session did not error")
	}
}

// TestExtendConcurrentWithResolve hammers one shared full Session with 8
// resolving goroutines while the main goroutine streams deltas through
// Extend. Run under -race this checks the session lock covers the whole
// extension; the answers are checked for internal consistency (every
// success verifies against the universe as of some epoch it was computed
// at — here all answers verify against the final universe because growth
// is append-only and the request shapes' optima only improve).
func TestExtendConcurrentWithResolve(t *testing.T) {
	u := repo.New()
	for c := 0; c < 4; c++ {
		u.Add(fmt.Sprintf("root%d", c), "1.0", repo.Dep(fmt.Sprintf("leaf%d", c), ":"))
		u.Add(fmt.Sprintf("leaf%d", c), "1.0")
	}
	sess := NewSession(u, SessionOptions{})

	const goroutines = 8
	const resolvesPer = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < resolvesPer; i++ {
				roots := []Root{{Pkg: fmt.Sprintf("root%d", (g+i)%4)}}
				res, err := sess.Resolve(context.Background(), roots, Options{})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d resolve %d: %w", g, i, err)
					return
				}
				if _, ok := res.Picks[roots[0].Pkg]; !ok {
					errs <- fmt.Errorf("goroutine %d resolve %d: root missing from picks", g, i)
					return
				}
			}
		}()
	}
	for step := 0; step < 10; step++ {
		d := repo.NewDelta()
		d.Add(fmt.Sprintf("leaf%d", step%4), fmt.Sprintf("1.%d", step+1))
		if _, err := sess.Extend(d); err != nil {
			t.Fatalf("Extend step %d: %v", step, err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiesced: every shape now answers the final universe's optimum.
	for c := 0; c < 4; c++ {
		roots := []Root{{Pkg: fmt.Sprintf("root%d", c)}}
		assertWarmMatchesCold(t, sess, u, roots, fmt.Sprintf("final root%d", c))
	}
}
