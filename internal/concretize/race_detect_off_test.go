//go:build !race

package concretize

// raceEnabled reports whether the race detector is compiled in; memory-
// heavy full-scale suites skip under it.
const raceEnabled = false
