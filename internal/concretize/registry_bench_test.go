package concretize

import (
	"context"
	"fmt"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// The BenchmarkRegistry* benchmarks are the registry-scale perf trajectory:
// a lazy session over a sparse SynthRegistry universe whose single-root
// reachable closure is a tiny, scale-free fraction of the catalog. Beyond
// ns/op they report two custom metrics the bench scripts track across PRs:
//
//   - solver_vars: variables in the measurement session's solver formula —
//     the lazy encoder's coverage (an eager session at the same scale
//     allocates pkgs*(versions+1) before the first request).
//   - heap_bytes: heap growth attributable to one warmed session, the
//     memory the encoding actually costs.
//
// Scale is 2500 packages x 16 versions: large enough that lazy-vs-eager
// separation is an order of magnitude, small enough that CI can afford the
// cold path per iteration.

const benchRegPkgs, benchRegVers = 2500, 16

// reportRegistryMetrics builds one fresh lazy session off the clock, warms
// it with the root request, and reports its encoder coverage and heap
// footprint.
func reportRegistryMetrics(b *testing.B, u *repo.Universe, root string) {
	b.Helper()
	b.StopTimer()
	defer b.StartTimer()
	before := heapAlloc()
	sess := NewSession(u, SessionOptions{Lazy: true})
	if _, err := sess.Resolve(context.Background(), []Root{{Pkg: root}}, Options{}); err != nil {
		b.Fatalf("metrics Resolve: %v", err)
	}
	after := heapAlloc()
	st := sess.EncodingStats()
	b.ReportMetric(float64(st.SolverVars), "solver_vars")
	if after > before {
		b.ReportMetric(float64(after-before), "heap_bytes")
	}
}

// BenchmarkRegistryCold measures first contact: a fresh lazy session
// materializes the root's reachable subgraph and solves it. This is the
// registry-scale cold-start number — construction is O(1), so the whole
// cost sits in one materialization plus one solve.
func BenchmarkRegistryCold(b *testing.B) {
	u, root := repo.SynthRegistry(benchRegPkgs, benchRegVers)
	roots := []Root{{Pkg: root}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := NewSession(u, SessionOptions{Lazy: true})
		res, err := sess.Resolve(context.Background(), roots, Options{})
		if err != nil {
			b.Fatalf("Resolve: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
	reportRegistryMetrics(b, u, root)
}

// BenchmarkRegistryWarm measures the steady serving path: a repeat request
// against an already-materialized lazy session — a cache lookup plus a
// picks-map copy, independent of registry size.
func BenchmarkRegistryWarm(b *testing.B) {
	u, root := repo.SynthRegistry(benchRegPkgs, benchRegVers)
	roots := []Root{{Pkg: root}}
	sess := NewSession(u, SessionOptions{Lazy: true})
	if _, err := sess.Resolve(context.Background(), roots, Options{}); err != nil {
		b.Fatalf("prime Resolve: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Resolve(context.Background(), roots, Options{})
		if err != nil {
			b.Fatalf("Resolve: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
	reportRegistryMetrics(b, u, root)
}

// BenchmarkRegistryChurn measures a lazy session absorbing registry
// publishes while serving: each iteration lands one append-only delta on a
// rotating package and re-resolves the root. The rotation stride keeps
// nearly every delta outside the root's materialized subgraph, so the
// dominant path is delta parking — dirty-mark the unreached name, keep the
// cached answer — with the occasional in-closure delta forcing a re-solve.
func BenchmarkRegistryChurn(b *testing.B) {
	u, root := repo.SynthRegistry(benchRegPkgs, benchRegVers)
	roots := []Root{{Pkg: root}}
	sess := NewSession(u, SessionOptions{Lazy: true})
	if _, err := sess.Resolve(context.Background(), roots, Options{}); err != nil {
		b.Fatalf("prime Resolve: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := repo.NewDelta()
		d.Add(fmt.Sprintf("reg%d", (1000+i*37)%benchRegPkgs), fmt.Sprintf("%d.0", benchRegVers+1+i))
		if _, err := sess.Extend(d); err != nil {
			b.Fatalf("Extend: %v", err)
		}
		res, err := sess.Resolve(context.Background(), roots, Options{})
		if err != nil {
			b.Fatalf("Resolve: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
	reportRegistryMetrics(b, u, root)
}
