package concretize

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// TestExtendVsCacheGetInterleaving pins the cacheGet lock-interleaving
// audit (see the comment on Session.cacheGet): hammer cached Resolves
// against a concurrent Extend and assert linearizability under -race.
// The invariants:
//
//  1. Epoch consistency — every answer is wholly pre-delta or wholly
//     post-delta: the old picks always ride with the old Stats.Epoch and
//     the new picks with the new, never a mix.
//  2. Freshness — a Resolve issued strictly after Extend returned can
//     never be served the swept pre-delta entry (the sweep completes
//     under cacheMu before Extend releases the session lock).
//  3. No resurrection — once any post-delta answer has been observed,
//     the cache serves hits again (touch() cannot revive a swept entry,
//     and the re-solved answer re-enters the cache).
func TestExtendVsCacheGetInterleaving(t *testing.T) {
	const workers = 4

	u, root := repo.SynthDiamond(3, 4)
	se := NewSession(u, SessionOptions{})
	roots := []Root{{Pkg: root}}

	// Prime the solution cache so the workers spin on cacheGet, maximizing
	// peek/release/promote interleavings with the sweep.
	if _, err := se.Resolve(context.Background(), roots, Options{}); err != nil {
		t.Fatal(err)
	}

	var extendReturned atomic.Bool
	stop := make(chan struct{})
	fail := make(chan error, workers)
	var sawNew atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				issuedAfter := extendReturned.Load()
				res, err := se.Resolve(context.Background(), roots, Options{})
				if err != nil {
					fail <- err
					return
				}
				app := res.Picks["app"].String()
				switch res.Stats.Epoch {
				case 0:
					if app != "4.0" {
						fail <- fmt.Errorf("epoch-0 answer picked app@%s, want 4.0", app)
						return
					}
				case 1:
					if app != "99.0" {
						fail <- fmt.Errorf("epoch-1 answer picked app@%s, want 99.0", app)
						return
					}
					sawNew.Add(1)
				default:
					fail <- fmt.Errorf("answer at impossible epoch %d", res.Stats.Epoch)
					return
				}
				if issuedAfter && res.Stats.Epoch != 1 {
					fail <- fmt.Errorf("resolve issued after Extend returned got stale epoch-%d answer", res.Stats.Epoch)
					return
				}
			}
		}()
	}

	// Let the workers contend on cache hits, then land the delta mid-storm.
	time.Sleep(10 * time.Millisecond)
	d := repo.NewDelta()
	d.Add("app", "99.0", repo.Dep("mid0", ":"))
	epoch, err := se.Extend(d)
	extendReturned.Store(true)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch after extend = %d, want 1", epoch)
	}

	// Keep the storm running past the extension so post-delta cache hits
	// (the re-cached epoch-1 answer) are exercised too.
	deadline := time.After(2 * time.Second)
	for sawNew.Load() < int64(workers) {
		select {
		case err := <-fail:
			t.Fatal(err)
		case <-deadline:
			t.Fatalf("only %d/%d workers observed the post-delta answer", sawNew.Load(), workers)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	// Sanity on the final state: a fresh Resolve is a post-delta cache hit.
	res, err := se.Resolve(context.Background(), roots, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.SolutionCacheHit || res.Stats.Epoch != 1 || res.Picks["app"].String() != "99.0" {
		t.Fatalf("final answer hit=%v epoch=%d app=%s, want cached epoch-1 app@99.0",
			res.Stats.SolutionCacheHit, res.Stats.Epoch, res.Picks["app"])
	}
}
