package concretize

import (
	"fmt"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// Objective shapes what "best" means for one resolution request. The
// branch-and-bound loop minimizes the total cost an objective assigns to a
// candidate resolution; exchanging the objective never changes which
// requests are satisfiable, only which of the satisfying resolutions is
// returned.
//
// Implementations must be deterministic pure functions of their inputs and
// safe for concurrent use: a Session may evaluate the same objective from
// multiple requests, and a portfolio may evaluate it against several
// differently-configured solvers at once.
type Objective interface {
	// Key returns a stable identifier for the objective's semantics,
	// mixed into the Session solution-cache key. Two objectives that can
	// rank resolutions differently must return different Keys; an
	// objective parameterized by data (e.g. an installed profile) must
	// fold that data into its Key.
	Key() string

	// Costs assigns non-negative costs over the request's reachable
	// packages. Packages absent from the returned map contribute no cost;
	// naming a package outside req.Order is an error.
	Costs(req ObjectiveRequest) (map[string]PkgCost, error)
}

// ObjectiveRequest is the read-only context an Objective prices: the
// universe, the packages reachable from the request's roots (in BFS order
// from the roots), and the roots themselves. Implementations must not
// mutate any field.
type ObjectiveRequest struct {
	Universe *repo.Universe
	Order    []string
	Roots    []Root
}

// rootSet returns the set of concrete package names carrying root weight,
// resolved through the same rootCandidates helper the activation encoder
// uses: a root naming a virtual expands to exactly the providers able to
// satisfy its range, so a resolved virtual costs what its chosen provider
// costs — and a provider that cannot satisfy the root (provided version
// outside the range) is never promoted to root rank just for providing
// something.
func (req ObjectiveRequest) rootSet() map[string]bool {
	set := make(map[string]bool, len(req.Roots))
	for _, r := range req.Roots {
		cands, _ := rootCandidates(req.Universe, r)
		for _, c := range cands {
			set[c.Pkg] = true
		}
	}
	return set
}

// PkgCost is one package's contribution to the objective.
type PkgCost struct {
	// Install is charged when the package is installed.
	Install int64
	// Omit is charged when the package is NOT installed. Change-averse
	// objectives use it to price removing an already-installed package.
	Omit int64
	// Version[i] is charged when version i (newest-first index, parallel
	// to Package.Versions()) is selected. Nil charges nothing; otherwise
	// the length must equal the package's version count.
	Version []int64
}

// DefaultObjective is the objective used when a request does not name one.
var DefaultObjective Objective = NewestVersion{}

// NewestVersion is the classic Spack-style objective: prefer newest
// versions, then fewer installed packages, layered lexicographically in
// root-first order:
//
//  1. root version-lag: one step away from a root's newest version weighs
//     more than every dependency downgrade and install combined;
//  2. dependency version-lag: one step weighs more than installing every
//     reachable package, so the optimizer never downgrades a version just
//     to drop an optional package;
//  3. installed-package count (1 per package) breaks remaining ties in
//     favor of smaller installs.
type NewestVersion struct{}

// Key implements Objective.
func (NewestVersion) Key() string { return "newest" }

// Costs implements Objective.
func (NewestVersion) Costs(req ObjectiveRequest) (map[string]PkgCost, error) {
	isRoot := req.rootSet()
	depStep := int64(len(req.Order)) + 1
	maxDepSum := int64(0)
	for _, name := range req.Order {
		if p, ok := req.Universe.Package(name); ok && !isRoot[name] {
			maxDepSum += depStep * int64(p.NumVersions()-1)
		}
	}
	rootStep := int64(len(req.Order)) + maxDepSum + 1
	costs := make(map[string]PkgCost, len(req.Order))
	for _, name := range req.Order {
		p, ok := req.Universe.Package(name)
		if !ok {
			return nil, fmt.Errorf("concretize: objective: unknown package %q", name)
		}
		step := depStep
		if isRoot[name] {
			step = rootStep
		}
		pc := PkgCost{Install: 1}
		if n := p.NumVersions(); n > 1 {
			pc.Version = make([]int64, n)
			for i := 1; i < n; i++ {
				pc.Version[i] = int64(i) * step
			}
		}
		costs[name] = pc
	}
	return costs, nil
}

// MinimalChange returns an objective that minimizes churn against an
// installed profile: every change — re-picking an installed package at a
// different version, removing an installed package, or installing a new
// one — costs one (uniform) change step, and change count dominates
// everything else. Remaining ties break toward newest versions, then fewer
// installs, so fresh packages still concretize sensibly. A profile version
// the catalog no longer carries counts any re-pick of that package as a
// change. The profile is captured by reference and must not be mutated
// while the objective is in use.
func MinimalChange(installed repo.Profile) Objective {
	return minimalChange{installed: installed}
}

type minimalChange struct {
	installed repo.Profile
}

// Key implements Objective; the profile's content hash keeps cached
// answers from leaking between different installed states.
func (m minimalChange) Key() string {
	return "minchange:" + m.installed.Fingerprint()
}

// Costs implements Objective.
func (m minimalChange) Costs(req ObjectiveRequest) (map[string]PkgCost, error) {
	// Tie-break budget: version lag (prefer newest) plus one per install.
	// One change step must dominate the whole budget.
	maxTie := int64(len(req.Order))
	for _, name := range req.Order {
		if p, ok := req.Universe.Package(name); ok {
			nv := p.NumVersions()
			maxTie += int64(nv) * int64(nv-1) / 2 // sum of lags 0..nv-1 upper bound
		}
	}
	changeStep := maxTie + 1
	costs := make(map[string]PkgCost, len(req.Order))
	for _, name := range req.Order {
		p, ok := req.Universe.Package(name)
		if !ok {
			return nil, fmt.Errorf("concretize: objective: unknown package %q", name)
		}
		nv := p.NumVersions()
		pc := PkgCost{Install: 1}
		if nv > 0 {
			pc.Version = make([]int64, nv)
			for i := 0; i < nv; i++ {
				pc.Version[i] = int64(i) // newest-first tiebreak
			}
		}
		if _, present := m.installed[name]; present {
			keep := m.installed.VersionIndex(req.Universe, name)
			for i := 0; i < nv; i++ {
				if i != keep {
					pc.Version[i] += changeStep // re-pick at a different version
				}
			}
			pc.Omit = changeStep // removing an installed package
		} else {
			pc.Install += changeStep // installing a new package
		}
		costs[name] = pc
	}
	return costs, nil
}

// ObjectiveFunc adapts a plain cost function (custom weights) into an
// Objective. ID must be non-empty and uniquely identify the function's
// semantics: it namespaces the solution cache, so two ObjectiveFuncs
// sharing an ID would silently serve each other's cached resolutions.
type ObjectiveFunc struct {
	ID string
	Fn func(req ObjectiveRequest) (map[string]PkgCost, error)
}

// Key implements Objective.
func (o ObjectiveFunc) Key() string { return "func:" + o.ID }

// Costs implements Objective. An empty ID is rejected here — every solve
// evaluates Costs before anything is cached, so the error fires before a
// colliding cache key can be written or read.
func (o ObjectiveFunc) Costs(req ObjectiveRequest) (map[string]PkgCost, error) {
	if o.ID == "" {
		return nil, fmt.Errorf("ObjectiveFunc requires a non-empty ID (it namespaces the solution cache)")
	}
	return o.Fn(req)
}
