package concretize

import (
	"errors"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// The BenchmarkConcretize* benchmarks are the repo's perf baseline: each
// measures a full concretization (encode + branch-and-bound solve + decode)
// over a deterministic synthetic universe from internal/repo. Future PRs
// optimize against these numbers.

func benchConcretize(b *testing.B, u *repo.Universe, root string) {
	b.Helper()
	b.ReportAllocs()
	roots := []Root{{Pkg: root}}
	for i := 0; i < b.N; i++ {
		res, err := Concretize(u, roots, Options{})
		if err != nil {
			b.Fatalf("Concretize: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
}

func BenchmarkConcretizeDiamond(b *testing.B) {
	u, root := repo.SynthDiamond(8, 8)
	benchConcretize(b, u, root)
}

func BenchmarkConcretizeChain(b *testing.B) {
	u, root := repo.SynthChain(24, 6)
	benchConcretize(b, u, root)
}

func BenchmarkConcretizeDense(b *testing.B) {
	u, root := repo.SynthDense(40, 8, 3, 1)
	benchConcretize(b, u, root)
}

func BenchmarkConcretizeUnsatWeb(b *testing.B) {
	u, root := repo.SynthUnsatWeb(10, 4)
	b.ReportAllocs()
	roots := []Root{{Pkg: root}}
	for i := 0; i < b.N; i++ {
		if _, err := Concretize(u, roots, Options{}); !errors.Is(err, ErrUnsatisfiable) {
			b.Fatalf("err = %v, want ErrUnsatisfiable", err)
		}
	}
}
