package concretize

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// The BenchmarkConcretize* benchmarks are the repo's perf baseline: each
// measures a full concretization (encode + branch-and-bound solve + decode)
// over a deterministic synthetic universe from internal/repo. Future PRs
// optimize against these numbers.

func benchConcretize(b *testing.B, u *repo.Universe, root string) {
	b.Helper()
	b.ReportAllocs()
	roots := []Root{{Pkg: root}}
	for i := 0; i < b.N; i++ {
		res, err := Concretize(u, roots, Options{})
		if err != nil {
			b.Fatalf("Concretize: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
}

func BenchmarkConcretizeDiamond(b *testing.B) {
	u, root := repo.SynthDiamond(8, 8)
	benchConcretize(b, u, root)
}

func BenchmarkConcretizeChain(b *testing.B) {
	u, root := repo.SynthChain(24, 6)
	benchConcretize(b, u, root)
}

func BenchmarkConcretizeDense(b *testing.B) {
	u, root := repo.SynthDense(40, 8, 3, 1)
	benchConcretize(b, u, root)
}

// The BenchmarkSessionWarm* benchmarks measure the warm path over the same
// dense universe as BenchmarkConcretizeDense, which is their cold
// baseline:
//
//   - WarmHit: repeat request against a caching Session — a cache lookup
//     plus a picks-map copy, no solver contact.
//   - WarmMiss: cache disabled, so every iteration re-runs branch-and-bound
//     on the shared solver — re-encoding is skipped and learnt clauses,
//     VSIDS activity, and saved phases carry over.
//   - WarmMissRotate: cache disabled and the root rotates, so iterations
//     cannot ride phase-saving toward an already-found model.

func benchSessionWarm(b *testing.B, cacheSize int, rootFor func(i int) []Root) {
	b.Helper()
	u, root := repo.SynthDense(40, 8, 3, 1)
	sess := NewSession(u, SessionOptions{CacheSize: cacheSize})
	// Prime: encode is done in NewSession; run one request so the warm
	// state (and cache, if enabled) exists.
	if _, err := sess.Resolve(context.Background(), []Root{{Pkg: root}}, Options{}); err != nil {
		b.Fatalf("prime Resolve: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Resolve(context.Background(), rootFor(i), Options{})
		if err != nil {
			b.Fatalf("Resolve: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
}

func BenchmarkSessionWarmHit(b *testing.B) {
	roots := []Root{{Pkg: "dense0"}}
	benchSessionWarm(b, 0, func(int) []Root { return roots })
}

func BenchmarkSessionWarmMiss(b *testing.B) {
	roots := []Root{{Pkg: "dense0"}}
	benchSessionWarm(b, -1, func(int) []Root { return roots })
}

func BenchmarkSessionWarmMissRotate(b *testing.B) {
	pool := make([][]Root, 8)
	for i := range pool {
		pool[i] = []Root{{Pkg: fmt.Sprintf("dense%d", i)}}
	}
	benchSessionWarm(b, -1, func(i int) []Root { return pool[i%len(pool)] })
}

// BenchmarkSessionWarmDescent isolates the cost of bound-tightening
// descent rounds on a warm solver: the request alternates between two
// objectives with opposite version preferences, so the saved phases always
// sit on the wrong model and every iteration must walk the bound down from
// a bad incumbent — the pure descent-round workload, with activation,
// encoding, and caching all amortized away. Regressions in TightenPB or
// the descent schedule (per-round allocation, relaxation churn) land
// directly on this number.
func BenchmarkSessionWarmDescent(b *testing.B) {
	u, root := repo.SynthDense(40, 8, 3, 1)
	sess := NewSession(u, SessionOptions{CacheSize: -1})
	roots := []Root{{Pkg: root}}
	objs := [2]Objective{
		ObjectiveFunc{ID: "newest-heavy", Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
			costs := make(map[string]PkgCost, len(req.Order))
			for _, name := range req.Order {
				p, _ := req.Universe.Package(name)
				pc := PkgCost{Install: 1, Version: make([]int64, p.NumVersions())}
				for i := range pc.Version {
					pc.Version[i] = int64(i) * 8 // prefer newest
				}
				costs[name] = pc
			}
			return costs, nil
		}},
		ObjectiveFunc{ID: "oldest-heavy", Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
			costs := make(map[string]PkgCost, len(req.Order))
			for _, name := range req.Order {
				p, _ := req.Universe.Package(name)
				n := p.NumVersions()
				pc := PkgCost{Install: 1, Version: make([]int64, n)}
				for i := range pc.Version {
					pc.Version[i] = int64(n-1-i) * 8 // prefer oldest
				}
				costs[name] = pc
			}
			return costs, nil
		}},
	}
	for _, obj := range objs {
		if _, err := sess.Resolve(context.Background(), roots, Options{Objective: obj}); err != nil {
			b.Fatalf("prime Resolve: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Resolve(context.Background(), roots, Options{Objective: objs[i%2]})
		if err != nil {
			b.Fatalf("Resolve: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
}

// BenchmarkSessionColdStart measures NewSession itself (fingerprint plus
// whole-universe skeleton encoding) — the one-time cost a Session
// amortizes across its lifetime.
func BenchmarkSessionColdStart(b *testing.B) {
	u, _ := repo.SynthDense(40, 8, 3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess := NewSession(u, SessionOptions{})
		if sess.Fingerprint() == "" {
			b.Fatal("empty fingerprint")
		}
	}
}

// The BenchmarkConcretizeVirtual* benchmarks cover the richer declaration
// semantics: provider selection over competing virtuals (cold and warm)
// and trigger-guarded conditional chains. They extend the perf trajectory
// for the provider-selection and condition-literal encoder paths.

func BenchmarkConcretizeVirtualDiamond(b *testing.B) {
	u, root := repo.SynthVirtualDiamond(6, 3, 6)
	benchConcretize(b, u, root)
}

// BenchmarkConcretizeVirtualDiamondWarm measures the warm path over the
// same virtual-diamond universe with the cache disabled and the root
// rotating between the app and the virtuals themselves, so every
// iteration re-runs provider selection on the shared solver.
func BenchmarkConcretizeVirtualDiamondWarm(b *testing.B) {
	u, root := repo.SynthVirtualDiamond(6, 3, 6)
	sess := NewSession(u, SessionOptions{CacheSize: -1})
	pool := [][]Root{
		{{Pkg: root}},
		{MustParseRoot("virtual:virt0")},
		{MustParseRoot("virt1@:4")},
		{MustParseRoot("virtual:virt2@2:")},
	}
	if _, err := sess.Resolve(context.Background(), pool[0], Options{}); err != nil {
		b.Fatalf("prime Resolve: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Resolve(context.Background(), pool[i%len(pool)], Options{})
		if err != nil {
			b.Fatalf("Resolve: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
}

// BenchmarkConcretizeVirtualConditional resolves the trigger root of a
// conditional chain: every link's guarded dependency is armed, so the
// solve exercises the condition-literal path end to end.
func BenchmarkConcretizeVirtualConditional(b *testing.B) {
	u, root := repo.SynthConditionalChain(16, 6)
	benchConcretize(b, u, root)
}

func BenchmarkConcretizeUnsatWeb(b *testing.B) {
	u, root := repo.SynthUnsatWeb(10, 4)
	b.ReportAllocs()
	roots := []Root{{Pkg: root}}
	for i := 0; i < b.N; i++ {
		if _, err := Concretize(u, roots, Options{}); !errors.Is(err, ErrUnsatisfiable) {
			b.Fatalf("err = %v, want ErrUnsatisfiable", err)
		}
	}
}

// The BenchmarkSessionChurn* benchmarks measure the live-universe path:
// a serving session absorbing a stream of append-only deltas while
// answering a fixed working set of request shapes. The universe is eight
// independent root->mid->leaf clusters, and each delta adds one new leaf
// version to one rotating cluster — so per delta, seven of the eight
// shapes are untouched (their cached answers must survive invalidation)
// and one must be re-solved.
//
//   - SessionChurn: Extend in place + resolve all eight shapes (7 cache
//     hits, 1 re-solve) on one warm session.
//   - SessionChurnColdRebuild: the same delta stream answered the pre-live
//     way — mutate the universe, re-encode a fresh session from scratch,
//     re-solve all eight shapes cold. The warm/cold ratio is the payoff of
//     in-place extension with delta-scoped invalidation.
//   - SessionExtend: the Extend call alone (skeleton growth plus
//     invalidation sweep), isolating the delta-application cost itself.
//
// Both churn benchmarks rebuild the universe every 64 deltas (off the
// clock) so steady-state cost is measured rather than unbounded catalog
// growth.

const churnClusters = 8

func benchChurnUniverse() *repo.Universe {
	u := repo.New()
	for c := 0; c < churnClusters; c++ {
		for k := 4; k >= 1; k-- {
			v := fmt.Sprintf("%d.0", k)
			u.Add(fmt.Sprintf("root%d", c), v, repo.Dep(fmt.Sprintf("mid%d", c), ":"))
			u.Add(fmt.Sprintf("mid%d", c), v, repo.Dep(fmt.Sprintf("leaf%d", c), ":"))
			u.Add(fmt.Sprintf("leaf%d", c), v)
		}
	}
	return u
}

func churnRoots() [][]Root {
	shapes := make([][]Root, churnClusters)
	for c := range shapes {
		shapes[c] = []Root{{Pkg: fmt.Sprintf("root%d", c)}}
	}
	return shapes
}

func BenchmarkSessionChurn(b *testing.B) {
	shapes := churnRoots()
	var (
		u    *repo.Universe
		sess *Session
	)
	next := 0
	rebuild := func() {
		u = benchChurnUniverse()
		sess = NewSession(u, SessionOptions{})
		for _, roots := range shapes {
			if _, err := sess.Resolve(context.Background(), roots, Options{}); err != nil {
				b.Fatalf("prime Resolve: %v", err)
			}
		}
	}
	rebuild()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%64 == 0 {
			b.StopTimer()
			rebuild()
			b.StartTimer()
		}
		next++
		d := repo.NewDelta()
		d.Add(fmt.Sprintf("leaf%d", i%churnClusters), fmt.Sprintf("4.%d", next))
		if _, err := sess.Extend(d); err != nil {
			b.Fatalf("Extend: %v", err)
		}
		for _, roots := range shapes {
			res, err := sess.Resolve(context.Background(), roots, Options{})
			if err != nil {
				b.Fatalf("Resolve: %v", err)
			}
			if len(res.Picks) == 0 {
				b.Fatal("empty resolution")
			}
		}
	}
}

func BenchmarkSessionChurnColdRebuild(b *testing.B) {
	shapes := churnRoots()
	var u *repo.Universe
	u = benchChurnUniverse()
	next := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%64 == 0 {
			b.StopTimer()
			u = benchChurnUniverse()
			b.StartTimer()
		}
		next++
		d := repo.NewDelta()
		d.Add(fmt.Sprintf("leaf%d", i%churnClusters), fmt.Sprintf("4.%d", next))
		if _, err := u.Apply(d); err != nil {
			b.Fatalf("Apply: %v", err)
		}
		sess := NewSession(u, SessionOptions{})
		for _, roots := range shapes {
			res, err := sess.Resolve(context.Background(), roots, Options{})
			if err != nil {
				b.Fatalf("Resolve: %v", err)
			}
			if len(res.Picks) == 0 {
				b.Fatal("empty resolution")
			}
		}
	}
}

func BenchmarkSessionExtend(b *testing.B) {
	var sess *Session
	next := 0
	rebuild := func() {
		sess = NewSession(benchChurnUniverse(), SessionOptions{})
	}
	rebuild()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%64 == 0 {
			b.StopTimer()
			rebuild()
			b.StartTimer()
		}
		next++
		d := repo.NewDelta()
		d.Add(fmt.Sprintf("leaf%d", i%churnClusters), fmt.Sprintf("4.%d", next))
		if _, err := sess.Extend(d); err != nil {
			b.Fatalf("Extend: %v", err)
		}
	}
}
