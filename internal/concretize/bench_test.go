package concretize

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// The BenchmarkConcretize* benchmarks are the repo's perf baseline: each
// measures a full concretization (encode + branch-and-bound solve + decode)
// over a deterministic synthetic universe from internal/repo. Future PRs
// optimize against these numbers.

func benchConcretize(b *testing.B, u *repo.Universe, root string) {
	b.Helper()
	b.ReportAllocs()
	roots := []Root{{Pkg: root}}
	for i := 0; i < b.N; i++ {
		res, err := Concretize(u, roots, Options{})
		if err != nil {
			b.Fatalf("Concretize: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
}

func BenchmarkConcretizeDiamond(b *testing.B) {
	u, root := repo.SynthDiamond(8, 8)
	benchConcretize(b, u, root)
}

func BenchmarkConcretizeChain(b *testing.B) {
	u, root := repo.SynthChain(24, 6)
	benchConcretize(b, u, root)
}

func BenchmarkConcretizeDense(b *testing.B) {
	u, root := repo.SynthDense(40, 8, 3, 1)
	benchConcretize(b, u, root)
}

// The BenchmarkSessionWarm* benchmarks measure the warm path over the same
// dense universe as BenchmarkConcretizeDense, which is their cold
// baseline:
//
//   - WarmHit: repeat request against a caching Session — a cache lookup
//     plus a picks-map copy, no solver contact.
//   - WarmMiss: cache disabled, so every iteration re-runs branch-and-bound
//     on the shared solver — re-encoding is skipped and learnt clauses,
//     VSIDS activity, and saved phases carry over.
//   - WarmMissRotate: cache disabled and the root rotates, so iterations
//     cannot ride phase-saving toward an already-found model.

func benchSessionWarm(b *testing.B, cacheSize int, rootFor func(i int) []Root) {
	b.Helper()
	u, root := repo.SynthDense(40, 8, 3, 1)
	sess := NewSession(u, SessionOptions{CacheSize: cacheSize})
	// Prime: encode is done in NewSession; run one request so the warm
	// state (and cache, if enabled) exists.
	if _, err := sess.Resolve(context.Background(), []Root{{Pkg: root}}, Options{}); err != nil {
		b.Fatalf("prime Resolve: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Resolve(context.Background(), rootFor(i), Options{})
		if err != nil {
			b.Fatalf("Resolve: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
}

func BenchmarkSessionWarmHit(b *testing.B) {
	roots := []Root{{Pkg: "dense0"}}
	benchSessionWarm(b, 0, func(int) []Root { return roots })
}

func BenchmarkSessionWarmMiss(b *testing.B) {
	roots := []Root{{Pkg: "dense0"}}
	benchSessionWarm(b, -1, func(int) []Root { return roots })
}

func BenchmarkSessionWarmMissRotate(b *testing.B) {
	pool := make([][]Root, 8)
	for i := range pool {
		pool[i] = []Root{{Pkg: fmt.Sprintf("dense%d", i)}}
	}
	benchSessionWarm(b, -1, func(i int) []Root { return pool[i%len(pool)] })
}

// BenchmarkSessionWarmDescent isolates the cost of bound-tightening
// descent rounds on a warm solver: the request alternates between two
// objectives with opposite version preferences, so the saved phases always
// sit on the wrong model and every iteration must walk the bound down from
// a bad incumbent — the pure descent-round workload, with activation,
// encoding, and caching all amortized away. Regressions in TightenPB or
// the descent schedule (per-round allocation, relaxation churn) land
// directly on this number.
func BenchmarkSessionWarmDescent(b *testing.B) {
	u, root := repo.SynthDense(40, 8, 3, 1)
	sess := NewSession(u, SessionOptions{CacheSize: -1})
	roots := []Root{{Pkg: root}}
	objs := [2]Objective{
		ObjectiveFunc{ID: "newest-heavy", Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
			costs := make(map[string]PkgCost, len(req.Order))
			for _, name := range req.Order {
				p, _ := req.Universe.Package(name)
				pc := PkgCost{Install: 1, Version: make([]int64, p.NumVersions())}
				for i := range pc.Version {
					pc.Version[i] = int64(i) * 8 // prefer newest
				}
				costs[name] = pc
			}
			return costs, nil
		}},
		ObjectiveFunc{ID: "oldest-heavy", Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
			costs := make(map[string]PkgCost, len(req.Order))
			for _, name := range req.Order {
				p, _ := req.Universe.Package(name)
				n := p.NumVersions()
				pc := PkgCost{Install: 1, Version: make([]int64, n)}
				for i := range pc.Version {
					pc.Version[i] = int64(n-1-i) * 8 // prefer oldest
				}
				costs[name] = pc
			}
			return costs, nil
		}},
	}
	for _, obj := range objs {
		if _, err := sess.Resolve(context.Background(), roots, Options{Objective: obj}); err != nil {
			b.Fatalf("prime Resolve: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Resolve(context.Background(), roots, Options{Objective: objs[i%2]})
		if err != nil {
			b.Fatalf("Resolve: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
}

// BenchmarkSessionColdStart measures NewSession itself (fingerprint plus
// whole-universe skeleton encoding) — the one-time cost a Session
// amortizes across its lifetime.
func BenchmarkSessionColdStart(b *testing.B) {
	u, _ := repo.SynthDense(40, 8, 3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess := NewSession(u, SessionOptions{})
		if sess.Fingerprint() == "" {
			b.Fatal("empty fingerprint")
		}
	}
}

// The BenchmarkConcretizeVirtual* benchmarks cover the richer declaration
// semantics: provider selection over competing virtuals (cold and warm)
// and trigger-guarded conditional chains. They extend the perf trajectory
// for the provider-selection and condition-literal encoder paths.

func BenchmarkConcretizeVirtualDiamond(b *testing.B) {
	u, root := repo.SynthVirtualDiamond(6, 3, 6)
	benchConcretize(b, u, root)
}

// BenchmarkConcretizeVirtualDiamondWarm measures the warm path over the
// same virtual-diamond universe with the cache disabled and the root
// rotating between the app and the virtuals themselves, so every
// iteration re-runs provider selection on the shared solver.
func BenchmarkConcretizeVirtualDiamondWarm(b *testing.B) {
	u, root := repo.SynthVirtualDiamond(6, 3, 6)
	sess := NewSession(u, SessionOptions{CacheSize: -1})
	pool := [][]Root{
		{{Pkg: root}},
		{MustParseRoot("virtual:virt0")},
		{MustParseRoot("virt1@:4")},
		{MustParseRoot("virtual:virt2@2:")},
	}
	if _, err := sess.Resolve(context.Background(), pool[0], Options{}); err != nil {
		b.Fatalf("prime Resolve: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Resolve(context.Background(), pool[i%len(pool)], Options{})
		if err != nil {
			b.Fatalf("Resolve: %v", err)
		}
		if len(res.Picks) == 0 {
			b.Fatal("empty resolution")
		}
	}
}

// BenchmarkConcretizeVirtualConditional resolves the trigger root of a
// conditional chain: every link's guarded dependency is armed, so the
// solve exercises the condition-literal path end to end.
func BenchmarkConcretizeVirtualConditional(b *testing.B) {
	u, root := repo.SynthConditionalChain(16, 6)
	benchConcretize(b, u, root)
}

func BenchmarkConcretizeUnsatWeb(b *testing.B) {
	u, root := repo.SynthUnsatWeb(10, 4)
	b.ReportAllocs()
	roots := []Root{{Pkg: root}}
	for i := 0; i < b.N; i++ {
		if _, err := Concretize(u, roots, Options{}); !errors.Is(err, ErrUnsatisfiable) {
			b.Fatalf("err = %v, want ErrUnsatisfiable", err)
		}
	}
}
