package concretize

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// This file is the differential oracle arm for the richer declaration
// semantics: virtual packages with competing providers and conditional
// (triggered) dependencies and conflicts. The same warm-vs-cold harness as
// differential_test.go runs over the SynthVirtualDiamond and
// SynthConditionalChain families, with the oracle strength chosen per
// family:
//
//   - Unique-optimum streams (single-provider diamonds; conditional chains
//     whose requests constrain only the root) assert pick-for-pick
//     equality.
//   - Tie-prone streams (competing providers; requests touching the
//     trigger or the conditional-conflict pariah) assert satisfiability
//     and cost equality, with every answer independently re-verified
//     against the universe.
//
// Together with the portfolio arm in resolve (TestPortfolioVirtual-
// Differential), this covers the ROADMAP's "oracle arm for richer
// universes" across well over 100 seeded universes.

// rangeSpec renders a random range form over versions 1..max+1 (the +1
// makes some requests unsatisfiable-by-range).
func rangeSpec(rng *rand.Rand, name string, max int) string {
	k := 1 + rng.Intn(max+1)
	switch rng.Intn(4) {
	case 0:
		return name
	case 1:
		return fmt.Sprintf("%s@:%d", name, k)
	case 2:
		return fmt.Sprintf("%s@%d:", name, k)
	default:
		return fmt.Sprintf("%s@%d", name, k)
	}
}

// virtualDiamondRequest draws 1-3 roots over a SynthVirtualDiamond
// universe: the app root, bare and explicitly-namespaced virtual roots,
// individual providers, and the shared base.
func virtualDiamondRequest(rng *rand.Rand, virtuals, providers, versions int) []Root {
	n := 1 + rng.Intn(3)
	roots := make([]Root, 0, n)
	for i := 0; i < n; i++ {
		var name string
		switch rng.Intn(4) {
		case 0:
			name = "app"
		case 1:
			name = fmt.Sprintf("virt%d", rng.Intn(virtuals))
			if rng.Intn(2) == 0 {
				name = VirtualPrefix + name // explicit namespace, same meaning
			}
		case 2:
			name = fmt.Sprintf("prov%d_%d", rng.Intn(virtuals), rng.Intn(providers))
		default:
			name = "vbase"
		}
		roots = append(roots, MustParseRoot(rangeSpec(rng, name, versions)))
	}
	return roots
}

// TestDifferentialVirtualDiamond: 60 seeded provider-selection universes.
// Single-provider diamonds have unique optima (strong oracle: exact
// picks); competing providers are tie-prone (cost + verify oracle).
func TestDifferentialVirtualDiamond(t *testing.T) {
	nUniverses := 60
	if testing.Short() {
		nUniverses = 12
	}
	rng := rand.New(rand.NewSource(271828))
	for i := 0; i < nUniverses; i++ {
		virtuals := 1 + rng.Intn(3)
		providers := 1 + rng.Intn(3)
		versions := 1 + rng.Intn(4)
		u, _ := repo.SynthVirtualDiamond(virtuals, providers, versions)
		if err := u.Validate(); err != nil {
			t.Fatalf("universe %d invalid: %v", i, err)
		}
		exact := providers == 1
		gen := func(rng *rand.Rand) []Root {
			return virtualDiamondRequest(rng, virtuals, providers, versions)
		}
		t.Run(fmt.Sprintf("u%03d_v%d_p%d_k%d", i, virtuals, providers, versions), func(t *testing.T) {
			runDifferentialGenStream(t, rng, u, gen, 10, exact)
		})
	}
}

// conditionalChainRequest draws roots over a SynthConditionalChain
// universe. rootOnly restricts the vocabulary to the chain root "cc0",
// whose streams have unique optima; otherwise links, the trigger "ctrl",
// and the conditional-conflict pariah "ccx" join in (tie-prone, and
// sat-flipping when ccx and cc0 meet).
func conditionalChainRequest(rng *rand.Rand, length, versions int, rootOnly bool) []Root {
	if rootOnly {
		n := 1 + rng.Intn(2)
		roots := make([]Root, 0, n)
		for i := 0; i < n; i++ {
			roots = append(roots, MustParseRoot(rangeSpec(rng, "cc0", versions)))
		}
		return roots
	}
	n := 1 + rng.Intn(3)
	roots := make([]Root, 0, n)
	for i := 0; i < n; i++ {
		var name string
		switch rng.Intn(4) {
		case 0:
			name = "cc0"
		case 1:
			name = fmt.Sprintf("cc%d", rng.Intn(length))
		case 2:
			name = "ctrl"
		default:
			name = "ccx"
		}
		roots = append(roots, MustParseRoot(rangeSpec(rng, name, versions)))
	}
	return roots
}

// TestDifferentialConditionalChain: 50 seeded triggered-dependency
// universes, each driven by two streams — a root-only stream under the
// strong exact-picks oracle and a free-vocabulary stream (trigger and
// pariah roots flip costs and satisfiability) under the cost oracle.
func TestDifferentialConditionalChain(t *testing.T) {
	nUniverses := 50
	if testing.Short() {
		nUniverses = 10
	}
	rng := rand.New(rand.NewSource(314159))
	for i := 0; i < nUniverses; i++ {
		length := 2 + rng.Intn(5)
		versions := 1 + rng.Intn(4)
		u, _ := repo.SynthConditionalChain(length, versions)
		if err := u.Validate(); err != nil {
			t.Fatalf("universe %d invalid: %v", i, err)
		}
		t.Run(fmt.Sprintf("u%03d_l%d_k%d_exact", i, length, versions), func(t *testing.T) {
			gen := func(rng *rand.Rand) []Root {
				return conditionalChainRequest(rng, length, versions, true)
			}
			runDifferentialGenStream(t, rng, u, gen, 6, true)
		})
		t.Run(fmt.Sprintf("u%03d_l%d_k%d_cost", i, length, versions), func(t *testing.T) {
			gen := func(rng *rand.Rand) []Root {
				return conditionalChainRequest(rng, length, versions, false)
			}
			runDifferentialGenStream(t, rng, u, gen, 8, false)
		})
	}
}

// TestConditionalChainSatFlip pins the family's headline semantics: with
// one version per package, rooting the pariah together with the chain root
// is unsatisfiable (the conditional conflict is always armed), while either
// root alone resolves — the same universe flips satisfiability purely on
// trigger selection.
func TestConditionalChainSatFlip(t *testing.T) {
	u, root := repo.SynthConditionalChain(3, 1)
	both := []Root{{Pkg: root}, {Pkg: "ccx"}}
	if _, err := Concretize(u, both, Options{}); err == nil {
		t.Fatal("cc0+ccx with one version must be unsatisfiable")
	}
	for _, solo := range []string{root, "ccx"} {
		if _, err := Concretize(u, []Root{{Pkg: solo}}, Options{}); err != nil {
			t.Fatalf("root %s alone: %v", solo, err)
		}
	}

	// With two versions the conflict is dodged by lagging the trigger:
	// ccx lands newest, ctrl one behind, and the chain stays newest.
	u2, root2 := repo.SynthConditionalChain(3, 2)
	res, err := Concretize(u2, []Root{{Pkg: root2}, {Pkg: "ccx"}}, Options{})
	if err != nil {
		t.Fatalf("cc0+ccx with two versions: %v", err)
	}
	got := pickStrings(res)
	want := map[string]string{"cc0": "2.0", "ctrl": "1.0", "ccx": "2.0", "cc1": "2.0", "cc2": "2.0"}
	for pkg, v := range want {
		if got[pkg] != v {
			t.Errorf("picks[%s] = %s, want %s (full: %v)", pkg, got[pkg], v, got)
		}
	}
}
