package concretize

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// The cancellation tests use the pigeonhole family: refuting
// SynthPigeonhole(11) takes minutes of solver time, so a request over it
// is reliably in-flight when the context fires, while single-pigeon
// requests over the same universe resolve instantly — which is exactly
// what the reusability checks need.

func TestResolveCanceledBeforeStart(t *testing.T) {
	u, root := repo.SynthDiamond(3, 3)
	sess := NewSession(u, SessionOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sess.Resolve(ctx, []Root{{Pkg: root}}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The canceled request must not have been cached as an answer.
	if sess.CacheLen() != 0 {
		t.Fatalf("CacheLen = %d after canceled request, want 0", sess.CacheLen())
	}
	// And the session must still serve.
	res, err := sess.Resolve(context.Background(), []Root{{Pkg: root}}, Options{})
	if err != nil || !res.Stats.Optimal {
		t.Fatalf("post-cancel resolve: res %+v, err %v", res, err)
	}
}

func TestResolveCancelMidSolve(t *testing.T) {
	u, root := repo.SynthPigeonhole(11)
	sess := NewSession(u, SessionOptions{})
	ctx, cancel := context.WithCancel(context.Background())

	type outcome struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan outcome, 1)
	go func() {
		start := time.Now()
		_, err := sess.Resolve(ctx, []Root{{Pkg: root}}, Options{})
		done <- outcome{err: err, elapsed: time.Since(start)}
	}()

	// Let the solver descend into the refutation, then cancel and measure
	// how long it takes to notice. The interrupt flag is polled every
	// search-loop iteration, so the return is near-immediate; the bound
	// below is generous slack for CI scheduling, not the expected latency.
	time.Sleep(30 * time.Millisecond)
	canceledAt := time.Now()
	cancel()
	var o outcome
	select {
	case o = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Resolve did not return after cancel")
	}
	if !errors.Is(o.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (solve finished in %v?)", o.err, o.elapsed)
	}
	if lag := time.Since(canceledAt); lag > 100*time.Millisecond {
		t.Errorf("Resolve took %v to honor cancellation", lag)
	}

	// Solver state must remain reusable AND promptly so: a satisfiable
	// request over the same universe (one pigeon alone, no hole
	// contention) succeeds on the same session. Without the phase reset
	// on cancellation, the saved phases of the interrupted refutation pin
	// this solve inside the all-pigeons-installed subspace and it burns
	// >100k conflicts escaping; with the reset it is conflict-free.
	reuseStart := time.Now()
	res, err := sess.Resolve(context.Background(), []Root{{Pkg: "pigeon0"}}, Options{})
	if err != nil {
		t.Fatalf("post-cancel resolve: %v", err)
	}
	if !res.Stats.Optimal || len(res.Picks) != 1 {
		t.Fatalf("post-cancel resolution: %+v", res)
	}
	if d := time.Since(reuseStart); d > time.Second {
		t.Errorf("post-cancel resolve took %v (%d conflicts), want prompt", d, res.Stats.Conflicts)
	}
	if res.Stats.Conflicts > 10000 {
		t.Errorf("post-cancel resolve burned %d conflicts; phase reset regressed", res.Stats.Conflicts)
	}
}

func TestResolveDeadline(t *testing.T) {
	u, root := repo.SynthPigeonhole(11)
	sess := NewSession(u, SessionOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := sess.Resolve(ctx, []Root{{Pkg: root}}, Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Errorf("deadline-bounded resolve took %v", d)
	}
}

func TestPigeonholeSmallIsUnsat(t *testing.T) {
	// Sanity-check the encoding on an instance small enough to refute:
	// the typed error carries the request's roots.
	u, root := repo.SynthPigeonhole(4)
	_, err := Concretize(u, []Root{{Pkg: root}}, Options{})
	var unsat *UnsatError
	if !errors.As(err, &unsat) {
		t.Fatalf("err = %v, want *UnsatError", err)
	}
	if len(unsat.Roots) != 1 || unsat.Roots[0].Pkg != root {
		t.Fatalf("UnsatError.Roots = %v", unsat.Roots)
	}
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatal("UnsatError must match ErrUnsatisfiable")
	}
}

func TestCancelDoesNotPoisonBudgets(t *testing.T) {
	// A canceled request must not leak its interrupt into a later
	// budget-limited request: the latter reports ErrBudget, not a
	// cancellation.
	u, root := repo.SynthPigeonhole(11)
	sess := NewSession(u, SessionOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	if _, err := sess.Resolve(ctx, []Root{{Pkg: root}}, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, err := sess.Resolve(context.Background(), []Root{{Pkg: root}}, Options{MaxConflicts: 50})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("budgeted err = %v, want ErrBudget", err)
	}
}

func TestBudgetExpiryDoesNotPoisonPhases(t *testing.T) {
	// Budget expiry abandons a search mid-flight exactly like a
	// cancellation: without the phase reset, the next request would have
	// to refute the abandoned all-pigeons-installed subspace before it
	// could look anywhere else.
	u, root := repo.SynthPigeonhole(11)
	sess := NewSession(u, SessionOptions{})
	if _, err := sess.Resolve(context.Background(), []Root{{Pkg: root}}, Options{MaxConflicts: 5000}); !errors.Is(err, ErrBudget) {
		t.Fatalf("budgeted err = %v, want ErrBudget", err)
	}
	res, err := sess.Resolve(context.Background(), []Root{{Pkg: "pigeon0"}}, Options{})
	if err != nil {
		t.Fatalf("post-budget resolve: %v", err)
	}
	if res.Stats.Conflicts > 10000 {
		t.Errorf("post-budget resolve burned %d conflicts; phase reset regressed", res.Stats.Conflicts)
	}
}
