package concretize_test

import (
	"fmt"
	"sort"

	"github.com/paper-repo-growth/go-arxiv/internal/concretize"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// ExampleConcretize resolves a small Spack-flavored universe: netcdf's
// newest version pins zlib to the 1.2 series, and root newness dominates,
// so netcdf stays at 4.9.2 while zlib steps back to 1.2.13.
func ExampleConcretize() {
	u := repo.New()
	u.Add("netcdf", "4.9.2", repo.Dep("hdf5", "1.14"), repo.Dep("zlib", "1.2"))
	u.Add("netcdf", "4.8.1", repo.Dep("hdf5", ":"), repo.Dep("zlib", ":"))
	u.Add("hdf5", "1.14.3", repo.Dep("zlib", "1.2.8:"))
	u.Add("hdf5", "1.12.0", repo.Dep("zlib", ":"))
	u.Add("zlib", "1.3.1")
	u.Add("zlib", "1.2.13")
	u.Add("zlib", "1.2.8")

	res, err := concretize.Concretize(u, []concretize.Root{
		concretize.MustParseRoot("netcdf"),
	}, concretize.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	names := make([]string, 0, len(res.Picks))
	for n := range res.Picks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s@%s\n", n, res.Picks[n])
	}
	// Output:
	// hdf5@1.14.3
	// netcdf@4.9.2
	// zlib@1.2.13
}
