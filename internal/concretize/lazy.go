package concretize

// Lazy materialization: a Session built with SessionOptions.Lazy encodes
// nothing at construction. solveLocked materializes the request's
// reachable subgraph the first time any request touches it, and later
// requests share everything already encoded. The key soundness property
// is that steady-state materialization is *purely additive*: the
// reachability closure pulls in every dependency target and every
// provider of any dep'd or rooted virtual, so a requirement clause is
// complete over its candidate set the moment it is first emitted, and
// learnt clauses / saved phases survive first touches. The only events
// that force a clause detach — and therefore a ForgetLearnts, exactly as
// in Extend — are revivals of work a delta parked under a then-unreached
// name, and widening a virtual's provider selection when a later batch
// materializes more of its providers. materializeHazard detects those
// cases before any mutation.

import (
	"fmt"

	"github.com/paper-repo-growth/go-arxiv/internal/sat"
)

// EncodingStats is a point-in-time snapshot of how much of the bound
// universe a session's solver formula actually carries. For an eager
// session MaterializedPackages tracks UniversePackages; for a lazy one it
// tracks the union of subgraphs requests have reached — the number that
// makes registry-scale universes servable at all.
type EncodingStats struct {
	// Lazy reports whether the session materializes on first reach.
	Lazy bool
	// MaterializedPackages counts packages with encoded variables and
	// clauses.
	MaterializedPackages int
	// UniversePackages counts packages in the bound universe.
	UniversePackages int
	// SolverVars is the solver's current variable count (package,
	// version, activation, support, and guard variables alike).
	SolverVars int
}

// EncodingStats returns the session's encoder-coverage counters. It never
// blocks — in particular not on an in-flight solve — so stats endpoints
// can poll it on every request; the counters are atomic mirrors written
// under the session lock at every materialization point.
//
// goarxivlint:lockfree
func (se *Session) EncodingStats() EncodingStats {
	return EncodingStats{
		Lazy:                 se.lazy,
		MaterializedPackages: int(se.matPkgsA.Load()),
		UniversePackages:     int(se.uniPkgsA.Load()),
		SolverVars:           int(se.matVarsA.Load()),
	}
}

// syncEncodingStats refreshes the atomic stats mirrors from the encoder
// state. Callers hold se.mu (newSession runs before the handle escapes).
func (se *Session) syncEncodingStats() {
	se.matPkgsA.Store(int64(len(se.vars)))
	se.uniPkgsA.Store(int64(se.u.NumPackages()))
	se.matVarsA.Store(int64(se.solver.NumVars()))
}

// materializeLocked brings one request's reachable subgraph into the
// solver: every order package without variables is encoded, and the
// touched names (the fresh packages, the virtuals they provide, and any
// first-rooted virtual) run through the same extendName worklist a delta
// uses, which widens provider selections, revives parked declarations,
// and resurrects level-0-dead versions uniformly. Requirements of the
// fresh packages are emitted last, after the worklist, so a declaration
// that parks itself in this batch (a dormant trigger on a still-unreached
// name) is not immediately revived. Callers hold se.mu; order must be a
// reachability closure over the current universe. The only error path is
// the injection site, which fires before any mutation — a real
// materialization failure is a bug, not a runtime condition.
func (se *Session) materializeLocked(order []string, roots []Root) error {
	if err := fpMaterialize.Inject(""); err != nil {
		return fmt.Errorf("concretize: materialize: %w", err)
	}
	var fresh []string
	for _, name := range order {
		if _, ok := se.vars[name]; !ok {
			fresh = append(fresh, name)
		}
	}

	// touched: every name whose widenable structures this batch can
	// affect. Fresh packages (parked declarations under them revive, def
	// and support keys on them widen), the virtuals they provide
	// (selection clauses widen), and root virtuals not yet encoded (their
	// "needed" variable must exist before activation looks it up).
	touched := make([]string, 0, len(fresh)*2)
	inTouched := make(map[string]bool, len(fresh)*2)
	add := func(name string) {
		if !inTouched[name] {
			inTouched[name] = true
			touched = append(touched, name)
		}
	}
	for _, name := range fresh {
		add(name)
		p, _ := se.u.Package(name)
		for _, def := range p.Versions() {
			for _, pr := range def.Provides {
				add(pr.Virtual)
			}
		}
	}
	for _, r := range roots {
		name := r.Pkg
		if _, ok := se.virts[name]; ok {
			continue // already encoded (and complete: see materializeHazard)
		}
		if !se.u.IsVirtual(name) {
			continue
		}
		if _, isPkg := se.u.Package(name); isPkg && !r.Virtual {
			continue // bare name binds package-first; the package covers it
		}
		add(name)
	}
	if len(touched) == 0 {
		return nil
	}

	// Detaches invalidate learnt clauses (stale level-0 learnt units would
	// be folded into re-added clauses by normalization, silently narrowing
	// them forever), so when this batch will detach anything, learnts are
	// dropped FIRST — before any mutation — mirroring extendLocked.
	if se.materializeHazard(touched) {
		se.solver.ForgetLearnts()
	}

	// Variables and selection structure for every fresh package, before
	// anything lowers requirements against them.
	for _, name := range fresh {
		se.encodePackage(name)
	}

	// The extend worklist over the touched names: widens support keys and
	// provider selections with the freshly in-scope candidates, re-runs
	// definitions and parked declarations, encodes first-referenced
	// virtuals. Resurrection cascades enqueue further names exactly as
	// they do during a delta.
	queue := append([]string(nil), touched...)
	inQ := make(map[string]bool, len(queue))
	for _, name := range queue {
		inQ[name] = true
	}
	push := func(name string) {
		if !inQ[name] {
			inQ[name] = true
			queue = append(queue, name)
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		delete(inQ, name)
		se.extendName(name, push)
	}

	// Requirements of the fresh packages, now that every package they can
	// reference — the whole closure — has its structure in place.
	for _, name := range fresh {
		pv := se.vars[name]
		for i := range pv.pkg.Versions() {
			se.encodeVersionReqs(pv, i)
		}
	}

	se.syncEncodingStats()
	return nil
}

// materializeHazard reports whether materializing the touched names will
// detach any live clause: a definition key on a touched name re-emits
// every user's requirement clause; an already-encoded virtual re-emits
// its provider selection; a parked declaration holding a pruning clause
// detaches it on revival; and a parked site whose declaring version died
// at level 0 resurrects the version, detaching its package structure.
// Dormant-trigger revivals with live declaring versions are additive and
// do not count. Cascades cannot escape the scan: a resurrection only
// happens under a definition re-run or a parked-site revival, both of
// which already report true.
func (se *Session) materializeHazard(touched []string) bool {
	for _, name := range touched {
		if len(se.defsByName[name]) > 0 {
			return true
		}
		if _, ok := se.virts[name]; ok {
			return true
		}
		for _, site := range se.pendingByName[name] {
			if site.ref.Valid() {
				return true
			}
			if pv, ok := se.vars[site.id.pkg]; ok {
				if idx := pv.pkg.IndexOf(site.id.ver); idx >= 0 && se.solver.FixedFalse(sat.Lit(pv.vers[idx])) {
					return true
				}
			}
		}
	}
	return false
}
