package concretize

import (
	"context"
	"errors"
	"math/bits"
	"math/rand"
	"reflect"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/sat"
)

// descent_test.go pins the in-place bound-tightening rewrite of the
// branch-and-bound loop: every descent strategy must return the same
// answer, binary search must take O(log range) solve rounds, and a
// tightening round must never allocate a fresh solver variable or PB
// constraint slot.

// descentConfigs enumerates the strategy axis (with step/polarity/restart
// variation folded in, so strategies are exercised against different
// search trajectories).
func descentConfigs() []SessionOptions {
	return []SessionOptions{
		{Solver: sat.Config{Descent: sat.DescentLinear}},
		{Solver: sat.Config{Descent: sat.DescentLinear, DescentStep: 16}},
		{Solver: sat.Config{Descent: sat.DescentBinary}},
		{Solver: sat.Config{Descent: sat.DescentBinary, PositiveFirst: true, RestartBase: 40}},
		{Solver: sat.Config{Descent: sat.DescentAdaptive}},
	}
}

// runDescentDifferential feeds the same warm request stream through one
// session per strategy and through the cold one-shot path, requiring every
// arm to agree on satisfiability and optimal cost (and on picks when the
// family's optima are unique). Repeats within the stream drive the warm
// bound-memo path — the second visit to a shape descends from a proven
// bound, which is exactly the code path the cold oracle must still match.
func runDescentDifferential(t *testing.T, u *repo.Universe, gen func(rng *rand.Rand) []Root, nReqs int, exactPicks bool, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sessions := make([]*Session, len(descentConfigs()))
	for i, so := range descentConfigs() {
		so.CacheSize = -1 // force every request through the descent loop
		sessions[i] = NewSession(u, so)
	}
	var replay [][]Root
	for i := 0; i < nReqs; i++ {
		var roots []Root
		if len(replay) > 0 && rng.Intn(3) == 0 {
			roots = replay[rng.Intn(len(replay))] // warm-bound repeat
		} else {
			roots = gen(rng)
			replay = append(replay, roots)
		}
		oracle, oracleErr := Concretize(u, roots, Options{})
		for ci, sess := range sessions {
			res, err := sess.Resolve(context.Background(), roots, Options{})
			if oracleErr != nil {
				if !errors.Is(oracleErr, ErrUnsatisfiable) {
					t.Fatalf("roots %s: oracle error not unsat: %v", rootsString(roots), oracleErr)
				}
				if !errors.Is(err, ErrUnsatisfiable) {
					t.Fatalf("roots %s config %d: err %v, oracle unsat", rootsString(roots), ci, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("roots %s config %d: %v", rootsString(roots), ci, err)
			}
			if !res.Stats.Optimal {
				t.Fatalf("roots %s config %d: non-optimal without a budget", rootsString(roots), ci)
			}
			if res.Stats.Cost != oracle.Stats.Cost {
				t.Fatalf("roots %s config %d: cost %d, oracle %d", rootsString(roots), ci, res.Stats.Cost, oracle.Stats.Cost)
			}
			if err := verify(u, roots, res.Picks); err != nil {
				t.Fatalf("roots %s config %d: invalid answer: %v", rootsString(roots), ci, err)
			}
			if exactPicks && !reflect.DeepEqual(res.Picks, oracle.Picks) {
				t.Fatalf("roots %s config %d: picks diverge:\n%v\n%v", rootsString(roots), ci, res.Picks, oracle.Picks)
			}
		}
	}
}

// TestDescentStrategyDifferentialDense: monotone family, unique optima —
// all strategies must agree pick-for-pick with the cold oracle.
func TestDescentStrategyDifferentialDense(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		u, _ := repo.SynthDense(20, 6, 3, seed)
		gen := func(rng *rand.Rand) []Root { return diffRequest(rng, 20, 6) }
		runDescentDifferential(t, u, gen, 12, true, seed)
	}
}

// TestDescentStrategyDifferentialVirtualDiamond: provider competition
// admits co-optimal resolutions, so the oracle is cost + verify.
func TestDescentStrategyDifferentialVirtualDiamond(t *testing.T) {
	u, _ := repo.SynthVirtualDiamond(4, 3, 5)
	gen := func(rng *rand.Rand) []Root { return virtualDiamondRequest(rng, 4, 3, 5) }
	runDescentDifferential(t, u, gen, 16, false, 7)
}

// TestDescentStrategyDifferentialConditionalChain: trigger-gated deps flip
// cost and satisfiability with the root picks; cost + verify oracle.
func TestDescentStrategyDifferentialConditionalChain(t *testing.T) {
	u, _ := repo.SynthConditionalChain(10, 4)
	gen := func(rng *rand.Rand) []Root { return conditionalChainRequest(rng, 10, 4, false) }
	runDescentDifferential(t, u, gen, 16, false, 11)
}

// TestBinaryDescentSolveCallsLogarithmic: binary search must settle in
// O(log range) solve rounds, where the range is bounded by the objective's
// total weight. (Linear descent from a bad incumbent is O(range).)
func TestBinaryDescentSolveCallsLogarithmic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		u, root := repo.SynthDense(20, 6, 3, seed)
		roots := []Root{{Pkg: root}}

		// The objective's total weight bounds the descent range.
		order, _, err := reachable(u, roots)
		if err != nil {
			t.Fatal(err)
		}
		costs, err := DefaultObjective.Costs(ObjectiveRequest{Universe: u, Order: order, Roots: roots})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, pc := range costs {
			total += pc.Install + pc.Omit
			for _, w := range pc.Version {
				total += w
			}
		}

		sess := NewSession(u, SessionOptions{CacheSize: -1, Solver: sat.Config{Descent: sat.DescentBinary}})
		res, err := sess.Resolve(context.Background(), roots, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Each bounded round halves [lo, bestCost-1]: at most log2(total)
		// UNSAT rounds and log2(total) SAT rounds, plus the first model and
		// the closing proof.
		limit := 2*bits.Len64(uint64(total)) + 4
		if res.Stats.SolveCalls > limit {
			t.Errorf("seed %d: binary descent took %d solve calls, want <= %d (total weight %d)",
				seed, res.Stats.SolveCalls, limit, total)
		}
	}
}

// TestDescentNoPerRoundAllocation: the regression the tentpole exists to
// pin. A multi-round descent must allocate at most ONE solver variable
// (the per-request bound guard) and recycle PB constraint slots, no matter
// how many tightening rounds it runs — and a request that descends from an
// already-proven bound must allocate no variable at all.
func TestDescentNoPerRoundAllocation(t *testing.T) {
	u, root := repo.SynthVirtualDiamond(6, 3, 6)
	sess := NewSession(u, SessionOptions{CacheSize: -1})
	pool := [][]Root{
		{{Pkg: root}},
		{MustParseRoot("virtual:virt0")},
		{MustParseRoot("virt1@:4")},
		{MustParseRoot("virtual:virt2@2:")},
	}
	// Warm up: every shape gets its activation literal, bound memo entry,
	// and proven bound.
	for _, roots := range pool {
		if _, err := sess.Resolve(context.Background(), roots, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	vars0 := sess.solver.NumVars()
	slots0 := sess.solver.PBSlots()
	for round := 0; round < 8; round++ {
		for _, roots := range pool {
			res, err := sess.Resolve(context.Background(), roots, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// The request may run several tightening rounds; all of them
			// together may allocate at most one guard variable.
			vars := sess.solver.NumVars()
			if grew := vars - vars0; grew > 1 {
				t.Fatalf("round %d roots %s: request allocated %d vars across %d solve rounds, want <= 1",
					round, rootsString(roots), grew, res.Stats.SolveCalls)
			}
			vars0 = vars
			if slots := sess.solver.PBSlots(); slots != slots0 {
				t.Fatalf("round %d roots %s: PB slots grew %d -> %d (per-round constraint churn is back)",
					round, rootsString(roots), slots0, slots)
			}
			if sess.solver.ActivePBs() > slots0 {
				t.Fatalf("round %d: active PBs %d exceed warmed slot count %d", round, sess.solver.ActivePBs(), slots0)
			}
		}
	}
}

// TestBoundMemoRepeatRequestStable: a repeated identical request descends
// from its banked proven optimum — one SAT round, no bound constraint, no
// new variables, even with the solution cache disabled.
func TestBoundMemoRepeatRequestStable(t *testing.T) {
	u, root := repo.SynthDense(30, 6, 3, 3)
	sess := NewSession(u, SessionOptions{CacheSize: -1})
	roots := []Root{{Pkg: root}}
	// Two warmup requests: the first proves the optimum (ending in a
	// refutation round whose search trajectory perturbs the saved phases),
	// the second re-converges the phases onto the optimal model and ends
	// on a SAT round. From then on the stream is steady-state.
	first, err := sess.Resolve(context.Background(), roots, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Resolve(context.Background(), roots, Options{}); err != nil {
		t.Fatal(err)
	}
	vars0, slots0 := sess.solver.NumVars(), sess.solver.PBSlots()
	for i := 0; i < 5; i++ {
		res, err := sess.Resolve(context.Background(), roots, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.SolutionCacheHit {
			t.Fatal("cache disabled, yet served from cache")
		}
		if res.Stats.Cost != first.Stats.Cost || !res.Stats.Optimal {
			t.Fatalf("repeat %d: cost %d optimal=%v, want cost %d optimal", i, res.Stats.Cost, res.Stats.Optimal, first.Stats.Cost)
		}
		if !reflect.DeepEqual(res.Picks, first.Picks) {
			t.Fatalf("repeat %d: picks diverged", i)
		}
		if sess.solver.NumVars() != vars0 {
			t.Fatalf("repeat %d: NumVars %d -> %d (repeat request must not allocate)", i, vars0, sess.solver.NumVars())
		}
		if sess.solver.PBSlots() != slots0 {
			t.Fatalf("repeat %d: PBSlots %d -> %d", i, slots0, sess.solver.PBSlots())
		}
		if res.Stats.SolveCalls != 1 {
			t.Fatalf("repeat %d: %d solve calls, want 1 (descend from banked optimum)", i, res.Stats.SolveCalls)
		}
	}
}

// TestBoundMemoBanksZeroOptimum: a shape whose proven optimum is zero must
// still bank its bound — "proven >= 0" and "never proved anything" are
// different states, and conflating them would pin adaptive descent to the
// cold-path linear schedule for such shapes forever (re-exposing the
// phase-pollution pathology for e.g. lag-only objectives whose optimum
// picks all-newest at cost 0).
func TestBoundMemoBanksZeroOptimum(t *testing.T) {
	u, root := repo.SynthDense(20, 6, 3, 2)
	sess := NewSession(u, SessionOptions{CacheSize: -1})
	roots := []Root{{Pkg: root}}
	// Version-lag-only weights: the all-newest optimum costs exactly 0,
	// but models picking older versions cost more, so descent is armed.
	lagOnly := ObjectiveFunc{ID: "lag-only", Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
		costs := make(map[string]PkgCost, len(req.Order))
		for _, name := range req.Order {
			p, _ := req.Universe.Package(name)
			pc := PkgCost{Version: make([]int64, p.NumVersions())}
			for i := range pc.Version {
				pc.Version[i] = int64(i)
			}
			costs[name] = pc
		}
		return costs, nil
	}}
	res, err := sess.Resolve(context.Background(), roots, Options{Objective: lagOnly})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cost != 0 || !res.Stats.Optimal {
		t.Fatalf("cost %d optimal=%v, want proven optimum 0", res.Stats.Cost, res.Stats.Optimal)
	}
	key := lagOnly.Key() + "\x00" + canonicalRootParts(roots)[0]
	ent, ok := sess.bounds.get(key)
	if !ok {
		t.Fatal("no bound memo entry for the shape")
	}
	if !ent.proven {
		t.Fatal("zero optimum was proven but not banked (proven flag unset)")
	}
	if ent.lo != 0 {
		t.Fatalf("banked lo = %d, want 0", ent.lo)
	}
}
