package concretize

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/sat"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// DefaultSessionCacheSize is the solution-cache capacity used when
// SessionOptions.CacheSize is zero.
const DefaultSessionCacheSize = 1024

// DefaultSessionMaxActivations is the activation-literal capacity used
// when SessionOptions.MaxActivations is zero.
const DefaultSessionMaxActivations = 4096

// SessionOptions tunes a Session.
type SessionOptions struct {
	// CacheSize bounds the number of memoized resolutions (LRU eviction).
	// Zero selects DefaultSessionCacheSize; a negative value disables the
	// cache entirely, so every request runs the solver.
	CacheSize int

	// MaxActivations bounds the number of memoized root-activation
	// literals (LRU eviction; evicted activations are fixed false in the
	// solver and re-allocated on demand, so diverse request streams cannot
	// grow solver variables without bound). Zero selects
	// DefaultSessionMaxActivations; a negative value means unbounded.
	MaxActivations int

	// Lazy defers clause materialization to first reach: the session
	// encodes nothing at construction and lowers each package (variables,
	// selection structure, requirement clauses, trigger plumbing) the
	// first time any request's reachability walk touches it, sharing the
	// materialized subgraph with every later request. Solver size then
	// tracks what requests actually reach instead of what the universe
	// contains — the only mode that scales to registry-sized universes
	// (see SynthRegistry), at the cost of a small first-touch encode per
	// novel subgraph. Answers are identical to an eager session's (pinned
	// by the lazy-vs-eager differential harness). Ignored by the
	// request-scoped sessions Concretize builds internally, which already
	// scope their skeleton to one request.
	Lazy bool

	// Solver tunes the underlying SAT search (branching polarity, restart
	// schedule, objective-descent step). The zero value selects the
	// defaults; differently-tuned Sessions return cost-identical answers,
	// which is what lets a portfolio race them. See sat.Config.
	Solver sat.Config
}

// Session is a reusable concretization handle bound to one universe: the
// warm path of the resolver. Creating a Session encodes the CNF skeleton
// for the whole universe exactly once; each Resolve call then activates its
// roots through assumption literals and runs branch-and-bound on the shared
// solver, so learnt clauses, VSIDS activity, and saved phases accumulate
// across requests instead of being rebuilt and discarded per call. Optimal
// answers (and definitive unsatisfiability) are memoized in an LRU keyed by
// the canonical request shape (objective key + canonicalized roots), so
// repeat requests are answered without touching the solver at all. Beneath
// the answer cache, a bound memo banks each request shape's lowered
// objective and proven lower bound, so even cache-disabled repeat solves
// skip the objective lowering and usually skip the closing optimality
// refutation.
//
// A live universe grows through Session.Extend (see extend.go): the
// skeleton is widened in place and only the cache/memo entries whose
// recorded reach set intersects the delta are invalidated, which is what
// keeps shape keys (rather than fingerprint-qualified keys) sound across
// epochs.
//
// A Session is safe for concurrent use: cache lookups take a read lock and
// solver access is serialized. The universe must not be mutated behind the
// session's back — growth arrives only via Extend (or, for a shared
// universe, via a sibling session's Extend between this session's own
// Extend calls; see the epoch contract on Extend).
type Session struct {
	u     *repo.Universe
	epoch repo.Epoch // universe epoch the skeleton reflects (guarded by mu)
	full  bool       // skeleton covers the whole universe (Extend requires it)
	lazy  bool       // materialize on first reach (immutable after construction)

	// epochA mirrors epoch for lock-free reads: serving tiers key request
	// coalescing on Epoch(), and an Epoch() that waited on mu would
	// serialize behind in-flight solves — exactly the requests coalescing
	// exists to collapse. Written under mu, read without.
	//
	// goarxivlint:lockfree
	epochA atomic.Uint64

	// Encoder-coverage mirrors for EncodingStats (written under mu at
	// every materialization point, read without — stats endpoints must
	// never queue behind an in-flight solve).
	//
	// goarxivlint:lockfree
	matPkgsA atomic.Int64
	// goarxivlint:lockfree
	uniPkgsA atomic.Int64
	// goarxivlint:lockfree
	matVarsA atomic.Int64

	// mu serializes all solver access (the encoding, activation literals,
	// and the branch-and-bound loop all mutate solver state).
	//
	// goarxivlint:lock
	mu      sync.Mutex
	solver  *sat.Solver
	vars    map[string]*pkgVars
	virts   map[string]*virtVars // encoded virtuals (provider in scope)
	acts    map[string]*list.Element
	actsLRU *list.List // of *actEntry, most-recently-used first
	actsMax int

	// Requirement lowering state, all keyed by "name@range" with a
	// name-index alongside so a delta touching a name finds every affected
	// key without scanning:
	//
	//   - defs: requirement keys recording every dependency site whose
	//     inlined clause (xi [AND z] -> OR matching-candidates) mentions the
	//     key's candidate set. Most keys have exactly one user, so the
	//     clause is emitted directly (no shared indirection literal); a
	//     delta that widens the candidate set detaches each user's clause
	//     and re-runs its declaration.
	//   - sups: support literals z with x_c -> z per matching candidate,
	//     used for condition triggers and (negated) for conflict targets.
	//     Widening is purely additive: new support clauses for new
	//     candidates.
	//   - pendingByName: declarations currently unemittable (dormant
	//     trigger, empty dependency target, vacuous conflict) parked under
	//     the name whose growth would change them.
	defs          map[string]*reqDef
	defsByName    map[string][]string
	sups          map[string]*supEntry
	supsByName    map[string][]string
	pendingByName map[string][]declSite

	// bounds memoizes per-request-shape solve facts that stay valid for
	// the session's lifetime: the reachability order, the lowered
	// objective terms, and — the warm-path keystone — the proven lower
	// bound on the optimal cost. Guarded by mu.
	bounds *lru[*boundEntry]

	// Per-request scratch reused across Resolve calls (guarded by mu):
	// assumption literals, the guarded PB term copy handed to the solver,
	// and the pinned-activation / root-by-part lookups.
	assumpsBuf []sat.Lit
	termsBuf   []sat.PBTerm
	pinnedBuf  map[sat.Lit]bool
	byPartBuf  map[string]Root

	cacheMu sync.RWMutex
	cache   *lru[cacheEntry] // nil when disabled
}

// actEntry is one memoized root-activation literal. target is the root's
// requested name (package or virtual): a delta touching it evicts the
// activation, whose candidate clauses are stale.
type actEntry struct {
	key    string
	target string
	lit    sat.Lit
}

// declID names one declaration — the idx'th dependency or conflict of
// (pkg, ver) — stably across delta-driven index shifts and variable
// reallocation. The encoder re-fetches the declaration and the version's
// current variable through it whenever a parked or widened declaration is
// re-emitted.
type declID struct {
	pkg      string
	ver      version.Version
	conflict bool
	idx      int
}

// declSite is a declaration occurrence with the clause it emitted (zero
// when nothing was emitted): a def usage, or a parked pending entry whose
// pruning clause must be detached on revival.
type declSite struct {
	id  declID
	ref sat.ClauseRef
}

// reqDef is one shared requirement key "name@range": users records every
// dependency site whose requirement clause (xi [AND trigger] -> OR
// matching candidates) was emitted against the key, each with the
// ClauseRef of its inlined clause. When a delta grows the key's candidate
// set, Extend detaches each user's clause and re-runs the declaration so
// the clause is re-emitted over the current candidates.
type reqDef struct {
	name  string
	rng   version.Range
	users []declSite
}

// supEntry is one support key "name@range": lit is forced true whenever a
// matching candidate is selected (x_c -> lit per candidate in seen).
// Widening only ever adds support clauses, so no refs are needed.
type supEntry struct {
	name string
	rng  version.Range
	lit  sat.Lit
	seen map[sat.Lit]bool
}

// NewSession encodes the universe's CNF skeleton and returns a warm handle
// for resolving requests against it.
func NewSession(u *repo.Universe, opts SessionOptions) *Session {
	return newSession(u, u.Names(), opts, true)
}

// newSession builds a session whose skeleton covers only the given
// packages (sorted). Concretize uses this to scope its one-shot session to
// the request's reachable set, so cold-path cost tracks the request, not
// the catalog. full marks a whole-universe session eligible for Extend;
// request-scoped sessions skip the Extend-only site bookkeeping.
func newSession(u *repo.Universe, names []string, opts SessionOptions, full bool) *Session {
	se := &Session{
		u:             u,
		full:          full,
		epoch:         u.Epoch(),
		solver:        sat.NewWithConfig(opts.Solver),
		vars:          make(map[string]*pkgVars),
		virts:         make(map[string]*virtVars),
		defs:          make(map[string]*reqDef),
		defsByName:    make(map[string][]string),
		sups:          make(map[string]*supEntry),
		supsByName:    make(map[string][]string),
		pendingByName: make(map[string][]declSite),
		acts:          make(map[string]*list.Element),
		actsLRU:       list.New(),
		actsMax:       opts.MaxActivations,
		pinnedBuf:     make(map[sat.Lit]bool),
		byPartBuf:     make(map[string]Root),
	}
	se.epochA.Store(uint64(se.epoch))
	if se.actsMax == 0 {
		se.actsMax = DefaultSessionMaxActivations
	}
	// The bound memo shares the activation memo's capacity policy: both
	// grow with the number of distinct request shapes a session serves.
	se.bounds = newLRU[*boundEntry](se.actsMax)
	size := opts.CacheSize
	if size == 0 {
		size = DefaultSessionCacheSize
	}
	if size > 0 {
		se.cache = newLRU[cacheEntry](size)
	}
	// Lazy sessions materialize per reachable subgraph on first touch (see
	// lazy.go); only full-universe sessions qualify — Concretize's
	// request-scoped sessions already cut their skeleton to one closure.
	se.lazy = opts.Lazy && full
	if !se.lazy {
		se.encodeSkeleton(names)
	}
	se.syncEncodingStats()
	return se
}

// Fingerprint returns the content hash of the bound universe at its
// current epoch (memoized by the universe; delta-chained on live
// universes). Cache keys no longer embed it — delta-scoped invalidation
// keeps shape-keyed entries sound — but it remains the external identity
// of what the session is solving against.
func (se *Session) Fingerprint() string {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.u.Fingerprint()
}

// Epoch returns the universe epoch the session's skeleton currently
// reflects. It never blocks — in particular not on an in-flight solve —
// so serving tiers can read it on every request to qualify coalescing
// keys.
//
// goarxivlint:lockfree
func (se *Session) Epoch() repo.Epoch {
	return repo.Epoch(se.epochA.Load())
}

// CacheLen returns the number of memoized resolutions currently held.
func (se *Session) CacheLen() int {
	if se.cache == nil {
		return 0
	}
	se.cacheMu.RLock()
	defer se.cacheMu.RUnlock()
	return se.cache.len()
}

// HasCached reports whether the solution cache currently holds a
// definitive answer for the request-shape key (see ShapeKey). It takes
// only the cache lock — never the session lock — so routing tiers can
// probe every member of a session pool without queuing behind in-flight
// solves. The answer is advisory: a concurrent eviction can invalidate it
// before the probing request lands, which costs that request a solve,
// never its correctness.
func (se *Session) HasCached(key string) bool {
	if se.cache == nil {
		return false
	}
	se.cacheMu.RLock()
	defer se.cacheMu.RUnlock()
	_, ok := se.cache.peek(key)
	return ok
}

// encodeSkeleton lowers the given packages into the solver once, in sorted
// package order: installed/version variables, selection structure,
// exactly-one constraints, virtual provider-selection clauses, and the
// dependency/conflict requirements — conditional ones guarded behind their
// trigger literals. Roots are deliberately absent — they arrive per request
// as assumption literals — so the skeleton with no assumptions is trivially
// satisfiable (install nothing) and the solver can never be poisoned into a
// top-level conflict. The name set must be dependency-closed (all of the
// universe, or a reachability closure, which traverses virtual and
// conditional edges): a requirement on a name wholly outside it is encoded
// as unbuildable (dependencies) or vacuous (conflicts and triggers —
// nothing outside the closure can ever be installed).
func (se *Session) encodeSkeleton(names []string) {
	for _, name := range names {
		se.encodePackage(name)
	}

	// Virtual "needed" variables with provider-selection clauses:
	// y_virt -> OR {x_{q,w} : (q,w) in scope provides virt}. Virtuals with
	// no in-scope provider stay unencoded; requirements on them lower to
	// empty candidate sets below.
	for _, virt := range se.u.VirtualNames() {
		se.encodeVirtual(virt)
	}

	// Requirements per (package, version): dependencies and conflicts,
	// both lowered through the same candidate enumeration and trigger
	// guarding.
	for _, name := range names {
		pv := se.vars[name]
		for i := range pv.pkg.Versions() {
			se.encodeVersionReqs(pv, i)
		}
	}
}

// encodePackage allocates the installed/version variables for one package
// and emits its selection structure (x -> y implications, the y -> OR x
// disjunction, the at-most-one row).
func (se *Session) encodePackage(name string) *pkgVars {
	s := se.solver
	p, _ := se.u.Package(name)
	pv := &pkgVars{pkg: p, installed: s.NewVar()}
	for range p.Versions() {
		pv.vers = append(pv.vers, s.NewVar())
	}
	se.vars[name] = pv
	for _, x := range pv.vers {
		s.AddClause(sat.Lit(x).Neg(), sat.Lit(pv.installed))
	}
	se.emitPackageStructure(pv)
	return pv
}

// emitPackageStructure (re-)emits the widenable per-package constraints:
// y_p -> OR_v x_{p,v} and the at-most-one PB row over the versions. On
// re-emission (a delta grew pv.vers) the previous clause is detached and
// the previous row removed first; both handles are refreshed.
func (se *Session) emitPackageStructure(pv *pkgVars) {
	s := se.solver
	s.DetachClause(pv.orRef)
	or := make([]sat.Lit, 0, len(pv.vers)+1)
	or = append(or, sat.Lit(pv.installed).Neg())
	for _, x := range pv.vers {
		or = append(or, sat.Lit(x))
	}
	pv.orRef, _ = s.AddClauseRef(or...)

	s.RemovePB(pv.amoRef)
	pv.amoRef = sat.PBRef{}
	if len(pv.vers) > 1 {
		terms := make([]sat.PBTerm, len(pv.vers))
		for i, x := range pv.vers {
			terms[i] = sat.PBTerm{Lit: sat.Lit(x), Weight: 1}
		}
		pv.amoRef, _ = s.AddPBRef(terms, 1)
	}
}

// encodeVirtual allocates the "needed" variable and provider-selection
// clause for a virtual, when it has at least one in-scope provider.
func (se *Session) encodeVirtual(virt string) {
	cands := se.scopedCandidates(virt)
	if len(cands) == 0 {
		return
	}
	vv := &virtVars{needed: se.solver.NewVar()}
	se.virts[virt] = vv
	se.emitVirtualSelection(vv, cands)
}

// emitVirtualSelection (re-)emits y_virt -> OR providers, detaching the
// previous clause on widening.
func (se *Session) emitVirtualSelection(vv *virtVars, cands []repo.Candidate) {
	s := se.solver
	s.DetachClause(vv.selRef)
	sel := make([]sat.Lit, 0, len(cands)+1)
	sel = append(sel, sat.Lit(vv.needed).Neg())
	for _, c := range cands {
		sel = append(sel, sat.Lit(se.vars[c.Pkg].vers[c.Index]))
	}
	vv.selRef, _ = s.AddClauseRef(sel...)
}

// encodeVersionReqs lowers every dependency and conflict of version i of
// pv's package through addRequirement.
func (se *Session) encodeVersionReqs(pv *pkgVars, i int) {
	defs := pv.pkg.Versions()
	def := &defs[i]
	xi := sat.Lit(pv.vers[i])
	for j := range def.Deps {
		d := &def.Deps[j]
		se.addRequirement(xi, declID{pkg: pv.pkg.Name, ver: def.Version, idx: j}, d.When, d.Pkg, d.Range, false)
	}
	for j := range def.Conflicts {
		c := &def.Conflicts[j]
		se.addRequirement(xi, declID{pkg: pv.pkg.Name, ver: def.Version, conflict: true, idx: j}, c.When, c.Pkg, c.Range, true)
	}
}

// scopedCandidates enumerates the candidates for a requirement target that
// the session's skeleton actually carries variables for. Out-of-scope
// providers of a virtual are dropped: the reachability closure pulls in
// every provider of any dependency target, so a dropped provider can only
// belong to a conflict or trigger target — and those are vacuous for
// packages that can never be installed.
func (se *Session) scopedCandidates(name string) []repo.Candidate {
	cands, ok := se.u.Candidates(name)
	if !ok {
		return nil
	}
	inScope := cands[:0:0]
	for _, c := range cands {
		if _, ok := se.vars[c.Pkg]; ok {
			inScope = append(inScope, c)
		}
	}
	return inScope
}

// supportLit returns the memoized support literal for "name@rng": a
// variable z with x_c -> z for every in-scope candidate c of name inside
// rng, so z is forced true exactly when some model selection matches the
// key (and is free — never forced — otherwise, keeping clauses guarded on
// z vacuous in models that avoid it). Condition triggers use z directly;
// conflict targets use !z (a spurious true assignment to an unforced z
// only prunes a branch the solver could take anyway, so projecting any
// model onto the package variables stays sound). ok is false when no
// candidate matches yet: the key is dormant and unregistered, and a later
// delta that makes it matchable re-runs the parked declaration, which
// re-requests the key. Widening a live key is purely additive — new
// support clauses for new candidates — so no clause refs are kept.
func (se *Session) supportLit(name string, rng version.Range) (sat.Lit, bool) {
	key := name + "@" + rng.String()
	if en, ok := se.sups[key]; ok {
		return en.lit, true
	}
	var support []sat.Lit
	for _, c := range se.scopedCandidates(name) {
		if rng.Satisfies(c.Matched) {
			support = append(support, sat.Lit(se.vars[c.Pkg].vers[c.Index]))
		}
	}
	if len(support) == 0 {
		return 0, false
	}
	z := sat.Lit(se.solver.NewAuxVar())
	en := &supEntry{name: name, rng: rng, lit: z, seen: make(map[sat.Lit]bool, len(support))}
	for _, x := range support {
		se.solver.AddClause(x.Neg(), z)
		en.seen[x] = true
	}
	se.sups[key] = en
	if se.full {
		se.supsByName[name] = append(se.supsByName[name], key)
	}
	return z, true
}

// defEntry returns the memoized requirement-key entry for "name@rng",
// registering it on first use. The entry carries no solver state of its
// own: each dependency on the key emits its requirement clause directly
// (candidates inlined — the propagation-cheapest form) and records its
// ref-tracked site under users, so a delta that widens the candidate set
// finds every affected clause by key and re-emits it.
func (se *Session) defEntry(name string, rng version.Range) *reqDef {
	key := name + "@" + rng.String()
	if de, ok := se.defs[key]; ok {
		return de
	}
	de := &reqDef{name: name, rng: rng}
	se.defs[key] = de
	se.defsByName[name] = append(se.defsByName[name], key)
	return de
}

// addPending parks a declaration that currently lowers to nothing emittable
// (dormant trigger, dead dependency target, vacuous conflict) under the
// name whose growth would change it. Extend re-runs parked declarations
// when that name is touched; request-scoped sessions never Extend, so they
// skip the bookkeeping.
func (se *Session) addPending(name string, site declSite) {
	if !se.full {
		return
	}
	se.pendingByName[name] = append(se.pendingByName[name], site)
}

// addRequirement emits the clauses for one dependency or conflict of the
// version literal xi, guarded by its condition: for a dependency,
// xi AND z -> OR {x_c : candidate c of target inside rng} (an empty
// candidate set makes xi unbuildable whenever the trigger holds); for a
// conflict, xi AND z -> !z_target. This is the one code path every
// declaration kind lowers through — concrete and virtual targets differ
// only in what Candidates enumerates — and the one Extend re-runs for
// parked, widened, or revived declarations, which is why it takes the
// declaration's stable identity rather than borrowing state from its
// caller.
func (se *Session) addRequirement(xi sat.Lit, id declID, when repo.Condition, target string, rng version.Range, conflict bool) {
	var z sat.Lit
	if !when.IsZero() {
		var live bool
		z, live = se.supportLit(when.Pkg, when.Range)
		if !live {
			// The trigger can never fire yet: dormant, parked under the
			// trigger's name.
			se.addPending(when.Pkg, declSite{id: id})
			return
		}
	}
	guard := func(lits ...sat.Lit) []sat.Lit {
		out := make([]sat.Lit, 0, len(lits)+3)
		out = append(out, xi.Neg())
		if z != 0 {
			out = append(out, z.Neg())
		}
		return append(out, lits...)
	}
	if conflict {
		zt, live := se.supportLit(target, rng)
		if !live {
			// Nothing matching can be installed: vacuous, parked under the
			// target's name.
			se.addPending(target, declSite{id: id})
			return
		}
		se.solver.AddClause(guard(zt.Neg())...)
		return
	}
	matching := se.matchingLits(target, rng)
	if len(matching) == 0 {
		// Dead target: xi is unbuildable (under the trigger) until a delta
		// grows the target; the pruning clause is parked with the
		// declaration so revival can detach it.
		ref, _ := se.solver.AddClauseRef(guard()...)
		se.addPending(target, declSite{id: id, ref: ref})
		return
	}
	ref, _ := se.solver.AddClauseRef(guard(matching...)...)
	if se.full {
		de := se.defEntry(target, rng)
		de.users = append(de.users, declSite{id: id, ref: ref})
	}
}

// activation returns the assumption literal enforcing one root constraint,
// allocating it and its clauses on first use. The clauses are permanent
// implications (a -> installed/needed, a -> one allowed candidate), vacuous
// while a is unassumed, so repeat requests for the same root reuse both the
// literal and any clauses the solver learnt about it. Roots resolve through
// the same candidate enumeration as every other requirement: a package root
// activates its own versions, a virtual root activates the providers whose
// provided version lies in the range.
func (se *Session) activation(r Root) sat.Lit {
	key := r.key()
	if el, ok := se.acts[key]; ok {
		se.actsLRU.MoveToFront(el)
		return el.Value.(*actEntry).lit
	}
	a := sat.Lit(se.solver.NewVar())
	if pv, ok := se.vars[r.Pkg]; ok && !r.Virtual {
		se.solver.AddClause(a.Neg(), sat.Lit(pv.installed))
	} else if vv, ok := se.virts[r.Pkg]; ok {
		se.solver.AddClause(a.Neg(), sat.Lit(vv.needed))
	}
	allowed := []sat.Lit{a.Neg()}
	cands, _ := rootCandidates(se.u, r) // unknown roots were rejected by reachable
	for _, c := range cands {
		if pv, ok := se.vars[c.Pkg]; ok {
			allowed = append(allowed, sat.Lit(pv.vers[c.Index]))
		}
	}
	// With no matching candidate this is the unit clause !a: the root is
	// permanently unsatisfiable, without poisoning the solver.
	se.solver.AddClause(allowed...)
	se.acts[key] = se.actsLRU.PushFront(&actEntry{key: key, target: r.Pkg, lit: a})
	return a
}

// evictActivations trims the activation memo to its capacity, skipping the
// pinned literals of the in-flight request. An evicted activation is fixed
// false, permanently deactivating its implication clauses; a later request
// for the same root spec simply allocates a fresh literal, so eviction
// trades a little re-encoding for a hard bound on per-spec solver growth.
func (se *Session) evictActivations(pinned map[sat.Lit]bool) {
	if se.actsMax < 0 {
		return
	}
	for el := se.actsLRU.Back(); el != nil && len(se.acts) > se.actsMax; {
		prev := el.Prev()
		ent := el.Value.(*actEntry)
		if !pinned[ent.lit] {
			se.solver.AddClause(ent.lit.Neg())
			se.actsLRU.Remove(el)
			delete(se.acts, ent.key)
		}
		el = prev
	}
}

// canonicalRootParts renders the roots in canonical form: Root.key()
// strings ("pkg@range", virtual-namespaced when explicit), sorted and
// deduplicated. Root order and duplicates never change the meaning of a
// request, so canonicalization maximizes cache hits and keeps assumption
// order deterministic.
func canonicalRootParts(roots []Root) []string {
	parts := make([]string, len(roots))
	for i, r := range roots {
		parts[i] = r.key()
	}
	sort.Strings(parts)
	out := parts[:0]
	for i, p := range parts {
		if i == 0 || p != parts[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// ShapeKey returns the canonical request-shape key for (objective, roots):
// the objective's Key plus the sorted, deduplicated root specs. Requests
// with equal shape keys are answer-identical against the same universe
// epoch — the invariant behind the Session's solution cache, exported so
// serving tiers can coalesce identical in-flight requests onto one solve.
// A nil objective selects DefaultObjective, mirroring Resolve.
func ShapeKey(obj Objective, roots []Root) string {
	if obj == nil {
		obj = DefaultObjective
	}
	return shapeKey(obj, canonicalRootParts(roots))
}

// shapeKey joins an objective identity with already-canonicalized root
// parts; Session.Resolve uses it directly to avoid re-canonicalizing.
func shapeKey(obj Objective, parts []string) string {
	return obj.Key() + "\x00" + strings.Join(parts, "\x1f")
}

// Resolve answers one concretization request on the warm path. The result
// contract is identical to Concretize: optimal resolution under the
// request's objective, a *UnsatError, or a wrapped ErrBudget, with
// Stats.Optimal == false when the conflict budget expired after a model
// was found. Stats.SolutionCacheHit marks answers served from the solution
// cache, Stats.BoundMemoHit solves that reused a shape's banked bound, and
// Stats.Epoch the universe epoch the answer was produced at. The returned
// Picks map is owned by the caller.
//
// Canceling ctx (or passing one past its deadline) interrupts an in-flight
// solve promptly — the context is checked between branch-and-bound rounds
// and mapped onto the solver's asynchronous stop flag within rounds — and
// returns an error matching ctx's cause (context.Canceled or
// context.DeadlineExceeded). A canceled request never poisons the Session:
// solver state stays consistent and the next Resolve proceeds normally.
//
// goarxivlint:blocking
func (se *Session) Resolve(ctx context.Context, roots []Root, opts Options) (*Resolution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(roots) == 0 {
		return &Resolution{Picks: map[string]version.Version{}, Stats: Stats{Optimal: true}}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledError(err)
	}
	parts := canonicalRootParts(roots)
	obj := opts.Objective
	if obj == nil {
		obj = DefaultObjective
	}
	// The request-shape key: objective semantics plus canonical roots. It
	// keys the bound memo and the solution cache alike; epochs never enter
	// the key — Extend's delta-scoped invalidation drops exactly the
	// entries a delta could change, so surviving entries stay valid across
	// universe growth.
	shapeKey := shapeKey(obj, parts)
	if res, err, ok := se.cacheGet(shapeKey, roots); ok {
		return res, err
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	// Re-check under the solver lock: another goroutine may have just
	// resolved and cached the same request — and the wait for the lock may
	// have outlived the caller's patience.
	if err := ctx.Err(); err != nil {
		return nil, canceledError(err)
	}
	if res, err, ok := se.cacheGet(shapeKey, roots); ok {
		return res, err
	}
	res, err := se.solveLocked(ctx, roots, parts, shapeKey, obj, opts)
	se.cachePut(shapeKey, res, err)
	return res, err
}

// solveLocked runs branch-and-bound for one request. Callers hold se.mu.
//
// goarxivlint:blocking
func (se *Session) solveLocked(ctx context.Context, roots []Root, parts []string, shapeKey string, obj Objective, opts Options) (*Resolution, error) {
	// The bound memo remembers, per request shape, everything a repeat
	// solve can reuse: the reachability order, the lowered objective
	// terms, and the proven lower bound on the optimal cost. All three
	// stay valid for the session's lifetime — the universe is immutable,
	// the objective is a pure function of (universe, order, roots), and a
	// bound proven under the request's activation assumptions is a fact
	// about the formula, which later requests only extend with learnt
	// clauses (consequences, never new constraints on this shape).
	memo, _ := se.bounds.get(shapeKey)
	memoHit := memo != nil
	var order []string
	var reach map[string]bool
	var objTerms []sat.PBTerm
	var total int64
	if memo != nil {
		order, objTerms, total = memo.order, memo.terms, memo.total
	} else {
		var err error
		order, reach, err = reachable(se.u, roots)
		if err != nil {
			return nil, err
		}
		// First visit of this shape since construction or the last
		// touching delta: a lazy session encodes whatever the closure
		// reaches that isn't materialized yet. A bound-memo hit implies
		// the shape's whole closure already materialized (entries fall
		// whenever a delta touches their reach set), so the warm path
		// skips even the membership scan.
		if se.lazy {
			if err := se.materializeLocked(order, roots); err != nil {
				return nil, err
			}
		}
	}

	// Map context cancellation onto the solver's asynchronous interrupt so
	// a solve stops mid-search, not just between rounds. The watcher is
	// torn down — and the sticky interrupt flag cleared — before the solver
	// lock is released, so a canceled request can never leak a stop signal
	// into the next one.
	if ctx.Done() != nil {
		watcherStop := make(chan struct{})
		var watcher sync.WaitGroup
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				se.solver.Interrupt()
			case <-watcherStop:
			}
		}()
		defer func() {
			close(watcherStop)
			watcher.Wait()
			se.solver.ClearInterrupt()
		}()
	}

	// Activation assumptions in canonical order (deduplicated roots map to
	// one literal each). The lookup maps and the assumption slice are
	// session-owned scratch: a warm request allocates none of them.
	byPart := se.byPartBuf
	clear(byPart)
	for _, r := range roots {
		byPart[r.key()] = r
	}
	pinned := se.pinnedBuf
	clear(pinned)
	assumps := se.assumpsBuf[:0]
	for _, part := range parts {
		a := se.activation(byPart[part])
		assumps = append(assumps, a)
		pinned[a] = true
	}
	nBase := len(assumps)
	se.assumpsBuf = assumps // retain the (possibly regrown) scratch array
	se.evictActivations(pinned)

	if memo == nil {
		var err error
		objTerms, total, err = se.objectiveTerms(obj, order, roots)
		if err != nil {
			return nil, err
		}
		memo = &boundEntry{order: order, reach: reach, terms: objTerms, total: total}
		se.bounds.put(shapeKey, memo)
		// First visit of this shape on a lazy session: seed saved phases
		// toward the greedy assignment so the descent's first incumbent
		// starts near the optimum. On the version-deep universes lazy
		// sessions exist for (SynthRegistry carries up to 100 versions per
		// package) this replaces a linear walk down hundreds of cost units
		// — each a full solver round — with a handful of rounds; phases
		// are pure heuristics, so seeding can never change the answer.
		// Eager sessions keep their organic phases: on small dense
		// universes the seed measurably degrades the warm steady state
		// (BenchmarkConcretizeVirtualDiamondWarm regressed >2x when seeded
		// — the one-time overwrite shifts the learnt-clause trajectory
		// into a worse attractor) while buying nothing, since their
		// version depth never produces the long descent walks the seed
		// shortcuts.
		if se.lazy {
			se.seedPhases(order, roots)
		}
	}

	s := se.solver
	stats := Stats{Packages: len(order), Epoch: se.epoch, BoundMemoHit: memoHit}
	conflicts0, decisions0, props0 := s.Conflicts, s.Decisions, s.Propagations
	if opts.MaxConflicts > 0 {
		s.MaxConflicts = conflicts0 + opts.MaxConflicts
	} else {
		s.MaxConflicts = 0
	}

	var best map[string]version.Version
	var bestCost int64
	var guard sat.Lit
	var bound sat.PBRef // live guarded bound constraint (zero: none)
	var boundAt int64   // target the live constraint enforces under the guard
	// Retire the active bound guard before every exit: the guard is fixed
	// false and its PB constraint is dropped from the propagation
	// structures, so superseded bounds from this request can never slow
	// down or misprioritize future requests (and solver memory for bound
	// constraints stays constant across the session's lifetime).
	retire := func() {
		if guard != 0 {
			s.RetireGuard(guard)
			guard = 0
			bound = sat.PBRef{}
		}
	}
	defer retire()

	// Objective descent between the proven lower bound and the incumbent.
	// lo tracks the proven lower bound on the optimal cost (an UNSAT
	// answer under a guard at target proves optimum > target); it starts
	// from the memoized bound of earlier requests for the same shape, and
	// whatever this request proves is banked for the next one. Over-eager
	// targets cost at most extra UNSAT rounds and can never change the
	// returned answer.
	cfg := s.Config()
	warmBound := memo.proven // a previous request already proved a bound
	lo := memo.lo            // optimal cost is known to be >= lo
	proved := false          // this request completed a proof round (an
	// UNSAT refutation, or optimality itself) — only then is the bank
	// updated, so a canceled first visit can't masquerade as a warm shape
	defer func() {
		if proved {
			memo.proven = true
			if lo > memo.lo {
				memo.lo = lo
			}
		}
	}()

	finish := func(optimal bool) (*Resolution, error) {
		if err := verify(se.u, roots, best); err != nil {
			return nil, err
		}
		if optimal {
			lo, proved = bestCost, true // no model costs less than the answer
		}
		stats.Cost = bestCost
		stats.Optimal = optimal
		stats.Variables = s.NumVars()
		stats.Conflicts = s.Conflicts - conflicts0
		stats.Decisions = s.Decisions - decisions0
		stats.Propagations = s.Propagations - props0
		return &Resolution{Picks: best, Stats: stats}, nil
	}

	for {
		// A cancellation between rounds is cheaper to honor here than via
		// the interrupt round-trip.
		if err := ctx.Err(); err != nil {
			return nil, canceledError(err)
		}
		st := s.SolveAssuming(assumps)
		stats.SolveCalls++
		switch st {
		case sat.Canceled:
			// The abandoned search's saved phases would pin the next
			// request inside the subspace this one was exploring (for an
			// interrupted refutation, a subspace the solver would have to
			// finish refuting before escaping). Reset them; learnt clauses
			// and activities stay.
			s.ResetPhases()
			cause := ctx.Err()
			if cause == nil {
				cause = context.Canceled
			}
			return nil, canceledError(cause)
		case sat.Unknown:
			// Budget expiry abandons the search mid-flight exactly like a
			// cancellation does, and leaves the same phase-saving trap
			// (see the sat.Canceled case); reset phases here too.
			s.ResetPhases()
			if best == nil {
				return nil, fmt.Errorf("%w after %d conflicts", ErrBudget, s.Conflicts-conflicts0)
			}
			return finish(false)
		case sat.Unsat:
			if best == nil {
				return nil, unsatError(roots)
			}
			// UNSAT under the guard proves optimum > target.
			lo, proved = boundAt+1, true
			if lo >= bestCost {
				return finish(true)
			}
		case sat.Sat:
			picks, err := se.decode(order)
			if err != nil {
				return nil, err
			}
			best, bestCost = picks, se.cost(objTerms)
			stats.Improvements++
			if bestCost <= lo {
				return finish(true)
			}
		}
		// Pick the next bound target in [lo, bestCost-1]. Binary descent
		// probes the midpoint — far from the incumbent, so a warm solver
		// whose saved phases sit on a bad model is propagated straight out
		// of that neighborhood instead of refuting it clause by clause.
		// Linear descent probes just below the incumbent — fewest rounds
		// when the first model is already optimal, which is the norm for a
		// fresh (cold) solver. Adaptive picks linear until a request shape
		// has a proven bound banked, then switches to binary.
		var target int64
		if cfg.Descent == sat.DescentBinary || (cfg.Descent == sat.DescentAdaptive && warmBound) {
			target = lo + (bestCost-1-lo)/2
		} else {
			target = bestCost - cfg.DescentStep
			if target < lo {
				target = lo
			}
		}
		// Install or strengthen the bound: guard -> objective <= target,
		// encoded as objective + total*guard <= total + target, which is
		// vacuous while the guard is free, so the solver stays reusable.
		// A target below the live constraint's is a pure strengthening and
		// is applied in place — no new variable, constraint, or copy of
		// the objective terms. Only a relaxation (an UNSAT round pushed lo
		// above a still-improvable incumbent's probe) retires the guard
		// and installs a fresh one.
		if bound.Valid() && target < boundAt {
			if !s.TightenPB(bound, total+target) {
				// Unreachable: the guard is unassigned at the top level, so
				// the constraint keeps slack >= total - sum(level-0-true
				// objective weights) >= target >= 0.
				return nil, fmt.Errorf("concretize: internal error: bound %d conflicts at top level", target)
			}
		} else {
			retire()
			if !s.Okay() {
				return finish(true)
			}
			g := sat.Lit(s.NewVar())
			terms := append(append(se.termsBuf[:0], objTerms...), sat.PBTerm{Lit: g, Weight: total})
			se.termsBuf = terms[:0]
			var ok bool
			bound, ok = s.AddPBRef(terms, total+target)
			if !ok {
				// Unreachable in practice (the guarded constraint is
				// vacuous until assumed), kept as a safety net: tightening
				// to bestCost-1 being impossible at the top level proves
				// best optimal; a wider probe proves nothing.
				if target == bestCost-1 {
					return finish(true)
				}
				return nil, fmt.Errorf("concretize: internal error: guarded bound %d rejected at top level", target)
			}
			guard = g
		}
		boundAt = target
		assumps = append(assumps[:nBase], guard)
		se.assumpsBuf = assumps
	}
}

// seedPhases seeds the solver's saved phases with the greedy
// newest-version assignment over the request's reachable packages:
// nothing installed until propagation demands it, and the newest version
// tried first for whatever is. Objectives price versions newest-first
// (index 0 cheapest under NewestVersion, and MinimalChange's tiebreak),
// so the first model the search finds lands at or near the optimum
// instead of wherever default polarities happen to settle — on
// version-deep universes (SynthRegistry carries 100 versions per package)
// the difference between a handful of descent rounds and hundreds. Phase
// saving overwrites the seed as soon as the search assigns a variable,
// and phases steer only which model is found first, never what is
// satisfiable, so seeding cannot change any answer.
// Root packages get a sharper seed: the newest version *their root range
// allows*. The universal newest-first seed would walk a capped root (say
// "pkg@:50" over 100 versions) down through ~lag conflicts before finding
// its first admissible version — and the activity those conflicts bump
// scrambles the branching order for everything below the root, which is
// how a first incumbent ends up far from greedy.
func (se *Session) seedPhases(order []string, roots []Root) {
	s := se.solver
	for _, name := range order {
		pv := se.vars[name]
		s.SetPhase(pv.installed, false)
		for i, x := range pv.vers {
			s.SetPhase(x, i == 0)
		}
	}
	for _, r := range roots {
		cands, ok := rootCandidates(se.u, r)
		if !ok {
			continue
		}
		for ci := 0; ci < len(cands); {
			cj := ci
			for cj < len(cands) && cands[cj].Pkg == cands[ci].Pkg {
				cj++
			}
			// Candidates are newest-first within a package: cands[ci] is
			// the best in-range pick for this package.
			if pv, ok := se.vars[cands[ci].Pkg]; ok {
				for i, x := range pv.vers {
					s.SetPhase(x, i == cands[ci].Index)
				}
			}
			ci = cj
		}
	}
}

// objectiveTerms lowers an Objective's package costs into weighted PB
// terms over the session's solver variables, returning the terms and
// their total weight (the k of the guarded bound constraint). Install
// costs weight y_p, Omit costs weight !y_p, and version costs weight
// x_{p,v}; zero costs produce no term.
//
// Skeleton variables outside the reachable set carry no weight and are
// ignored by decode, so their (arbitrary) assignments never affect the
// request's cost or picks: any model restricted to the reachable set
// extends to a full model by leaving everything else uninstalled.
func (se *Session) objectiveTerms(obj Objective, order []string, roots []Root) ([]sat.PBTerm, int64, error) {
	costs, err := obj.Costs(ObjectiveRequest{Universe: se.u, Order: order, Roots: roots})
	if err != nil {
		return nil, 0, fmt.Errorf("concretize: objective %q: %w", obj.Key(), err)
	}
	inOrder := make(map[string]bool, len(order))
	for _, name := range order {
		inOrder[name] = true
	}
	for name := range costs {
		if !inOrder[name] {
			return nil, 0, fmt.Errorf("concretize: objective %q prices package %q outside the request's reachable set", obj.Key(), name)
		}
	}
	var terms []sat.PBTerm
	var total int64
	for _, name := range order {
		pc, ok := costs[name]
		if !ok {
			continue
		}
		pv := se.vars[name]
		if pc.Install < 0 || pc.Omit < 0 {
			return nil, 0, fmt.Errorf("concretize: objective %q: negative cost for %q", obj.Key(), name)
		}
		if pc.Version != nil && len(pc.Version) != len(pv.vers) {
			return nil, 0, fmt.Errorf("concretize: objective %q: %d version costs for %q (%d versions)",
				obj.Key(), len(pc.Version), name, len(pv.vers))
		}
		if pc.Install > 0 {
			terms = append(terms, sat.PBTerm{Lit: sat.Lit(pv.installed), Weight: pc.Install})
			total += pc.Install
		}
		if pc.Omit > 0 {
			terms = append(terms, sat.PBTerm{Lit: sat.Lit(pv.installed).Neg(), Weight: pc.Omit})
			total += pc.Omit
		}
		for i, w := range pc.Version {
			if w < 0 {
				return nil, 0, fmt.Errorf("concretize: objective %q: negative cost for %q", obj.Key(), name)
			}
			if w > 0 {
				terms = append(terms, sat.PBTerm{Lit: sat.Lit(pv.vers[i]), Weight: w})
				total += w
			}
		}
	}
	return terms, total, nil
}

// cost evaluates the objective under the solver's current model. Negative
// literals (Omit terms) count when their variable is false.
func (se *Session) cost(terms []sat.PBTerm) int64 {
	var c int64
	for _, t := range terms {
		v := se.solver.ValueOf(t.Lit.Var())
		if t.Lit < 0 {
			v = !v
		}
		if v {
			c += t.Weight
		}
	}
	return c
}

// decode reads the current model into a picks map, restricted to the
// request's reachable packages.
func (se *Session) decode(order []string) (map[string]version.Version, error) {
	picks := make(map[string]version.Version)
	for _, name := range order {
		pv := se.vars[name]
		if !se.solver.ValueOf(pv.installed) {
			continue
		}
		chosen := -1
		for i, x := range pv.vers {
			if se.solver.ValueOf(x) {
				if chosen >= 0 {
					return nil, fmt.Errorf("concretize: internal error: %s selects two versions", name)
				}
				chosen = i
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("concretize: internal error: %s installed without a version", name)
		}
		picks[name] = pv.pkg.Versions()[chosen].Version
	}
	return picks, nil
}

// cacheGet looks up a memoized answer. It returns copies the caller owns.
//
// Lock-interleaving note (audited against Extend's delta-scoped
// invalidation): the entry is read under the RLock, the lock released, and
// re-taken exclusively only to promote. An Extend can therefore sweep the
// entry between the peek and the return — but the peek itself is atomic
// with respect to the sweep (both hold cacheMu), so a request observes the
// entry either wholly before the sweep or not at all. A pre-delta answer
// is thus only ever served to a Resolve that overlaps the Extend in time —
// a linearizable ordering (the resolve "happened before" the apply) — and
// its Stats.Epoch reports the pre-delta epoch it was solved at. A Resolve
// whose cacheGet starts after Extend returns can never see the swept
// entry: the sweep completes under cacheMu before Extend's session lock is
// released, so the happens-before edge is the lock itself. touch() cannot
// resurrect a swept entry (it promotes only keys still present). Pinned by
// TestExtendVsCacheGetInterleaving.
func (se *Session) cacheGet(key string, roots []Root) (*Resolution, error, bool) {
	if se.cache == nil {
		return nil, nil, false
	}
	se.cacheMu.RLock()
	ent, ok := se.cache.peek(key)
	se.cacheMu.RUnlock()
	if !ok {
		return nil, nil, false
	}
	// Promote under the write lock (list mutation is not read-safe).
	se.cacheMu.Lock()
	se.cache.touch(key)
	se.cacheMu.Unlock()
	if ent.unsat {
		return nil, unsatError(roots), true
	}
	picks := make(map[string]version.Version, len(ent.picks))
	for p, v := range ent.picks {
		picks[p] = v
	}
	stats := ent.stats
	stats.SolutionCacheHit = true
	return &Resolution{Picks: picks, Stats: stats}, nil, true
}

// cachePut memoizes definitive answers: optimal resolutions and proven
// unsatisfiability. Budget-limited (non-optimal or Unknown) outcomes and
// request errors are never cached. The entry inherits the shape's
// reachable set from the bound memo so Extend can invalidate it precisely;
// callers hold se.mu, which guards the bound memo.
func (se *Session) cachePut(key string, res *Resolution, err error) {
	if se.cache == nil {
		return
	}
	memo, ok := se.bounds.peek(key)
	if !ok {
		// Without a recorded reach set the entry could never be
		// invalidated; skip caching (solveLocked banks the memo before
		// solving, so this is a can't-happen safety net).
		return
	}
	ent := cacheEntry{reach: memo.reach}
	switch {
	case err == nil && res.Stats.Optimal:
		picks := make(map[string]version.Version, len(res.Picks))
		for p, v := range res.Picks {
			picks[p] = v
		}
		ent.picks, ent.stats = picks, res.Stats
	case err != nil && errors.Is(err, ErrUnsatisfiable):
		ent.unsat = true
	default:
		return
	}
	se.cacheMu.Lock()
	se.cache.put(key, ent)
	se.cacheMu.Unlock()
}

// boundEntry memoizes the solve facts one request shape (objective key +
// canonical roots) carries for the session's lifetime: the reachability
// order, the lowered objective terms with their total weight, and the
// proven lower bound on the optimal cost. The terms and order slices are
// shared across requests and must never be mutated; the descent loop
// copies terms into scratch before appending its guard.
type boundEntry struct {
	lo     int64 // optimal cost is proven >= lo for this shape
	proven bool  // a completed proof backs lo (distinguishes a banked
	// optimum of zero from "never proved anything")
	order []string
	reach map[string]bool // names whose growth could change this shape's
	// answer (reachable packages, dependency-target names, root names);
	// Extend drops the entry when a delta touches any of them
	terms []sat.PBTerm
	total int64
}

// cacheEntry is one memoized answer: either an optimal resolution or a
// proof of unsatisfiability. reach mirrors the shape's bound-memo reach
// set (shared map) for delta-scoped invalidation.
type cacheEntry struct {
	picks map[string]version.Version
	stats Stats
	reach map[string]bool
	unsat bool
}

// The memo layers — the solution cache (lru[cacheEntry], callers hold
// cacheMu) and the bound memo (lru[*boundEntry], callers hold mu; unlike
// the solution cache it memoizes facts about the *search*, bounds and
// lowered terms rather than answers, so it stays useful even when the
// solution cache is disabled) — share one LRU core. The activation memo
// keeps its own list: its eviction must skip the in-flight request's
// pinned literals and fix evictees false in the solver.

// lru is a plain least-recently-used map. Callers synchronize.
type lru[V any] struct {
	max int // <0: unbounded
	ll  *list.List
	m   map[string]*list.Element
}

type lruItem[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lru[V] {
	return &lru[V]{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lru[V]) len() int { return len(c.m) }

// peek returns the value without promoting it.
func (c *lru[V]) peek(key string) (V, bool) {
	if el, ok := c.m[key]; ok {
		return el.Value.(*lruItem[V]).val, true
	}
	var zero V
	return zero, false
}

// touch promotes the entry to most-recently-used if still present.
func (c *lru[V]) touch(key string) {
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
	}
}

// get is peek + touch.
func (c *lru[V]) get(key string) (V, bool) {
	v, ok := c.peek(key)
	if ok {
		c.touch(key)
	}
	return v, ok
}

// put inserts or replaces the value, promotes it, and evicts the
// least-recently-used entries beyond capacity.
func (c *lru[V]) put(key string, val V) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruItem[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruItem[V]{key: key, val: val})
	if c.max >= 0 {
		for len(c.m) > c.max {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.m, oldest.Value.(*lruItem[V]).key)
		}
	}
}

// sweep removes every entry drop reports true for. Extend uses it for
// delta-scoped invalidation of the bound memo and the solution cache.
func (c *lru[V]) sweep(drop func(key string, val V) bool) {
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		it := el.Value.(*lruItem[V])
		if drop(it.key, it.val) {
			c.ll.Remove(el)
			delete(c.m, it.key)
		}
		el = next
	}
}
