package concretize

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/sat"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// DefaultSessionCacheSize is the solution-cache capacity used when
// SessionOptions.CacheSize is zero.
const DefaultSessionCacheSize = 1024

// DefaultSessionMaxActivations is the activation-literal capacity used
// when SessionOptions.MaxActivations is zero.
const DefaultSessionMaxActivations = 4096

// SessionOptions tunes a Session.
type SessionOptions struct {
	// CacheSize bounds the number of memoized resolutions (LRU eviction).
	// Zero selects DefaultSessionCacheSize; a negative value disables the
	// cache entirely, so every request runs the solver.
	CacheSize int

	// MaxActivations bounds the number of memoized root-activation
	// literals (LRU eviction; evicted activations are fixed false in the
	// solver and re-allocated on demand, so diverse request streams cannot
	// grow solver variables without bound). Zero selects
	// DefaultSessionMaxActivations; a negative value means unbounded.
	MaxActivations int
}

// Session is a reusable concretization handle bound to one universe: the
// warm path of the resolver. Creating a Session encodes the CNF skeleton
// for the whole universe exactly once; each Resolve call then activates its
// roots through assumption literals and runs branch-and-bound on the shared
// solver, so learnt clauses, VSIDS activity, and saved phases accumulate
// across requests instead of being rebuilt and discarded per call. Optimal
// answers (and definitive unsatisfiability) are memoized in an LRU keyed by
// (universe fingerprint, canonicalized roots), so repeat requests are
// answered without touching the solver at all.
//
// A Session is safe for concurrent use: cache lookups take a read lock and
// solver access is serialized. The universe must not be mutated after
// NewSession.
type Session struct {
	u      *repo.Universe
	fpOnce sync.Once
	fp     string

	// mu serializes all solver access (the encoding, activation literals,
	// and the branch-and-bound loop all mutate solver state).
	mu      sync.Mutex
	solver  *sat.Solver
	vars    map[string]*pkgVars
	acts    map[string]*list.Element // canonical "pkg@range" -> activation entry
	actsLRU *list.List               // of *actEntry, most-recently-used first
	actsMax int

	cacheMu sync.RWMutex
	cache   *solutionCache // nil when disabled
}

// actEntry is one memoized root-activation literal.
type actEntry struct {
	key string
	lit sat.Lit
}

// NewSession encodes the universe's CNF skeleton and returns a warm handle
// for resolving requests against it.
func NewSession(u *repo.Universe, opts SessionOptions) *Session {
	return newSession(u, u.Names(), opts)
}

// newSession builds a session whose skeleton covers only the given
// packages (sorted). Concretize uses this to scope its one-shot session to
// the request's reachable set, so cold-path cost tracks the request, not
// the catalog.
func newSession(u *repo.Universe, names []string, opts SessionOptions) *Session {
	se := &Session{
		u:       u,
		solver:  sat.New(),
		vars:    make(map[string]*pkgVars),
		acts:    make(map[string]*list.Element),
		actsLRU: list.New(),
		actsMax: opts.MaxActivations,
	}
	if se.actsMax == 0 {
		se.actsMax = DefaultSessionMaxActivations
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultSessionCacheSize
	}
	if size > 0 {
		se.cache = newSolutionCache(size)
	}
	se.encodeSkeleton(names)
	return se
}

// Fingerprint returns the content hash of the bound universe (the universe
// half of every cache key). It is computed lazily on first use, so
// cache-disabled one-shot sessions never pay for it.
func (se *Session) Fingerprint() string {
	se.fpOnce.Do(func() { se.fp = se.u.Fingerprint() })
	return se.fp
}

// CacheLen returns the number of memoized resolutions currently held.
func (se *Session) CacheLen() int {
	if se.cache == nil {
		return 0
	}
	se.cacheMu.RLock()
	defer se.cacheMu.RUnlock()
	return se.cache.len()
}

// encodeSkeleton lowers the given packages into the solver once, in sorted
// package order: installed/version variables, selection structure,
// exactly-one constraints, dependency implications, and conflicts. Roots
// are deliberately absent — they arrive per request as assumption literals
// — so the skeleton with no assumptions is trivially satisfiable (install
// nothing) and the solver can never be poisoned into a top-level conflict.
// The name set must be dependency-closed (all of the universe, or a
// reachability closure): a dependency on a package outside it is encoded
// as unbuildable, and a conflict with one is vacuous.
func (se *Session) encodeSkeleton(names []string) {
	s := se.solver
	for _, name := range names {
		p, _ := se.u.Package(name)
		pv := &pkgVars{pkg: p, installed: s.NewVar()}
		for range p.Versions() {
			pv.vers = append(pv.vers, s.NewVar())
		}
		se.vars[name] = pv

		// x_{p,v} -> y_p, and y_p -> OR_v x_{p,v}.
		orClause := []sat.Lit{sat.Lit(pv.installed).Neg()}
		for _, x := range pv.vers {
			s.AddClause(sat.Lit(x).Neg(), sat.Lit(pv.installed))
			orClause = append(orClause, sat.Lit(x))
		}
		s.AddClause(orClause...)
		// at-most-one version.
		if len(pv.vers) > 1 {
			terms := make([]sat.PBTerm, len(pv.vers))
			for i, x := range pv.vers {
				terms[i] = sat.PBTerm{Lit: sat.Lit(x), Weight: 1}
			}
			s.AddPB(terms, 1)
		}
	}

	// Dependencies and conflicts per (package, version).
	for _, name := range names {
		pv := se.vars[name]
		for i, def := range pv.pkg.Versions() {
			xi := sat.Lit(pv.vers[i])
			for _, d := range def.Deps {
				qv, ok := se.vars[d.Pkg]
				if !ok {
					// Unknown dependency package: this version is unbuildable.
					s.AddClause(xi.Neg())
					continue
				}
				impl := []sat.Lit{xi.Neg()}
				for j, qdef := range qv.pkg.Versions() {
					if d.Range.Satisfies(qdef.Version) {
						impl = append(impl, sat.Lit(qv.vers[j]))
					}
				}
				s.AddClause(impl...) // empty disjunction forbids x_{p,v}
			}
			for _, c := range def.Conflicts {
				qv, ok := se.vars[c.Pkg]
				if !ok {
					continue // conflict with a package that can never be installed
				}
				for j, qdef := range qv.pkg.Versions() {
					if c.Range.Satisfies(qdef.Version) {
						s.AddClause(xi.Neg(), sat.Lit(qv.vers[j]).Neg())
					}
				}
			}
		}
	}
}

// activation returns the assumption literal enforcing one root constraint,
// allocating it and its clauses on first use. The clauses are permanent
// implications (a -> installed, a -> one allowed version), vacuous while a
// is unassumed, so repeat requests for the same root reuse both the
// literal and any clauses the solver learnt about it.
func (se *Session) activation(r Root) sat.Lit {
	key := r.Pkg + "@" + r.Range.String()
	if el, ok := se.acts[key]; ok {
		se.actsLRU.MoveToFront(el)
		return el.Value.(*actEntry).lit
	}
	pv := se.vars[r.Pkg]
	a := sat.Lit(se.solver.NewVar())
	se.solver.AddClause(a.Neg(), sat.Lit(pv.installed))
	allowed := []sat.Lit{a.Neg()}
	for i, def := range pv.pkg.Versions() {
		if r.Range.Satisfies(def.Version) {
			allowed = append(allowed, sat.Lit(pv.vers[i]))
		}
	}
	// With no matching version this is the unit clause !a: the root is
	// permanently unsatisfiable, without poisoning the solver.
	se.solver.AddClause(allowed...)
	se.acts[key] = se.actsLRU.PushFront(&actEntry{key: key, lit: a})
	return a
}

// evictActivations trims the activation memo to its capacity, skipping the
// pinned literals of the in-flight request. An evicted activation is fixed
// false, permanently deactivating its implication clauses; a later request
// for the same root spec simply allocates a fresh literal, so eviction
// trades a little re-encoding for a hard bound on per-spec solver growth.
func (se *Session) evictActivations(pinned map[sat.Lit]bool) {
	if se.actsMax < 0 {
		return
	}
	for el := se.actsLRU.Back(); el != nil && len(se.acts) > se.actsMax; {
		prev := el.Prev()
		ent := el.Value.(*actEntry)
		if !pinned[ent.lit] {
			se.solver.AddClause(ent.lit.Neg())
			se.actsLRU.Remove(el)
			delete(se.acts, ent.key)
		}
		el = prev
	}
}

// canonicalRootParts renders the roots in canonical form: "pkg@range"
// strings, sorted and deduplicated. Root order and duplicates never change
// the meaning of a request, so canonicalization maximizes cache hits and
// keeps assumption order deterministic.
func canonicalRootParts(roots []Root) []string {
	parts := make([]string, len(roots))
	for i, r := range roots {
		parts[i] = r.Pkg + "@" + r.Range.String()
	}
	sort.Strings(parts)
	out := parts[:0]
	for i, p := range parts {
		if i == 0 || p != parts[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// Resolve answers one concretization request on the warm path. The result
// contract is identical to Concretize: optimal resolution, wrapped
// ErrUnsatisfiable, or wrapped ErrBudget, with Stats.Optimal == false when
// the conflict budget expired after a model was found. Stats.CacheHit marks
// answers served from the solution cache. The returned Picks map is owned
// by the caller.
func (se *Session) Resolve(roots []Root, opts Options) (*Resolution, error) {
	if len(roots) == 0 {
		return &Resolution{Picks: map[string]version.Version{}, Stats: Stats{Optimal: true}}, nil
	}
	parts := canonicalRootParts(roots)
	var key string
	if se.cache != nil {
		key = se.Fingerprint() + "\x00" + strings.Join(parts, "\x1f")
	}
	if res, err, ok := se.cacheGet(key, roots); ok {
		return res, err
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	// Re-check under the solver lock: another goroutine may have just
	// resolved and cached the same request.
	if res, err, ok := se.cacheGet(key, roots); ok {
		return res, err
	}
	res, err := se.solveLocked(roots, parts, opts)
	se.cachePut(key, res, err)
	return res, err
}

// solveLocked runs branch-and-bound for one request. Callers hold se.mu.
func (se *Session) solveLocked(roots []Root, parts []string, opts Options) (*Resolution, error) {
	order, err := reachable(se.u, roots)
	if err != nil {
		return nil, err
	}

	// Activation assumptions in canonical order (deduplicated roots map to
	// one literal each).
	byPart := make(map[string]Root, len(roots))
	for _, r := range roots {
		byPart[r.Pkg+"@"+r.Range.String()] = r
	}
	base := make([]sat.Lit, 0, len(parts))
	pinned := make(map[sat.Lit]bool, len(parts))
	for _, part := range parts {
		a := se.activation(byPart[part])
		base = append(base, a)
		pinned[a] = true
	}
	se.evictActivations(pinned)

	objTerms, total := se.objective(order, roots)

	s := se.solver
	stats := Stats{Packages: len(order)}
	conflicts0, decisions0, props0 := s.Conflicts, s.Decisions, s.Propagations
	if opts.MaxConflicts > 0 {
		s.MaxConflicts = conflicts0 + opts.MaxConflicts
	} else {
		s.MaxConflicts = 0
	}

	var best map[string]version.Version
	var bestCost int64
	var guard sat.Lit
	// Retire the active bound guard before every exit: the guard is fixed
	// false and its PB constraint is dropped from the propagation
	// structures, so superseded bounds from this request can never slow
	// down or misprioritize future requests (and solver memory for bound
	// constraints stays constant across the session's lifetime).
	retire := func() {
		if guard != 0 {
			s.RetireGuard(guard)
			guard = 0
		}
	}
	defer retire()

	assumps := append(make([]sat.Lit, 0, len(base)+1), base...)

	finish := func(optimal bool) (*Resolution, error) {
		if err := verify(se.u, roots, best); err != nil {
			return nil, err
		}
		stats.Cost = bestCost
		stats.Optimal = optimal
		stats.Variables = s.NumVars()
		stats.Conflicts = s.Conflicts - conflicts0
		stats.Decisions = s.Decisions - decisions0
		stats.Propagations = s.Propagations - props0
		return &Resolution{Picks: best, Stats: stats}, nil
	}

	for {
		st := s.SolveAssuming(assumps)
		stats.SolveCalls++
		switch st {
		case sat.Unknown:
			if best == nil {
				return nil, fmt.Errorf("%w after %d conflicts", ErrBudget, s.Conflicts-conflicts0)
			}
			return finish(false)
		case sat.Unsat:
			if best == nil {
				return nil, fmt.Errorf("%w: roots %s", ErrUnsatisfiable, rootsString(roots))
			}
			return finish(true)
		}
		picks, err := se.decode(order)
		if err != nil {
			return nil, err
		}
		best, bestCost = picks, se.cost(objTerms)
		stats.Improvements++
		if bestCost == 0 {
			return finish(true)
		}
		// Tighten: guard -> objective <= bestCost-1, then assume the guard.
		// Encoded as objective + (total-bestCost+1)*guard <= total, which is
		// vacuous while the guard is free, so the solver stays reusable. The
		// previous round's guard is retired first.
		retire()
		if !s.Okay() {
			return finish(true)
		}
		g := sat.Lit(s.NewVar())
		terms := make([]sat.PBTerm, len(objTerms), len(objTerms)+1)
		copy(terms, objTerms)
		terms = append(terms, sat.PBTerm{Lit: g, Weight: total - bestCost + 1})
		if !s.AddPB(terms, total) {
			// Tightening is impossible at the top level: best is optimal.
			return finish(true)
		}
		guard = g
		assumps = append(assumps[:len(base)], g)
	}
}

// objective returns the weighted PB terms of the optimization objective
// over the request's reachable packages and their total weight. The
// weights are layered lexicographically, mirroring Spack's root-first
// optimization order:
//
//  1. root version-lag: one step away from a root's newest version weighs
//     more than every dependency downgrade and install combined;
//  2. dependency version-lag: one step weighs more than installing every
//     reachable package, so the optimizer never downgrades a version just
//     to drop an optional package;
//  3. installed-package count (1 per y_p) breaks remaining ties in favor
//     of smaller installs.
//
// Skeleton variables outside the reachable set carry no weight and are
// ignored by decode, so their (arbitrary) assignments never affect the
// request's cost or picks: any model restricted to the reachable set
// extends to a full model by leaving everything else uninstalled.
func (se *Session) objective(order []string, roots []Root) ([]sat.PBTerm, int64) {
	isRoot := map[string]bool{}
	for _, r := range roots {
		isRoot[r.Pkg] = true
	}
	depStep := int64(len(order)) + 1
	maxDepSum := int64(0)
	for _, name := range order {
		if !isRoot[name] {
			maxDepSum += depStep * int64(len(se.vars[name].vers)-1)
		}
	}
	rootStep := int64(len(order)) + maxDepSum + 1
	var terms []sat.PBTerm
	var total int64
	for _, name := range order {
		pv := se.vars[name]
		step := depStep
		if isRoot[name] {
			step = rootStep
		}
		terms = append(terms, sat.PBTerm{Lit: sat.Lit(pv.installed), Weight: 1})
		total++
		for i := 1; i < len(pv.vers); i++ {
			terms = append(terms, sat.PBTerm{Lit: sat.Lit(pv.vers[i]), Weight: int64(i) * step})
			total += int64(i) * step
		}
	}
	return terms, total
}

// cost evaluates the objective under the solver's current model.
func (se *Session) cost(terms []sat.PBTerm) int64 {
	var c int64
	for _, t := range terms {
		if se.solver.ValueOf(t.Lit.Var()) {
			c += t.Weight
		}
	}
	return c
}

// decode reads the current model into a picks map, restricted to the
// request's reachable packages.
func (se *Session) decode(order []string) (map[string]version.Version, error) {
	picks := make(map[string]version.Version)
	for _, name := range order {
		pv := se.vars[name]
		if !se.solver.ValueOf(pv.installed) {
			continue
		}
		chosen := -1
		for i, x := range pv.vers {
			if se.solver.ValueOf(x) {
				if chosen >= 0 {
					return nil, fmt.Errorf("concretize: internal error: %s selects two versions", name)
				}
				chosen = i
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("concretize: internal error: %s installed without a version", name)
		}
		picks[name] = pv.pkg.Versions()[chosen].Version
	}
	return picks, nil
}

// cacheGet looks up a memoized answer. It returns copies the caller owns.
func (se *Session) cacheGet(key string, roots []Root) (*Resolution, error, bool) {
	if se.cache == nil {
		return nil, nil, false
	}
	se.cacheMu.RLock()
	ent, ok := se.cache.peek(key)
	se.cacheMu.RUnlock()
	if !ok {
		return nil, nil, false
	}
	// Promote under the write lock (list mutation is not read-safe).
	se.cacheMu.Lock()
	se.cache.touch(key)
	se.cacheMu.Unlock()
	if ent.unsat {
		return nil, fmt.Errorf("%w: roots %s", ErrUnsatisfiable, rootsString(roots)), true
	}
	picks := make(map[string]version.Version, len(ent.picks))
	for p, v := range ent.picks {
		picks[p] = v
	}
	stats := ent.stats
	stats.CacheHit = true
	return &Resolution{Picks: picks, Stats: stats}, nil, true
}

// cachePut memoizes definitive answers: optimal resolutions and proven
// unsatisfiability. Budget-limited (non-optimal or Unknown) outcomes and
// request errors are never cached.
func (se *Session) cachePut(key string, res *Resolution, err error) {
	if se.cache == nil {
		return
	}
	ent := cacheEntry{}
	switch {
	case err == nil && res.Stats.Optimal:
		picks := make(map[string]version.Version, len(res.Picks))
		for p, v := range res.Picks {
			picks[p] = v
		}
		ent.picks, ent.stats = picks, res.Stats
	case err != nil && errors.Is(err, ErrUnsatisfiable):
		ent.unsat = true
	default:
		return
	}
	se.cacheMu.Lock()
	se.cache.put(key, ent)
	se.cacheMu.Unlock()
}

// cacheEntry is one memoized answer: either an optimal resolution or a
// proof of unsatisfiability.
type cacheEntry struct {
	picks map[string]version.Version
	stats Stats
	unsat bool
}

// solutionCache is a plain LRU over cache entries. Callers synchronize.
type solutionCache struct {
	max int
	ll  *list.List
	m   map[string]*list.Element
}

type lruItem struct {
	key string
	ent cacheEntry
}

func newSolutionCache(max int) *solutionCache {
	return &solutionCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *solutionCache) len() int { return len(c.m) }

// peek returns the entry without promoting it.
func (c *solutionCache) peek(key string) (cacheEntry, bool) {
	if el, ok := c.m[key]; ok {
		return el.Value.(*lruItem).ent, true
	}
	return cacheEntry{}, false
}

// touch promotes the entry to most-recently-used if still present.
func (c *solutionCache) touch(key string) {
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
	}
}

func (c *solutionCache) put(key string, ent cacheEntry) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruItem).ent = ent
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruItem{key: key, ent: ent})
	for len(c.m) > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruItem).key)
	}
}
