package concretize

import (
	"errors"
	"fmt"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/sat"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// Extend grows the session's encoded skeleton in place to absorb one
// append-only delta, instead of rebuilding the session: new packages and
// versions get fresh variables and clauses, widenable constraints touched
// by the delta (exactly-one rows, requirement-definition disjunctions,
// provider selections) are re-emitted through their handles, parked
// declarations whose targets the delta grew are revived, and only the
// solution-cache / bound-memo entries whose recorded reach set intersects
// the delta's touched names are invalidated. Activation literals for
// untouched roots — and everything the solver learnt about them — survive.
//
// The epoch contract: when the bound universe is at the session's epoch,
// Extend applies the delta to it (repo.Universe.Apply) and then extends
// the skeleton; when the universe is already exactly one epoch ahead — a
// sibling session sharing the universe applied this same delta first,
// which is how a portfolio broadcasts — Extend trusts the caller that d
// is that delta and only extends the skeleton. Any other epoch gap is an
// error: the universe changed behind the session's back.
//
// A validation failure mutates nothing. Extend requires a full-universe
// session (NewSession); the request-scoped sessions Concretize builds
// internally cannot extend. Callers must serialize Extend against their
// own concurrent Resolves only in the sense that Resolve calls issued
// concurrently will simply order before or after the extension (both hold
// the session lock); a resolver layer that needs "no request observes a
// half-applied broadcast" adds its own barrier (resolve.PortfolioResolver
// does).
//
// goarxivlint:blocking cancel=none
func (se *Session) Extend(d *repo.Delta) (repo.Epoch, error) {
	se.mu.Lock()
	defer se.mu.Unlock()
	if !se.full {
		return se.epoch, errors.New("concretize: Extend on a request-scoped session")
	}
	// Fault-injection site, before any mutation: an injected error aborts
	// cleanly here (universe untouched) — unless a sibling session already
	// applied the delta, in which case this session's skeleton is left one
	// epoch behind the shared universe, the state the caller's quarantine
	// or rebuild path must handle.
	if err := fpExtend.Inject(""); err != nil {
		return se.epoch, fmt.Errorf("concretize: extend: %w", err)
	}
	switch ue := se.u.Epoch(); {
	case ue == se.epoch:
		if _, err := se.u.Apply(d); err != nil {
			return se.epoch, err
		}
	case ue == se.epoch+1:
		// A sibling session sharing the universe already applied this
		// delta; only the skeleton needs to catch up.
	default:
		return se.epoch, fmt.Errorf("concretize: universe at epoch %d, session skeleton at epoch %d: universe mutated behind the session", ue, se.epoch)
	}
	se.extendLocked(d)
	se.epoch = se.u.Epoch()
	se.epochA.Store(uint64(se.epoch))
	return se.epoch, nil
}

// extendLocked performs the in-place skeleton extension for a delta the
// universe has already absorbed. Callers hold se.mu.
//
// goarxivlint:blocking cancel=none
func (se *Session) extendLocked(d *repo.Delta) {
	s := se.solver

	// Learnt clauses are consequences of the formula as it was; widening a
	// clause (detach + re-add a weaker one) can invalidate them, and stale
	// level-0 learnt units would be folded into re-added clauses by
	// normalization, silently narrowing them forever. Forget learnts and
	// rebuild the level-0 trail from axioms FIRST, before any re-adds.
	//
	// Exception: a delta that touches only packages a lazy session never
	// materialized detaches nothing — all skeleton work is deferred to
	// first reach — so the learnt clauses (and the warmth they encode)
	// survive the delta intact.
	needForget := !se.lazy
	if !needForget {
		for _, a := range d.Adds() {
			if _, ok := se.vars[a.Pkg]; ok {
				needForget = true
				break
			}
		}
	}
	if needForget {
		s.ForgetLearnts()
	}

	// dirty collects every name the delta touches, directly or through
	// revival cascades; the worklist re-examines each name's widenable
	// structures. A name can be legitimately re-pushed after processing
	// (a resurrection allocating fresh variables for its candidates), so
	// queue membership is tracked separately from dirtiness.
	dirty := make(map[string]bool)
	var queue []string
	inQ := make(map[string]bool)
	push := func(name string) {
		dirty[name] = true
		if !inQ[name] {
			inQ[name] = true
			queue = append(queue, name)
		}
	}

	// Allocate variables and selection structure for the delta's versions.
	// Within a package group Adds() orders versions descending, so
	// insertion indices ascend and earlier recorded indices stay valid.
	type newVer struct {
		pv  *pkgVars
		idx int
	}
	var newVers []newVer
	adds := d.Adds()
	for gi := 0; gi < len(adds); {
		gj := gi
		for gj < len(adds) && adds[gj].Pkg == adds[gi].Pkg {
			gj++
		}
		group := adds[gi:gj]
		pkg := group[0].Pkg
		pv, ok := se.vars[pkg]
		if !ok && se.lazy {
			// Unmaterialized package on a lazy session (brand-new, or in
			// the universe but never reached): encoding is deferred to
			// first reach, which reads the post-delta universe. Only the
			// invalidation bookkeeping needs the touched names now —
			// cache/memo entries and activations keyed on the package or
			// its provided virtuals must still fall. Neither joins the
			// worklist: there is no encoded structure on them to widen
			// yet, and materialization revives any parked work.
			dirty[pkg] = true
			for _, a := range group {
				for _, pr := range a.Def.Provides {
					dirty[pr.Virtual] = true
				}
			}
			gi = gj
			continue
		}
		switch {
		case !ok:
			// Brand-new package: the universe already holds exactly the
			// delta's versions for it.
			pv = se.encodePackage(pkg)
			for i := range pv.vers {
				newVers = append(newVers, newVer{pv, i})
			}
		case s.FixedFalse(sat.Lit(pv.installed)):
			// The package died at level 0 (every version was proven
			// unbuildable); its variables are unrevivable, so rebuild it
			// wholesale — covering the delta's versions too.
			se.resurrectPackage(pv, push)
		default:
			for _, a := range group {
				idx := pv.pkg.IndexOf(a.Def.Version)
				x := s.NewVar()
				pv.vers = append(pv.vers, 0)
				copy(pv.vers[idx+1:], pv.vers[idx:])
				pv.vers[idx] = x
				s.AddClause(sat.Lit(x).Neg(), sat.Lit(pv.installed))
				newVers = append(newVers, newVer{pv, idx})
			}
			se.emitPackageStructure(pv)
		}
		push(pkg)
		for _, a := range group {
			for _, pr := range a.Def.Provides {
				push(pr.Virtual)
			}
		}
		gi = gj
	}

	// Requirements for the new versions, after every delta package has its
	// structure in place so cross-references between them resolve.
	for _, nv := range newVers {
		se.encodeVersionReqs(nv.pv, nv.idx)
	}

	// Worklist: re-examine every touched name's widenable structures.
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		delete(inQ, name)
		se.extendName(name, push)
	}

	// Delta-scoped invalidation. Activations whose target name is dirty
	// carry stale candidate clauses: deactivate them permanently (a later
	// request re-allocates). Cache and bound-memo entries fall only when
	// their recorded reach set intersects the dirty names; everything else
	// — including the learnt clauses and phases backing those shapes —
	// survives the delta untouched.
	for el := se.actsLRU.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*actEntry)
		if dirty[ent.target] {
			s.AddClause(ent.lit.Neg())
			se.actsLRU.Remove(el)
			delete(se.acts, ent.key)
		}
		el = next
	}
	touches := func(reach map[string]bool) bool {
		if len(reach) < len(dirty) {
			for n := range reach {
				if dirty[n] {
					return true
				}
			}
			return false
		}
		for n := range dirty {
			if reach[n] {
				return true
			}
		}
		return false
	}
	se.bounds.sweep(func(_ string, b *boundEntry) bool { return touches(b.reach) })
	if se.cache != nil {
		se.cacheMu.Lock()
		se.cache.sweep(func(_ string, e cacheEntry) bool { return touches(e.reach) })
		se.cacheMu.Unlock()
	}
	se.syncEncodingStats()
}

// extendName re-examines one touched name: requirement-definition keys on
// it are widened or revived, support keys gain clauses for new candidates,
// its provider-selection clause (when the name is a virtual) is re-emitted,
// and declarations parked under it are re-run.
func (se *Session) extendName(name string, push func(string)) {
	s := se.solver

	// Requirement keys: every dependency site that lowered against a key
	// on this name has its inlined requirement clause detached and its
	// declaration re-run, re-emitting the clause over the current
	// candidate set. This covers widening (new candidates join the
	// disjunction) and revival (a clause that had collapsed into a hard
	// prune — every candidate dead — comes back) uniformly; a site whose
	// own version literal died at level 0 is resurrected by rerunDecl.
	for _, key := range se.defsByName[name] {
		de := se.defs[key]
		users := de.users
		de.users = nil
		seen := make(map[string]bool, len(users))
		for _, site := range users {
			k := siteKey(site.id)
			if seen[k] {
				continue
			}
			seen[k] = true
			s.DetachClause(site.ref)
			se.rerunDecl(site.id, push)
		}
	}

	// Support keys widen additively: one new support clause per candidate
	// not yet seen. Existing conflict and trigger clauses against the
	// support literal need no rewrite.
	for _, key := range se.supsByName[name] {
		en := se.sups[key]
		for _, c := range se.scopedCandidates(en.name) {
			if !en.rng.Satisfies(c.Matched) {
				continue
			}
			x := sat.Lit(se.vars[c.Pkg].vers[c.Index])
			if en.seen[x] {
				continue
			}
			en.seen[x] = true
			s.AddClause(x.Neg(), en.lit)
		}
	}

	// Provider selection: widen (or first-encode) the virtual's selection
	// clause. A "needed" variable killed at level 0 (every provider died)
	// is replaced — its activations are evicted via dirty anyway.
	if vv, ok := se.virts[name]; ok {
		if s.FixedFalse(sat.Lit(vv.needed)) {
			vv.needed = s.NewVar()
		}
		se.emitVirtualSelection(vv, se.scopedCandidates(name))
	} else if se.u.IsVirtual(name) {
		se.encodeVirtual(name)
	}

	// Parked declarations: consume the name's pending list and re-run each
	// site against the current universe (it re-parks itself if still
	// unemittable). Revival cascades can park duplicates, so sites dedup
	// by declaration identity.
	sites := se.pendingByName[name]
	if len(sites) == 0 {
		return
	}
	delete(se.pendingByName, name)
	seen := make(map[string]bool, len(sites))
	for _, site := range sites {
		k := siteKey(site.id)
		if seen[k] {
			continue
		}
		seen[k] = true
		s.DetachClause(site.ref)
		se.rerunDecl(site.id, push)
	}
}

// rerunDecl re-lowers one declaration, identified stably, against the
// current universe and variables. A declaring version whose variable died
// at level 0 (an unconditional unsatisfiable dependency became a unit
// axiom) cannot be revived in place: the whole version is resurrected,
// which re-runs all of its declarations including this one.
func (se *Session) rerunDecl(id declID, push func(string)) {
	pv, ok := se.vars[id.pkg]
	if !ok {
		return
	}
	idx := pv.pkg.IndexOf(id.ver)
	if idx < 0 {
		return
	}
	xi := sat.Lit(pv.vers[idx])
	if se.solver.FixedFalse(xi) {
		se.resurrectVersion(pv, idx, push)
		return
	}
	defs := pv.pkg.Versions()
	if id.conflict {
		c := defs[idx].Conflicts[id.idx]
		se.addRequirement(xi, id, c.When, c.Pkg, c.Range, true)
		return
	}
	dd := defs[idx].Deps[id.idx]
	se.addRequirement(xi, id, dd.When, dd.Pkg, dd.Range, false)
}

// resurrectVersion replaces one level-0-dead version variable with a fresh
// one and re-emits everything anchored on it: the x -> y implication, the
// package's widenable structure, and the version's declarations. The
// package name (so definition and support keys on it pick up the fresh
// variable) and the version's provided virtuals are pushed.
func (se *Session) resurrectVersion(pv *pkgVars, idx int, push func(string)) {
	s := se.solver
	if s.FixedFalse(sat.Lit(pv.installed)) {
		se.resurrectPackage(pv, push)
		return
	}
	x := s.NewVar()
	pv.vers[idx] = x
	s.AddClause(sat.Lit(x).Neg(), sat.Lit(pv.installed))
	se.emitPackageStructure(pv)
	se.encodeVersionReqs(pv, idx)
	push(pv.pkg.Name)
	for _, pr := range pv.pkg.Versions()[idx].Provides {
		push(pr.Virtual)
	}
}

// resurrectPackage rebuilds a package whose installed variable died at
// level 0 — which only happens when every version died, so every variable
// is reallocated. Sized from the universe's current definitions, it also
// covers delta versions not yet given slots. All requirements are re-run
// and every name that can reference the package's variables is pushed.
func (se *Session) resurrectPackage(pv *pkgVars, push func(string)) {
	s := se.solver
	s.DetachClause(pv.orRef)
	pv.orRef = sat.ClauseRef{}
	s.RemovePB(pv.amoRef)
	pv.amoRef = sat.PBRef{}
	pv.installed = s.NewVar()
	pv.vers = pv.vers[:0]
	for range pv.pkg.Versions() {
		x := s.NewVar()
		pv.vers = append(pv.vers, x)
		s.AddClause(sat.Lit(x).Neg(), sat.Lit(pv.installed))
	}
	se.emitPackageStructure(pv)
	for i := range pv.pkg.Versions() {
		se.encodeVersionReqs(pv, i)
	}
	push(pv.pkg.Name)
	for _, def := range pv.pkg.Versions() {
		for _, pr := range def.Provides {
			push(pr.Virtual)
		}
	}
}

// matchingLits enumerates the current in-scope candidate literals for a
// requirement key.
func (se *Session) matchingLits(name string, rng version.Range) []sat.Lit {
	var out []sat.Lit
	for _, c := range se.scopedCandidates(name) {
		if rng.Satisfies(c.Matched) {
			out = append(out, sat.Lit(se.vars[c.Pkg].vers[c.Index]))
		}
	}
	return out
}

// siteKey is the dedup identity of a declaration site.
func siteKey(id declID) string {
	kind := "d"
	if id.conflict {
		kind = "c"
	}
	return fmt.Sprintf("%s\x00%s\x00%s%d", id.pkg, id.ver.String(), kind, id.idx)
}
