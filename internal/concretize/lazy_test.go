package concretize

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// This file is the lazy-encoder suite: differential streams holding a
// first-reach-materializing Session (SessionOptions.Lazy) against an
// eagerly-encoded one over every synthetic family, churn streams where
// deltas park under unreached names, the encoder-coverage counters, and
// the registry-scale payoff (vars and memory vs eager). The oracle logic
// mirrors differential_test.go: monotone families compare pick-for-pick,
// adversarial ones on satisfiability and optimal cost with every answer
// independently verified.

// runLazyDifferentialGenStream fires one request stream through a lazy
// session and an eager session over the same universe, replaying earlier
// shapes so both sessions' caches are differentially checked too.
func runLazyDifferentialGenStream(t *testing.T, rng *rand.Rand, u *repo.Universe, gen func(rng *rand.Rand) []Root, nReqs int, exactPicks bool) {
	t.Helper()
	lazy := NewSession(u, SessionOptions{Lazy: true})
	eager := NewSession(u, SessionOptions{})
	var replay [][]Root
	for i := 0; i < nReqs; i++ {
		var roots []Root
		if len(replay) > 0 && rng.Intn(4) == 0 {
			roots = replay[rng.Intn(len(replay))]
		} else {
			roots = gen(rng)
			replay = append(replay, roots)
		}

		lres, lerr := lazy.Resolve(context.Background(), roots, Options{})
		eres, eerr := eager.Resolve(context.Background(), roots, Options{})

		if (lerr == nil) != (eerr == nil) {
			t.Fatalf("roots %s: lazy err %v, eager err %v", rootsString(roots), lerr, eerr)
		}
		if lerr != nil {
			if !errors.Is(lerr, ErrUnsatisfiable) || !errors.Is(eerr, ErrUnsatisfiable) {
				t.Fatalf("roots %s: non-unsat errors: lazy %v, eager %v", rootsString(roots), lerr, eerr)
			}
			continue
		}
		if !lres.Stats.Optimal || !eres.Stats.Optimal {
			t.Fatalf("roots %s: non-optimal without a budget", rootsString(roots))
		}
		if lres.Stats.Cost != eres.Stats.Cost {
			t.Fatalf("roots %s: cost %d (lazy) vs %d (eager)", rootsString(roots), lres.Stats.Cost, eres.Stats.Cost)
		}
		if err := verify(u, roots, lres.Picks); err != nil {
			t.Fatalf("roots %s: lazy answer invalid: %v", rootsString(roots), err)
		}
		if err := verify(u, roots, eres.Picks); err != nil {
			t.Fatalf("roots %s: eager answer invalid: %v", rootsString(roots), err)
		}
		if exactPicks && !reflect.DeepEqual(pickStrings(lres), pickStrings(eres)) {
			t.Fatalf("roots %s: picks differ:\n lazy:  %v\n eager: %v",
				rootsString(roots), pickStrings(lres), pickStrings(eres))
		}
	}
	// A lazy stream must never materialize more packages than the eager
	// baseline. (Variable counts may run marginally higher on overlapping
	// batches: re-emitting a widened structure allocates a fresh guard or
	// needed variable where the skeleton allocated one.)
	ls, es := lazy.EncodingStats(), eager.EncodingStats()
	if ls.MaterializedPackages > es.MaterializedPackages {
		t.Fatalf("lazy coverage exceeds eager: %+v vs %+v", ls, es)
	}
}

// TestLazyDifferentialMonotone: the strong oracle — lazy must equal eager
// pick-for-pick across seeded monotone universes.
func TestLazyDifferentialMonotone(t *testing.T) {
	nUniverses := 60
	if testing.Short() {
		nUniverses = 12
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < nUniverses; i++ {
		pkgs := 4 + rng.Intn(14)
		versions := 1 + rng.Intn(5)
		depsPer := rng.Intn(4)
		seed := rng.Int63()
		u, _ := repo.SynthDense(pkgs, versions, depsPer, seed)
		gen := func(rng *rand.Rand) []Root { return diffRequest(rng, pkgs, versions) }
		t.Run(fmt.Sprintf("u%03d_p%d_v%d_d%d", i, pkgs, versions, depsPer), func(t *testing.T) {
			runLazyDifferentialGenStream(t, rng, u, gen, 10, true)
		})
	}
}

// TestLazyDifferentialConflicts: adversarial universes — satisfiability
// and optimal cost must agree; conflict clauses materialized on first
// reach must prune exactly as eagerly-encoded ones.
func TestLazyDifferentialConflicts(t *testing.T) {
	nUniverses := 40
	if testing.Short() {
		nUniverses = 8
	}
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < nUniverses; i++ {
		pkgs := 4 + rng.Intn(12)
		versions := 2 + rng.Intn(4)
		depsPer := rng.Intn(4)
		conflictsPer := 1 + rng.Intn(3)
		seed := rng.Int63()
		u, _ := repo.SynthDenseConflicts(pkgs, versions, depsPer, conflictsPer, seed)
		gen := func(rng *rand.Rand) []Root { return diffRequest(rng, pkgs, versions) }
		t.Run(fmt.Sprintf("u%03d_p%d_v%d_d%d_c%d", i, pkgs, versions, depsPer, conflictsPer), func(t *testing.T) {
			runLazyDifferentialGenStream(t, rng, u, gen, 10, false)
		})
	}
}

// TestLazyDifferentialVirtualDiamond: provider selection under lazy
// materialization — the selection clause for a virtual widens as later
// requests reach more providers, and must stay answer-identical to the
// eagerly-complete one.
func TestLazyDifferentialVirtualDiamond(t *testing.T) {
	nUniverses := 30
	if testing.Short() {
		nUniverses = 6
	}
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < nUniverses; i++ {
		virtuals := 1 + rng.Intn(3)
		providers := 1 + rng.Intn(3)
		versions := 1 + rng.Intn(4)
		u, _ := repo.SynthVirtualDiamond(virtuals, providers, versions)
		gen := func(rng *rand.Rand) []Root {
			return virtualDiamondRequest(rng, virtuals, providers, versions)
		}
		t.Run(fmt.Sprintf("u%03d_v%d_p%d_k%d", i, virtuals, providers, versions), func(t *testing.T) {
			runLazyDifferentialGenStream(t, rng, u, gen, 10, providers == 1)
		})
	}
}

// TestLazyDifferentialConditionalChain: trigger-guarded requirements —
// support literals lowered at materialization time must behave exactly as
// skeleton-time ones, including the sat-flipping ccx/cc0 encounters.
func TestLazyDifferentialConditionalChain(t *testing.T) {
	nUniverses := 30
	if testing.Short() {
		nUniverses = 6
	}
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < nUniverses; i++ {
		length := 2 + rng.Intn(5)
		versions := 1 + rng.Intn(4)
		u, _ := repo.SynthConditionalChain(length, versions)
		gen := func(rng *rand.Rand) []Root {
			return conditionalChainRequest(rng, length, versions, false)
		}
		t.Run(fmt.Sprintf("u%03d_l%d_k%d", i, length, versions), func(t *testing.T) {
			runLazyDifferentialGenStream(t, rng, u, gen, 10, false)
		})
	}
}

// registryRequest draws 1-2 roots over a SynthRegistry universe: mostly
// bare (the dominant registry workload), sometimes range-capped.
func registryRequest(rng *rand.Rand, pkgs, versions int) []Root {
	n := 1 + rng.Intn(2)
	roots := make([]Root, 0, n)
	for i := 0; i < n; i++ {
		roots = append(roots, MustParseRoot(rangeSpec(rng, fmt.Sprintf("reg%d", rng.Intn(pkgs)), versions)))
	}
	return roots
}

// TestLazyDifferentialRegistry: the registry family itself — sparse
// closures over a wide package space, where most of the universe stays
// unmaterialized for the whole stream.
func TestLazyDifferentialRegistry(t *testing.T) {
	nUniverses := 10
	if testing.Short() {
		nUniverses = 3
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < nUniverses; i++ {
		pkgs := 60 + rng.Intn(200)
		versions := 2 + rng.Intn(5)
		u, _ := repo.SynthRegistry(pkgs, versions)
		gen := func(rng *rand.Rand) []Root { return registryRequest(rng, pkgs, versions) }
		t.Run(fmt.Sprintf("u%03d_p%d_v%d", i, pkgs, versions), func(t *testing.T) {
			runLazyDifferentialGenStream(t, rng, u, gen, 12, true)
		})
	}
}

// Lazy churn: the churner's delta streams through a lazy extended session
// vs cold Concretize over the grown universe. Deltas routinely touch
// packages the session never materialized — the parking path — and later
// requests root them — the revival path.

// TestLazyChurnMonotone: the strong oracle under churn with lazy
// materialization.
func TestLazyChurnMonotone(t *testing.T) {
	nUniverses := 25
	if testing.Short() {
		nUniverses = 5
	}
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < nUniverses; i++ {
		pkgs := 4 + rng.Intn(10)
		versions := 1 + rng.Intn(4)
		depsPer := rng.Intn(4)
		seed := rng.Int63()
		u, _ := repo.SynthDense(pkgs, versions, depsPer, seed)
		t.Run(fmt.Sprintf("u%03d_p%d_v%d_d%d", i, pkgs, versions, depsPer), func(t *testing.T) {
			c := newChurner(rng, u, denseNames(pkgs), denseNames(pkgs))
			runChurnStream(t, c, 3, 4, true, SessionOptions{Lazy: true})
		})
	}
}

// TestLazyChurnVirtual: delta-added providers under lazy materialization —
// a new provider for a virtual the session has materialized must widen the
// live selection; one for an unreached virtual must park.
func TestLazyChurnVirtual(t *testing.T) {
	nUniverses := 12
	if testing.Short() {
		nUniverses = 3
	}
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < nUniverses; i++ {
		virtuals := 1 + rng.Intn(3)
		providers := 1 + rng.Intn(2)
		versions := 2 + rng.Intn(2)
		u, root := repo.SynthVirtualDiamond(virtuals, providers, versions)
		t.Run(fmt.Sprintf("u%03d_v%d_p%d_k%d", i, virtuals, providers, versions), func(t *testing.T) {
			targets := []string{root, "vbase"}
			rootable := append([]string{root}, u.VirtualNames()...)
			c := newChurner(rng, u, targets, rootable)
			runChurnStream(t, c, 3, 4, false, SessionOptions{Lazy: true})
		})
	}
}

// TestLazyChurnConditional: triggered dependencies under lazy churn.
func TestLazyChurnConditional(t *testing.T) {
	nUniverses := 12
	if testing.Short() {
		nUniverses = 3
	}
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < nUniverses; i++ {
		length := 2 + rng.Intn(4)
		versions := 2 + rng.Intn(3)
		u, root := repo.SynthConditionalChain(length, versions)
		t.Run(fmt.Sprintf("u%03d_l%d_k%d", i, length, versions), func(t *testing.T) {
			targets := []string{root, "ctrl"}
			for j := 1; j < length; j++ {
				targets = append(targets, fmt.Sprintf("cc%d", j))
			}
			rootable := append([]string{}, targets...)
			rootable = append(rootable, "ccx")
			c := newChurner(rng, u, targets, rootable)
			runChurnStream(t, c, 3, 4, false, SessionOptions{Lazy: true})
		})
	}
}

// TestLazyEncodingStats pins the counter contract: an eager session covers
// the universe at construction, a lazy one covers nothing until a request
// reaches it, then exactly the union of reached subgraphs.
func TestLazyEncodingStats(t *testing.T) {
	u, root := repo.SynthRegistry(200, 4)

	eager := NewSession(u, SessionOptions{})
	es := eager.EncodingStats()
	if es.Lazy || es.MaterializedPackages != 200 || es.UniversePackages != 200 || es.SolverVars == 0 {
		t.Fatalf("eager stats %+v: want full coverage of 200 packages", es)
	}

	lazy := NewSession(u, SessionOptions{Lazy: true})
	ls := lazy.EncodingStats()
	if !ls.Lazy || ls.MaterializedPackages != 0 || ls.UniversePackages != 200 || ls.SolverVars != 0 {
		t.Fatalf("lazy stats before any request %+v: want zero coverage", ls)
	}

	if _, err := lazy.Resolve(context.Background(), []Root{{Pkg: root}}, Options{}); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	ls = lazy.EncodingStats()
	if ls.MaterializedPackages == 0 || ls.MaterializedPackages >= 200 || ls.SolverVars == 0 || ls.SolverVars >= es.SolverVars {
		t.Fatalf("lazy stats after one request %+v (eager %+v): want partial coverage", ls, es)
	}
}

// TestLazyDeltaParking pins the park/revive cycle end to end: a delta
// touching only unmaterialized packages must not disturb warm state (the
// cached answer survives, nothing new materializes), and a later request
// rooting the parked package must see the delta's version.
func TestLazyDeltaParking(t *testing.T) {
	u, root := repo.SynthRegistry(300, 5)
	se := NewSession(u, SessionOptions{Lazy: true})

	res1, err := se.Resolve(context.Background(), []Root{{Pkg: root}}, Options{})
	if err != nil {
		t.Fatalf("Resolve %s: %v", root, err)
	}
	before := se.EncodingStats()

	// reg150 is outside reg0's closure (its own block plus the hub tier).
	if before.MaterializedPackages == 0 {
		t.Fatal("nothing materialized")
	}
	d := repo.NewDelta()
	d.Add("reg150", "6.0")
	if _, err := se.Extend(d); err != nil {
		t.Fatalf("Extend: %v", err)
	}

	res2, err := se.Resolve(context.Background(), []Root{{Pkg: root}}, Options{})
	if err != nil {
		t.Fatalf("Resolve %s after delta: %v", root, err)
	}
	if !res2.Stats.SolutionCacheHit {
		t.Fatal("delta on an unreached package invalidated an untouched cached answer")
	}
	if res2.Stats.Cost != res1.Stats.Cost {
		t.Fatalf("cost changed across unrelated delta: %d -> %d", res1.Stats.Cost, res2.Stats.Cost)
	}
	after := se.EncodingStats()
	if after.MaterializedPackages != before.MaterializedPackages {
		t.Fatalf("delta on an unreached package materialized it: %d -> %d packages",
			before.MaterializedPackages, after.MaterializedPackages)
	}

	// Rooting the parked package must revive the delta: its newest version
	// is the delta-added 6.0.
	res3, err := se.Resolve(context.Background(), []Root{{Pkg: "reg150"}}, Options{})
	if err != nil {
		t.Fatalf("Resolve reg150: %v", err)
	}
	if got := res3.Picks["reg150"].String(); got != "6.0" {
		t.Fatalf("reg150 resolved to %s, want the delta-added 6.0", got)
	}
	if err := verify(u, []Root{{Pkg: "reg150"}}, res3.Picks); err != nil {
		t.Fatalf("revived answer invalid: %v", err)
	}
	if st := se.EncodingStats(); st.MaterializedPackages <= after.MaterializedPackages {
		t.Fatal("rooting a parked package materialized nothing")
	}
}

// heapAlloc samples the live heap after a full GC.
func heapAlloc() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// TestLazyRegistryScaling is the payoff test: at a paired scale where
// eager encoding is affordable, the lazy session must answer identically
// while allocating >= 10x fewer solver variables and >= 5x less heap; at
// full registry scale (10000 packages x 100 versions, where eager
// encoding is minutes and gigabytes) the lazy session must stay an order
// of magnitude under eager's analytic variable floor.
func TestLazyRegistryScaling(t *testing.T) {
	const pkgs, versions = 2500, 16
	u, root := repo.SynthRegistry(pkgs, versions)
	roots := []Root{{Pkg: root}}

	h0 := heapAlloc()
	eager := NewSession(u, SessionOptions{})
	eres, err := eager.Resolve(context.Background(), roots, Options{})
	if err != nil {
		t.Fatalf("eager Resolve: %v", err)
	}
	eagerHeap := heapAlloc() - h0

	h0 = heapAlloc()
	lazy := NewSession(u, SessionOptions{Lazy: true})
	lres, err := lazy.Resolve(context.Background(), roots, Options{})
	if err != nil {
		t.Fatalf("lazy Resolve: %v", err)
	}
	lazyHeap := heapAlloc() - h0

	if lres.Stats.Cost != eres.Stats.Cost || !reflect.DeepEqual(pickStrings(lres), pickStrings(eres)) {
		t.Fatalf("answers differ: lazy cost %d %v, eager cost %d %v",
			lres.Stats.Cost, pickStrings(lres), eres.Stats.Cost, pickStrings(eres))
	}
	es, ls := eager.EncodingStats(), lazy.EncodingStats()
	if ls.SolverVars*10 > es.SolverVars {
		t.Fatalf("lazy %d vars vs eager %d: want >= 10x fewer", ls.SolverVars, es.SolverVars)
	}
	if lazyHeap*5 > eagerHeap {
		t.Fatalf("lazy heap %dKB vs eager %dKB: want >= 5x less", lazyHeap>>10, eagerHeap>>10)
	}
	t.Logf("paired %dx%d: vars %d vs %d (%.0fx), heap %dKB vs %dKB (%.0fx)",
		pkgs, versions, ls.SolverVars, es.SolverVars, float64(es.SolverVars)/float64(ls.SolverVars),
		lazyHeap>>10, eagerHeap>>10, float64(eagerHeap)/float64(lazyHeap))

	if testing.Short() || raceEnabled {
		t.Skip("full-scale registry: skipped under -short and -race")
	}
	// Full scale: eager variables are exactly bounded below by
	// pkgs*(versions+1) — one installed plus one per-version variable per
	// package — so the lazy session is measured against that floor.
	uFull, rootFull := repo.SynthRegistry(10000, 100)
	lazyFull := NewSession(uFull, SessionOptions{Lazy: true})
	for _, spec := range []string{rootFull, "reg5000"} {
		res, err := lazyFull.Resolve(context.Background(), []Root{MustParseRoot(spec)}, Options{})
		if err != nil {
			t.Fatalf("full-scale Resolve %s: %v", spec, err)
		}
		if !res.Stats.Optimal {
			t.Fatalf("full-scale %s: not optimal", spec)
		}
	}
	fs := lazyFull.EncodingStats()
	eagerFloor := 10000 * 101
	if fs.SolverVars*10 > eagerFloor {
		t.Fatalf("full-scale lazy %d vars vs eager floor %d: want >= 10x fewer", fs.SolverVars, eagerFloor)
	}
	if fs.MaterializedPackages*20 > fs.UniversePackages {
		t.Fatalf("full-scale materialized %d of %d packages: want < 5%%", fs.MaterializedPackages, fs.UniversePackages)
	}
	t.Logf("full 10000x100: %d of %d packages, %d vars (eager floor %d, %.0fx)",
		fs.MaterializedPackages, fs.UniversePackages, fs.SolverVars, eagerFloor,
		float64(eagerFloor)/float64(fs.SolverVars))
}

// TestLazySessionHammer races 8 resolving goroutines against a stream of
// Extends on one lazy session over a registry universe: materialization,
// parking, revival, cache sweeps, and the stats mirrors all interleave.
// Answers are checked for internal consistency only (the universe mutates
// concurrently, so no external oracle applies).
func TestLazySessionHammer(t *testing.T) {
	const workers = 8
	u, _ := repo.SynthRegistry(400, 4)
	se := NewSession(u, SessionOptions{Lazy: true})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				roots := registryRequest(rng, 400, 4)
				res, err := se.Resolve(context.Background(), roots, Options{})
				switch {
				case err != nil && !errors.Is(err, ErrUnsatisfiable):
					t.Errorf("worker %d: %v", w, err)
					return
				case err == nil && !res.Stats.Optimal:
					t.Errorf("worker %d: non-optimal without a budget", w)
					return
				case err == nil && len(res.Picks) == 0:
					t.Errorf("worker %d: empty picks", w)
					return
				}
			}
		}()
	}

	// Delta stream: new versions on scattered packages — some materialized
	// by the workers, most parked — plus the stats reader.
	for i := 0; i < 30; i++ {
		d := repo.NewDelta()
		d.Add(fmt.Sprintf("reg%d", (i*37)%400), fmt.Sprintf("%d.0", 100+i))
		if _, err := se.Extend(d); err != nil {
			t.Errorf("Extend %d: %v", i, err)
			break
		}
		st := se.EncodingStats()
		if st.UniversePackages < 400 || st.MaterializedPackages > st.UniversePackages {
			t.Errorf("inconsistent stats %+v", st)
			break
		}
	}
	close(stop)
	wg.Wait()
}
