package concretize

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// This file is the churn differential harness for live universes: ~100
// seeded universes each grow through a random stream of append-only
// deltas, with a long-lived Session extending its skeleton in place
// (Session.Extend) while fresh cold Concretize calls over the
// post-delta universe serve as the oracle. Requests mix new shapes with
// replays of pre-delta shapes, so delta-scoped cache invalidation is
// differentially checked too: a stale answer surviving a delta it should
// not have shows up as a warm/cold disagreement.
//
// Oracle strength follows the family, as in differential_test.go: the
// monotone SynthDense family (upper-bound ranges only — a property the
// churner preserves, see below) has unique optima and is compared
// pick-for-pick; conflict-bearing, virtual, and conditional families are
// compared on satisfiability and optimal cost, with every answer
// independently verified.

// churner generates append-only deltas over a growing universe. Version
// numbers come from one global counter starting at 100, so every add is
// globally fresh (never colliding with an existing version) and newer
// than every seed version — deltas always move the optimum.
type churner struct {
	rng *rand.Rand
	u   *repo.Universe
	// depTargets are the packages new packages may depend on: the seed
	// vocabulary only, never grown packages, so the dependency graph stays
	// acyclic under growth.
	depTargets []string
	// rootable is everything requests may root: seed packages, virtual
	// names, and grown packages as they appear.
	rootable []string
	next     int // global version counter
	grown    int // grown-package name counter
}

func newChurner(rng *rand.Rand, u *repo.Universe, depTargets, rootable []string) *churner {
	return &churner{rng: rng, u: u, depTargets: depTargets, rootable: rootable, next: 100}
}

func (c *churner) freshVer() string {
	v := fmt.Sprintf("%d.0", c.next)
	c.next++
	return v
}

// copiedDecls rebuilds a package's newest version's declarations for a new
// version of the same package: the same dependency targets and conditions
// with the range loosened to ":" (keeping every range an upper bound, which
// preserves the monotone family's unique-optimum property), conflicts and
// provides copied verbatim (the new version provides a fresh newer virtual
// version where it provides at all).
func (c *churner) copiedDecls(name string) []repo.Decl {
	pkg, ok := c.u.Package(name)
	if !ok {
		return nil
	}
	def := pkg.Versions()[0]
	var decls []repo.Decl
	for _, d := range def.Deps {
		if d.When.IsZero() {
			decls = append(decls, repo.Dep(d.Pkg, ":"))
		} else {
			decls = append(decls, repo.DepWhen(d.Pkg, ":", d.When.Pkg, d.When.Range.String()))
		}
	}
	for _, cf := range def.Conflicts {
		if cf.When.IsZero() {
			decls = append(decls, repo.Confl(cf.Pkg, cf.Range.String()))
		} else {
			decls = append(decls, repo.ConflWhen(cf.Pkg, cf.Range.String(), cf.When.Pkg, cf.When.Range.String()))
		}
	}
	for _, p := range def.Provides {
		decls = append(decls, repo.Prov(p.Virtual, c.freshVer()))
	}
	return decls
}

// delta builds one random append-only delta: 1-3 adds, each either a new
// (newer) version of an existing package, a brand-new leaf package
// depending on seed packages, or — when the universe has virtuals — a
// brand-new provider for one of them.
func (c *churner) delta() *repo.Delta {
	d := repo.NewDelta()
	n := 1 + c.rng.Intn(3)
	virts := c.u.VirtualNames()
	for i := 0; i < n; i++ {
		kind := c.rng.Intn(4)
		switch {
		case kind == 3 && len(virts) > 0:
			// New provider package for a random virtual.
			name := fmt.Sprintf("grow%d", c.grown)
			c.grown++
			virt := virts[c.rng.Intn(len(virts))]
			d.Add(name, c.freshVer(), repo.Prov(virt, c.freshVer()))
			c.rootable = append(c.rootable, name)
		case kind >= 2:
			// New leaf package over 0-2 seed dependencies.
			name := fmt.Sprintf("grow%d", c.grown)
			c.grown++
			var decls []repo.Decl
			seen := map[string]bool{}
			for k := c.rng.Intn(3); k > 0; k-- {
				t := c.depTargets[c.rng.Intn(len(c.depTargets))]
				if !seen[t] {
					seen[t] = true
					decls = append(decls, repo.Dep(t, ":"))
				}
			}
			d.Add(name, c.freshVer(), decls...)
			c.rootable = append(c.rootable, name)
		default:
			// New newest version of an existing concrete package.
			name := c.rootable[c.rng.Intn(len(c.rootable))]
			if c.u.IsVirtual(name) {
				name = c.depTargets[c.rng.Intn(len(c.depTargets))]
			}
			if _, ok := c.u.Package(name); !ok {
				// Named in an earlier add of this same delta but not yet
				// applied; fall back to a seed package.
				name = c.depTargets[c.rng.Intn(len(c.depTargets))]
			}
			d.Add(name, c.freshVer(), c.copiedDecls(name)...)
		}
	}
	return d
}

// request builds a pseudo-random request over the current vocabulary:
// 1-2 roots, constrained against either the seed version band or the
// churner's fresh band, occasionally out of range.
func (c *churner) request() []Root {
	n := 1 + c.rng.Intn(2)
	roots := make([]Root, 0, n)
	for i := 0; i < n; i++ {
		pkg := c.rootable[c.rng.Intn(len(c.rootable))]
		var k int
		if c.next > 100 && c.rng.Intn(2) == 0 {
			k = 100 + c.rng.Intn(c.next-100+1) // fresh band (+1: out of range)
		} else {
			k = 1 + c.rng.Intn(7) // seed band
		}
		var spec string
		switch c.rng.Intn(4) {
		case 0:
			spec = pkg
		case 1:
			spec = fmt.Sprintf("%s@:%d", pkg, k)
		case 2:
			spec = fmt.Sprintf("%s@%d:", pkg, k)
		default:
			spec = fmt.Sprintf("%s@%d", pkg, k)
		}
		roots = append(roots, MustParseRoot(spec))
	}
	return roots
}

// runChurnStream drives one universe through `steps` delta rounds. Before
// the first delta and after each Extend it fires reqsPerStep requests
// (mixing fresh shapes with replays of earlier ones) through the warm
// extended session and through cold Concretize calls on the grown
// universe, requiring agreement.
func runChurnStream(t *testing.T, c *churner, steps, reqsPerStep int, exactPicks bool, opts SessionOptions) {
	t.Helper()
	sess := NewSession(c.u, opts)
	var replay [][]Root

	checkOne := func(round int, roots []Root) {
		t.Helper()
		cold, coldErr := Concretize(c.u, roots, Options{})
		warm, warmErr := sess.Resolve(context.Background(), roots, Options{})
		if (coldErr == nil) != (warmErr == nil) {
			t.Fatalf("round %d roots %s: cold err %v, warm err %v", round, rootsString(roots), coldErr, warmErr)
		}
		if coldErr != nil {
			if !errors.Is(coldErr, ErrUnsatisfiable) || !errors.Is(warmErr, ErrUnsatisfiable) {
				t.Fatalf("round %d roots %s: non-unsat errors: cold %v, warm %v", round, rootsString(roots), coldErr, warmErr)
			}
			return
		}
		if cold.Stats.Cost != warm.Stats.Cost {
			t.Fatalf("round %d roots %s: cost %d (cold) vs %d (warm)", round, rootsString(roots), cold.Stats.Cost, warm.Stats.Cost)
		}
		if err := verify(c.u, roots, warm.Picks); err != nil {
			t.Fatalf("round %d roots %s: warm answer invalid: %v", round, rootsString(roots), err)
		}
		if err := verify(c.u, roots, cold.Picks); err != nil {
			t.Fatalf("round %d roots %s: cold answer invalid: %v", round, rootsString(roots), err)
		}
		if exactPicks && !reflect.DeepEqual(pickStrings(cold), pickStrings(warm)) {
			t.Fatalf("round %d roots %s: picks differ:\n cold: %v\n warm: %v",
				round, rootsString(roots), pickStrings(cold), pickStrings(warm))
		}
	}
	runRound := func(round int) {
		t.Helper()
		for r := 0; r < reqsPerStep; r++ {
			var roots []Root
			if len(replay) > 0 && c.rng.Intn(3) == 0 {
				roots = replay[c.rng.Intn(len(replay))]
			} else {
				roots = c.request()
				replay = append(replay, roots)
			}
			checkOne(round, roots)
		}
	}

	runRound(0)
	for s := 1; s <= steps; s++ {
		d := c.delta()
		if _, err := sess.Extend(d); err != nil {
			t.Fatalf("round %d: Extend: %v", s, err)
		}
		if got, want := sess.epoch, c.u.Epoch(); got != want {
			t.Fatalf("round %d: session epoch %d, universe epoch %d", s, got, want)
		}
		runRound(s)
	}
}

func denseNames(pkgs int) []string {
	names := make([]string, pkgs)
	for i := range names {
		names[i] = fmt.Sprintf("dense%d", i)
	}
	return names
}

// TestChurnMonotone: the strong oracle under churn. Seeded monotone
// universes grow through delta streams that preserve the upper-bound-only
// property, so warm-extended answers must equal cold pick-for-pick.
func TestChurnMonotone(t *testing.T) {
	nUniverses := 40
	if testing.Short() {
		nUniverses = 8
	}
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < nUniverses; i++ {
		pkgs := 4 + rng.Intn(10)
		versions := 1 + rng.Intn(4)
		depsPer := rng.Intn(4)
		seed := rng.Int63()
		u, _ := repo.SynthDense(pkgs, versions, depsPer, seed)
		t.Run(fmt.Sprintf("u%03d_p%d_v%d_d%d", i, pkgs, versions, depsPer), func(t *testing.T) {
			c := newChurner(rng, u, denseNames(pkgs), denseNames(pkgs))
			runChurnStream(t, c, 3, 4, true, SessionOptions{})
		})
	}
}

// TestChurnConflicts: conflict-bearing universes under churn — costs,
// satisfiability, and verification, with copied conflicts riding along on
// delta-added versions.
func TestChurnConflicts(t *testing.T) {
	nUniverses := 30
	if testing.Short() {
		nUniverses = 6
	}
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < nUniverses; i++ {
		pkgs := 4 + rng.Intn(8)
		versions := 2 + rng.Intn(3)
		depsPer := rng.Intn(3)
		conflictsPer := 1 + rng.Intn(3)
		seed := rng.Int63()
		u, _ := repo.SynthDenseConflicts(pkgs, versions, depsPer, conflictsPer, seed)
		t.Run(fmt.Sprintf("u%03d_p%d_v%d_d%d_c%d", i, pkgs, versions, depsPer, conflictsPer), func(t *testing.T) {
			c := newChurner(rng, u, denseNames(pkgs), denseNames(pkgs))
			runChurnStream(t, c, 3, 4, false, SessionOptions{})
		})
	}
}

// TestChurnVirtual: virtual-laden universes under churn, where deltas may
// add whole new providers — the case that changes which package satisfies
// a requirement without touching the requirement itself.
func TestChurnVirtual(t *testing.T) {
	nUniverses := 15
	if testing.Short() {
		nUniverses = 3
	}
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < nUniverses; i++ {
		virtuals := 1 + rng.Intn(3)
		providers := 1 + rng.Intn(2)
		versions := 2 + rng.Intn(2)
		u, root := repo.SynthVirtualDiamond(virtuals, providers, versions)
		t.Run(fmt.Sprintf("u%03d_v%d_p%d_k%d", i, virtuals, providers, versions), func(t *testing.T) {
			targets := []string{root, "vbase"}
			rootable := append([]string{root}, u.VirtualNames()...)
			c := newChurner(rng, u, targets, rootable)
			runChurnStream(t, c, 3, 4, false, SessionOptions{})
		})
	}
}

// TestChurnConditional: trigger-flipped universes under churn; deltas
// growing the trigger package ("ctrl") widen the support literals behind
// every conditional edge.
func TestChurnConditional(t *testing.T) {
	nUniverses := 15
	if testing.Short() {
		nUniverses = 3
	}
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < nUniverses; i++ {
		length := 2 + rng.Intn(4)
		versions := 2 + rng.Intn(3)
		u, root := repo.SynthConditionalChain(length, versions)
		t.Run(fmt.Sprintf("u%03d_l%d_k%d", i, length, versions), func(t *testing.T) {
			targets := []string{root, "ctrl"}
			for j := 1; j < length; j++ {
				targets = append(targets, fmt.Sprintf("cc%d", j))
			}
			rootable := append([]string{}, targets...)
			rootable = append(rootable, "ccx")
			c := newChurner(rng, u, targets, rootable)
			runChurnStream(t, c, 3, 4, false, SessionOptions{})
		})
	}
}
