package concretize

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// curatedMPI builds the classic virtual-interface universe: an app depends
// abstractly on "mpi", which no concrete package owns; two providers
// provide it at different virtual versions, and the dependency's range
// filters which providers qualify.
func curatedMPI() *repo.Universe {
	u := repo.New()
	u.Add("app", "2.0", repo.Dep("mpi", "2:"))
	u.Add("app", "1.0", repo.Dep("mpi", ":"))
	u.Add("openmpi", "4.1", repo.Prov("mpi", "3.1"), repo.Dep("zlib", ":"))
	u.Add("openmpi", "3.0", repo.Prov("mpi", "3.0"), repo.Dep("zlib", ":"))
	u.Add("mvapich", "2.3", repo.Prov("mpi", "1.0"))
	u.Add("zlib", "1.3")
	return u
}

// TestVirtualProviderSelection: a dependency on a virtual must install a
// provider whose provided version lies in the range — here only openmpi
// provides mpi at 2 or newer, so app@2.0 forces it (and its own deps).
func TestVirtualProviderSelection(t *testing.T) {
	u := curatedMPI()
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	res := mustConcretize(t, u, []Root{MustParseRoot("app")})
	want := map[string]string{"app": "2.0", "openmpi": "4.1", "zlib": "1.3"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}
}

// TestVirtualRootForms: a virtual name works as a request root, both bare
// (package-first fallback) and under the explicit virtual: namespace, with
// provider-range filtering; both forms return identical resolutions.
func TestVirtualRootForms(t *testing.T) {
	u := curatedMPI()
	bare := mustConcretize(t, u, []Root{MustParseRoot("mpi")})
	explicit := mustConcretize(t, u, []Root{MustParseRoot("virtual:mpi")})
	if !reflect.DeepEqual(pickStrings(bare), pickStrings(explicit)) {
		t.Errorf("bare %v vs explicit %v", pickStrings(bare), pickStrings(explicit))
	}
	// An unconstrained virtual root: every provider sits at its own newest
	// version (zero lag either way), so the install count decides — the
	// dependency-free mvapich beats openmpi+zlib.
	want := map[string]string{"mvapich": "2.3"}
	if got := pickStrings(bare); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}

	// Range filtering on the provided version: mpi@3: only openmpi grants.
	hi := mustConcretize(t, u, []Root{MustParseRoot("virtual:mpi@3:")})
	want = map[string]string{"openmpi": "4.1", "zlib": "1.3"}
	if got := pickStrings(hi); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}

	// A range no provider grants is unsatisfiable, not unknown.
	if _, err := Concretize(u, []Root{MustParseRoot("virtual:mpi@9:")}, Options{}); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("err = %v, want ErrUnsatisfiable", err)
	}
}

// TestVirtualRootObjective: the chosen provider of a virtual root carries
// root-rank weight — keeping the provider at its newest version must beat
// keeping its dependency newest, exactly as for a concrete root (the
// virtual analogue of TestRootNewnessBeatsDependencyNewness).
func TestVirtualRootObjective(t *testing.T) {
	u := repo.New()
	// prov@2.0 pins z to the 1 series; prov@1.0 frees z. At dependency
	// rank the two downgrades would tie; at root rank prov must win.
	u.Add("prov", "2.0", repo.Prov("v", "2.0"), repo.Dep("z", "1"))
	u.Add("prov", "1.0", repo.Prov("v", "1.0"), repo.Dep("z", ":"))
	u.Add("z", "2.0")
	u.Add("z", "1.0")
	res := mustConcretize(t, u, []Root{MustParseRoot("virtual:v")})
	want := map[string]string{"prov": "2.0", "z": "1.0"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v (provider must be weighed at root rank)", got, want)
	}
}

// TestVirtualRootRangeScopesRootRank is the regression test for an
// objective-weighting bug: only providers able to satisfy a virtual root's
// range may carry root rank. Here helper also provides v — but at 1.0,
// outside the root's "3:" range — so its version-lag must stay at
// dependency rank: the optimizer keeps the actual root target (provA)
// newest and downgrades helper, never the reverse.
func TestVirtualRootRangeScopesRootRank(t *testing.T) {
	u := repo.New()
	u.Add("provA", "2.0", repo.Prov("v", "3.0"), repo.Dep("helper", ":1"))
	u.Add("provA", "1.0", repo.Prov("v", "3.0"), repo.Dep("helper", ":"))
	u.Add("helper", "3.0", repo.Prov("v", "1.0"))
	u.Add("helper", "2.0", repo.Prov("v", "1.0"))
	u.Add("helper", "1.0", repo.Prov("v", "1.0"))
	res := mustConcretize(t, u, []Root{MustParseRoot("virtual:v@3:")})
	want := map[string]string{"provA": "2.0", "helper": "1.0"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v (out-of-range provider was promoted to root rank)", got, want)
	}
}

// TestConflictOnVirtual: a conflict naming a virtual forbids any provider
// whose provided version lies in the range.
func TestConflictOnVirtual(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0", repo.Dep("mpi", ":"), repo.Dep("tool", ":"))
	u.Add("tool", "2.0", repo.Confl("mpi", "2:")) // newest tool rejects modern mpi
	u.Add("tool", "1.0")
	u.Add("ompi", "4.0", repo.Prov("mpi", "3.0"))
	u.Add("mpich", "1.5", repo.Prov("mpi", "1.0"))
	res := mustConcretize(t, u, []Root{MustParseRoot("app")})
	got := pickStrings(res)
	// Newest tool (2.0) outweighs the provider downgrade: mpich wins.
	want := map[string]string{"app": "1.0", "tool": "2.0", "mpich": "1.5"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}
}

// TestConditionalDependency: a dependency guarded by a When trigger must
// stay dormant until the trigger package is selected in range, and then
// bind with its full range semantics.
func TestConditionalDependency(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0", repo.DepWhen("plugin", ":", "feature", "2:"))
	u.Add("feature", "3.0")
	u.Add("feature", "1.0")
	u.Add("plugin", "1.0")

	// Trigger absent: the dependency is dormant, nothing extra installs.
	res := mustConcretize(t, u, []Root{MustParseRoot("app")})
	want := map[string]string{"app": "1.0"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}

	// Trigger in range: the dependency activates.
	res = mustConcretize(t, u, []Root{MustParseRoot("app"), MustParseRoot("feature")})
	want = map[string]string{"app": "1.0", "feature": "3.0", "plugin": "1.0"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}

	// Trigger selected below the When range: still dormant.
	res = mustConcretize(t, u, []Root{MustParseRoot("app"), MustParseRoot("feature@:1")})
	want = map[string]string{"app": "1.0", "feature": "1.0"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}
}

// TestConditionalConflict: a conflict guarded by a When trigger bites only
// when the trigger is selected in range — the optimizer dodges it by
// lagging the trigger when that is cheaper than the conflict.
func TestConditionalConflict(t *testing.T) {
	u := repo.New()
	u.Add("a", "1.0", repo.ConflWhen("b", ":", "mode", "2:"))
	u.Add("b", "1.0")
	u.Add("mode", "2.0")
	u.Add("mode", "1.0")

	// Without the trigger rooted, a and b coexist.
	res := mustConcretize(t, u, []Root{MustParseRoot("a"), MustParseRoot("b")})
	if len(res.Picks) != 2 {
		t.Fatalf("picks = %v, want a and b", pickStrings(res))
	}

	// Rooting mode too: mode@2 would arm the conflict, so the optimizer
	// must lag mode to 1.0 (a root version-step, the only legal model).
	res = mustConcretize(t, u, []Root{MustParseRoot("a"), MustParseRoot("b"), MustParseRoot("mode")})
	want := map[string]string{"a": "1.0", "b": "1.0", "mode": "1.0"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}

	// Pinning the trigger in range makes the pair unsatisfiable.
	_, err := Concretize(u, []Root{MustParseRoot("a"), MustParseRoot("b"), MustParseRoot("mode@2:")}, Options{})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("err = %v, want ErrUnsatisfiable", err)
	}
}

// TestConditionalDepOnVirtual: condition triggers and dependency targets
// compose — a dependency on a virtual guarded by a trigger whose own
// target is a virtual.
func TestConditionalDepOnVirtual(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0", repo.DepWhen("logsink", ":", "telemetry", "2:"))
	u.Add("otel", "1.0", repo.Prov("telemetry", "2.0"))
	u.Add("statsd", "1.0", repo.Prov("telemetry", "1.0"))
	u.Add("filelog", "1.0", repo.Prov("logsink", "1.0"))
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// Selecting the low provider leaves the dependency dormant.
	res := mustConcretize(t, u, []Root{MustParseRoot("app"), MustParseRoot("statsd")})
	if _, ok := res.Picks["filelog"]; ok {
		t.Errorf("dormant conditional dep installed its target: %v", pickStrings(res))
	}

	// Selecting a provider inside the trigger range activates it.
	res = mustConcretize(t, u, []Root{MustParseRoot("app"), MustParseRoot("otel")})
	if _, ok := res.Picks["filelog"]; !ok {
		t.Errorf("active conditional dep missing its target: %v", pickStrings(res))
	}
}

// TestUnknownRootTyped: unknown roots surface as *UnknownPackageError with
// the namespace preserved — including an explicit virtual: root naming a
// concrete package, which must not fall back to the package namespace.
func TestUnknownRootTyped(t *testing.T) {
	u := curatedMPI()
	cases := []struct {
		spec    string
		virtual bool
	}{
		{"ghost", false},
		{"virtual:ghost", true},
		{"virtual:zlib", true}, // a package, but not a virtual
		{"ghost@1.2:", false},
	}
	for _, tc := range cases {
		_, err := Concretize(u, []Root{MustParseRoot(tc.spec)}, Options{})
		var ue *UnknownPackageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: err = %v, want *UnknownPackageError", tc.spec, err)
			continue
		}
		if errors.Is(err, ErrUnsatisfiable) {
			t.Errorf("%s: unknown root must not match ErrUnsatisfiable", tc.spec)
		}
		if ue.Virtual != tc.virtual {
			t.Errorf("%s: Virtual = %v, want %v", tc.spec, ue.Virtual, tc.virtual)
		}
		// The error names the root that failed.
		wantPkg := strings.TrimPrefix(tc.spec, VirtualPrefix)
		wantPkg, _, _ = strings.Cut(wantPkg, "@")
		if ue.Pkg != wantPkg {
			t.Errorf("%s: Pkg = %q, want %q", tc.spec, ue.Pkg, wantPkg)
		}
	}

	// Warm path agrees with cold.
	sess := NewSession(u, SessionOptions{})
	_, err := sess.Resolve(context.Background(), []Root{MustParseRoot("virtual:ghost")}, Options{})
	var ue *UnknownPackageError
	if !errors.As(err, &ue) || !ue.Virtual {
		t.Errorf("warm err = %v, want virtual *UnknownPackageError", err)
	}
}

// TestSessionVirtualDiamondRace hammers one Session over a
// SynthVirtualDiamond universe from 8 goroutines with overlapping requests
// — virtual roots included — under -race in CI. Competing providers make
// the optima tie-prone, so answers are checked for cost equality against
// precomputed cold answers and independently re-verified.
func TestSessionVirtualDiamondRace(t *testing.T) {
	u, root := repo.SynthVirtualDiamond(3, 2, 4)
	type expect struct {
		roots []Root
		cost  int64
		unsat bool
	}
	var pool []expect
	for _, spec := range [][]string{
		{root},
		{"virtual:virt0"},
		{"virt1@:2", root},
		{"prov0_1", "virtual:virt2"},
		{root + "@:3", "vbase@2:"},
		{"virtual:virt0@9:"}, // no provider provides 9+: unsatisfiable
		{"vbase"},
		{"virt2@2", "virt0"},
	} {
		var roots []Root
		for _, s := range spec {
			roots = append(roots, MustParseRoot(s))
		}
		e := expect{roots: roots}
		cold, err := Concretize(u, roots, Options{})
		if err != nil {
			if !errors.Is(err, ErrUnsatisfiable) {
				t.Fatalf("cold %v: %v", spec, err)
			}
			e.unsat = true
		} else {
			e.cost = cold.Stats.Cost
		}
		pool = append(pool, e)
	}

	sess := NewSession(u, SessionOptions{CacheSize: 4}) // force hit/miss/evict interleaving
	const goroutines, iters = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e := pool[(g*5+i)%len(pool)]
				res, err := sess.Resolve(context.Background(), e.roots, Options{})
				if e.unsat {
					if !errors.Is(err, ErrUnsatisfiable) {
						t.Errorf("goroutine %d: err = %v, want ErrUnsatisfiable", g, err)
					}
					continue
				}
				if err != nil {
					t.Errorf("goroutine %d: Resolve: %v", g, err)
					continue
				}
				if verr := verify(u, e.roots, res.Picks); verr != nil {
					t.Errorf("goroutine %d: verify: %v", g, verr)
				}
				if res.Stats.Cost != e.cost {
					t.Errorf("goroutine %d: cost drifted: got %d, want %d (%v)",
						g, res.Stats.Cost, e.cost, pickStrings(res))
				}
			}
		}(g)
	}
	wg.Wait()
}
