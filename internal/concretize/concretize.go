// Package concretize turns dependency-resolution requests over a
// repo.Universe into pseudo-Boolean SAT problems for internal/sat and
// decodes models back into concrete (package, version) selections. This is
// the concretizer layer of the paper's architecture: the solver plays the
// role clasp plays underneath Clingo in Spack, and this package plays the
// role of the encoding that Spack lowers its package DSL into.
//
// Most callers should not import this package directly: the public serving
// surface is the resolve package (version -> repo -> sat -> concretize ->
// resolve), whose Resolver interface fronts one Session
// (resolve.SessionResolver) or races several differently-configured ones
// (resolve.PortfolioResolver). Within this package, Session is the
// long-lived warm path and the direct Concretize function is the one-shot
// convenience wrapper for scripts and tests that resolve a single request
// and throw the state away.
//
// Requests carry a context.Context: cancellation (or a deadline) is mapped
// onto the solver's asynchronous interrupt, so an in-flight solve stops
// promptly and the Session remains reusable. What "best" means is
// pluggable per request through the Objective interface — NewestVersion
// (the default), MinimalChange against an installed repo.Profile, or
// custom weights via ObjectiveFunc. Failures are typed: *UnsatError
// (matching ErrUnsatisfiable and carrying the request's roots), ErrBudget,
// and the request context's error for cancellations.
//
// Architecture. The encoder is split into a per-universe skeleton and a
// per-request activation layer, both owned by Session — the long-lived
// warm path that the one-shot Concretize entry point also runs through:
//
//   - Skeleton (encoded once per Session, covering the whole universe):
//     each package p gets an "installed" variable y_p and one variable
//     x_{p,v} per available version v, with x_{p,v} -> y_p and
//     y_p -> OR_v x_{p,v} tying selection to installation; an at-most-one
//     pseudo-Boolean constraint over the x_{p,v} makes selection
//     exactly-one for installed packages; each dependency (q, R) of (p, v)
//     becomes the implication x_{p,v} -> OR {x_{q,w} : R.Satisfies(w)} (an
//     empty disjunction forbids x_{p,v}); each conflict (q, R) becomes
//     binary clauses !x_{p,v} | !x_{q,w} for every w of q inside R. With
//     no roots asserted the skeleton is satisfied by installing nothing,
//     so it can never drive the solver into a top-level conflict.
//
//   - Activation (per request): each root (p, R) is represented by a reusable
//     assumption literal a with permanent clauses a -> y_p and
//     a -> OR {x_{p,v} : R.Satisfies(v)}. Solving under the assumption
//     that the request's activation literals hold yields exactly the
//     cold-path formula, while learnt clauses, VSIDS activity, and saved
//     phases persist across requests.
//
// Optimization. A weighted pseudo-Boolean objective over the request's
// reachable packages prefers newest versions and fewer installed packages,
// layered lexicographically in Spack's root-first order: root version-lag
// dominates dependency version-lag, which dominates install count. Each
// request runs branch-and-bound: solve, record the model and its cost,
// then add a guarded tightening constraint "guard -> objective <= cost-1"
// and re-solve assuming the guard, until the solver proves no cheaper
// model exists. Guards are retired afterwards (fixed false and their PB
// constraints garbage-collected), so bounds from past requests never
// constrain, slow down, or leak memory into future ones.
package concretize

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// Root is one requested package with a version constraint.
type Root struct {
	Pkg   string
	Range version.Range
}

// ParseRoot parses a spec-like request string: "zlib" (any version),
// "zlib@1.2" (prefix constraint), or "zlib@1.2:1.4" (range).
func ParseRoot(s string) (Root, error) {
	name, rng, found := strings.Cut(s, "@")
	if name == "" {
		return Root{}, fmt.Errorf("concretize: empty package name in root %q", s)
	}
	if !found {
		return Root{Pkg: name, Range: version.AnyRange}, nil
	}
	r, err := version.ParseRange(rng)
	if err != nil {
		return Root{}, fmt.Errorf("concretize: root %q: %w", s, err)
	}
	return Root{Pkg: name, Range: r}, nil
}

// MustParseRoot is ParseRoot but panics on error; intended for tests.
func MustParseRoot(s string) Root {
	r, err := ParseRoot(s)
	if err != nil {
		panic(err)
	}
	return r
}

// String renders the root in the spec syntax ParseRoot accepts: bare
// package name for an unconstrained root, "pkg@range" otherwise.
func (r Root) String() string {
	if r.Range.IsAny() {
		return r.Pkg
	}
	return r.Pkg + "@" + r.Range.String()
}

// Options tunes the concretization search.
type Options struct {
	// MaxConflicts bounds the number of solver conflicts spent on this
	// request across all branch-and-bound iterations; <= 0 means unbounded.
	MaxConflicts int64

	// Objective ranks satisfying resolutions; nil selects DefaultObjective
	// (NewestVersion). Objectives with different Keys never share cached
	// answers.
	Objective Objective
}

// Stats reports search effort for one resolution request.
type Stats struct {
	Packages     int   // reachable packages in the request
	Variables    int   // solver variables allocated (session-wide)
	SolveCalls   int   // SAT solve invocations (including the final UNSAT proof)
	Improvements int   // models found (first model plus each strict improvement)
	Cost         int64 // objective value of the returned resolution
	Optimal      bool  // false only when the conflict budget expired early
	CacheHit     bool  // true when served from a Session's solution cache
	Conflicts    int64
	Decisions    int64
	Propagations int64
}

// Resolution is a concrete assignment of versions to installed packages.
type Resolution struct {
	Picks map[string]version.Version
	Stats Stats
}

// ErrUnsatisfiable is the sentinel matched (via errors.Is) by every
// *UnsatError; keep matching against it rather than the concrete type when
// only the yes/no answer matters.
var ErrUnsatisfiable = errors.New("concretize: unsatisfiable")

// ErrBudget is returned (wrapped) when the conflict budget expires before
// any model is found. If a model was already found, the request instead
// returns it with Stats.Optimal == false.
var ErrBudget = errors.New("concretize: conflict budget exhausted")

// UnsatError reports that no assignment satisfies the request, carrying
// the roots that were proven incompatible so serving layers can surface
// which request failed without string-parsing. It matches ErrUnsatisfiable
// under errors.Is.
type UnsatError struct {
	Roots []Root
}

// Error implements error.
func (e *UnsatError) Error() string {
	return "concretize: unsatisfiable: roots " + rootsString(e.Roots)
}

// Is reports sentinel equivalence: errors.Is(err, ErrUnsatisfiable)
// matches any *UnsatError.
func (e *UnsatError) Is(target error) bool { return target == ErrUnsatisfiable }

// unsatError builds an *UnsatError owning a copy of the roots.
func unsatError(roots []Root) error {
	return &UnsatError{Roots: append([]Root(nil), roots...)}
}

// canceledError wraps the request context's error (context.Canceled or
// context.DeadlineExceeded pass through errors.Is) after an interrupted
// solve.
func canceledError(err error) error {
	return fmt.Errorf("concretize: request canceled: %w", err)
}

// pkgVars holds the solver variables for one encoded package.
type pkgVars struct {
	pkg       *repo.Package
	installed int   // y_p
	vers      []int // x_{p,v}, parallel to pkg.Versions() (newest first)
}

// reachable collects every package reachable from the roots through any
// version's dependencies (a conservative over-approximation: version choice
// can only shrink the installed set). The result scopes a request's
// objective and decoded picks.
func reachable(u *repo.Universe, roots []Root) ([]string, error) {
	var order []string
	seen := map[string]bool{}
	var queue []string
	for _, r := range roots {
		if _, ok := u.Package(r.Pkg); !ok {
			return nil, fmt.Errorf("concretize: unknown root package %q", r.Pkg)
		}
		if !seen[r.Pkg] {
			seen[r.Pkg] = true
			queue = append(queue, r.Pkg)
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		order = append(order, name)
		p, _ := u.Package(name)
		for _, def := range p.Versions() {
			for _, d := range def.Deps {
				if _, ok := u.Package(d.Pkg); !ok {
					continue // encoded as an unbuildable version
				}
				if !seen[d.Pkg] {
					seen[d.Pkg] = true
					queue = append(queue, d.Pkg)
				}
			}
		}
	}
	return order, nil
}

// verify cross-checks a decoded resolution directly against the universe,
// independently of the SAT encoding. Any violation indicates an encoder or
// solver bug and is returned as an internal error.
func verify(u *repo.Universe, roots []Root, picks map[string]version.Version) error {
	for _, r := range roots {
		v, ok := picks[r.Pkg]
		if !ok {
			return fmt.Errorf("concretize: internal error: root %s not installed", r.Pkg)
		}
		if !r.Range.Satisfies(v) {
			return fmt.Errorf("concretize: internal error: root %s@%s outside %s", r.Pkg, v, r.Range)
		}
	}
	for name, v := range picks {
		p, ok := u.Package(name)
		if !ok {
			return fmt.Errorf("concretize: internal error: picked unknown package %s", name)
		}
		var def *repo.VersionDef
		for i := range p.Versions() {
			if p.Versions()[i].Version.Equal(v) {
				def = &p.Versions()[i]
				break
			}
		}
		if def == nil {
			return fmt.Errorf("concretize: internal error: %s@%s not in universe", name, v)
		}
		for _, d := range def.Deps {
			w, ok := picks[d.Pkg]
			if !ok {
				return fmt.Errorf("concretize: internal error: %s@%s dependency %s missing", name, v, d.Pkg)
			}
			if !d.Range.Satisfies(w) {
				return fmt.Errorf("concretize: internal error: %s@%s needs %s@%s, got %s",
					name, v, d.Pkg, d.Range, w)
			}
		}
		for _, c := range def.Conflicts {
			if w, ok := picks[c.Pkg]; ok && c.Range.Satisfies(w) {
				return fmt.Errorf("concretize: internal error: %s@%s conflicts with installed %s@%s",
					name, v, c.Pkg, w)
			}
		}
	}
	return nil
}

// Concretize is the one-shot convenience wrapper around the resolution
// stack: it resolves the requested roots against the universe under
// context.Background and the request's objective (DefaultObjective when
// opts.Objective is nil), then discards all solver state. It returns a
// *UnsatError when no assignment exists and wraps ErrBudget when the
// conflict budget expires before any model is found; a budget expiring
// after a model was found returns that model with Stats.Optimal == false.
//
// Internally this is the cold path: one one-shot Session (solution cache
// disabled, skeleton scoped to the request's reachable packages, so cost
// tracks the request rather than the catalog), meaning there is exactly
// one encoder and the warm and cold paths cannot drift apart. Callers
// answering a stream of requests over the same universe should hold a
// Session — or, at the serving tier, a resolve.Resolver — instead.
func Concretize(u *repo.Universe, roots []Root, opts Options) (*Resolution, error) {
	if len(roots) == 0 {
		return &Resolution{Picks: map[string]version.Version{}, Stats: Stats{Optimal: true}}, nil
	}
	scope, err := reachable(u, roots)
	if err != nil {
		return nil, err
	}
	sort.Strings(scope)
	return newSession(u, scope, SessionOptions{CacheSize: -1}).Resolve(context.Background(), roots, opts)
}

func rootsString(roots []Root) string {
	parts := make([]string, len(roots))
	for i, r := range roots {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}
