// Package concretize turns dependency-resolution requests over a
// repo.Universe into pseudo-Boolean SAT problems for internal/sat and
// decodes models back into concrete (package, version) selections. This is
// the concretizer layer of the paper's architecture: the solver plays the
// role clasp plays underneath Clingo in Spack, and this package plays the
// role of the encoding that Spack lowers its package DSL into.
//
// Encoding. Each reachable package p gets an "installed" variable y_p and
// one variable x_{p,v} per available version v:
//
//   - x_{p,v} -> y_p and y_p -> OR_v x_{p,v} tie selection to installation;
//   - an at-most-one pseudo-Boolean constraint over the x_{p,v} makes the
//     selection exactly-one for installed packages;
//   - each dependency (q, R) of (p, v) becomes the implication
//     x_{p,v} -> OR {x_{q,w} : R.Satisfies(w)} (an empty disjunction
//     forbids x_{p,v});
//   - each conflict (q, R) of (p, v) becomes binary clauses
//     !x_{p,v} | !x_{q,w} for every w of q inside R.
//
// Optimization. A weighted pseudo-Boolean objective prefers newest
// versions and fewer installed packages, layered lexicographically in
// Spack's root-first order: root version-lag dominates dependency
// version-lag, which dominates install count. Concretize runs
// branch-and-bound: solve,
// record the model and its cost, then add a guarded tightening constraint
// "guard -> objective <= cost-1" and re-solve under the assumption that the
// guard holds, until the solver proves no cheaper model exists.
package concretize

import (
	"errors"
	"fmt"
	"strings"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/sat"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// Root is one requested package with a version constraint.
type Root struct {
	Pkg   string
	Range version.Range
}

// ParseRoot parses a spec-like request string: "zlib" (any version),
// "zlib@1.2" (prefix constraint), or "zlib@1.2:1.4" (range).
func ParseRoot(s string) (Root, error) {
	name, rng, found := strings.Cut(s, "@")
	if name == "" {
		return Root{}, fmt.Errorf("concretize: empty package name in root %q", s)
	}
	if !found {
		return Root{Pkg: name, Range: version.AnyRange}, nil
	}
	r, err := version.ParseRange(rng)
	if err != nil {
		return Root{}, fmt.Errorf("concretize: root %q: %w", s, err)
	}
	return Root{Pkg: name, Range: r}, nil
}

// MustParseRoot is ParseRoot but panics on error; intended for tests.
func MustParseRoot(s string) Root {
	r, err := ParseRoot(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Options tunes the concretization search.
type Options struct {
	// MaxConflicts bounds the total number of solver conflicts across all
	// branch-and-bound iterations; <= 0 means unbounded.
	MaxConflicts int64
}

// Stats reports search effort for one Concretize call.
type Stats struct {
	Packages     int   // reachable packages encoded
	Variables    int   // solver variables allocated
	SolveCalls   int   // SAT solve invocations (including the final UNSAT proof)
	Improvements int   // models found (first model plus each strict improvement)
	Cost         int64 // objective value of the returned resolution
	Optimal      bool  // false only when the conflict budget expired early
	Conflicts    int64
	Decisions    int64
	Propagations int64
}

// Resolution is a concrete assignment of versions to installed packages.
type Resolution struct {
	Picks map[string]version.Version
	Stats Stats
}

// ErrUnsatisfiable is returned (wrapped) when no assignment satisfies the
// request.
var ErrUnsatisfiable = errors.New("concretize: unsatisfiable")

// ErrBudget is returned (wrapped) when the conflict budget expires before
// any model is found. If a model was already found, Concretize instead
// returns it with Stats.Optimal == false.
var ErrBudget = errors.New("concretize: conflict budget exhausted")

// pkgVars holds the solver variables for one encoded package.
type pkgVars struct {
	pkg       *repo.Package
	installed int   // y_p
	vers      []int // x_{p,v}, parallel to pkg.Versions() (newest first)
}

// encoder lowers a universe fragment into the solver.
type encoder struct {
	u     *repo.Universe
	s     *sat.Solver
	vars  map[string]*pkgVars
	order []string // deterministic BFS encoding order
}

// reachable collects every package reachable from the roots through any
// version's dependencies (a conservative over-approximation: version choice
// can only shrink the installed set).
func reachable(u *repo.Universe, roots []Root) ([]string, error) {
	var order []string
	seen := map[string]bool{}
	var queue []string
	for _, r := range roots {
		if _, ok := u.Package(r.Pkg); !ok {
			return nil, fmt.Errorf("concretize: unknown root package %q", r.Pkg)
		}
		if !seen[r.Pkg] {
			seen[r.Pkg] = true
			queue = append(queue, r.Pkg)
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		order = append(order, name)
		p, _ := u.Package(name)
		for _, def := range p.Versions() {
			for _, d := range def.Deps {
				if _, ok := u.Package(d.Pkg); !ok {
					continue // encoded as an unbuildable version below
				}
				if !seen[d.Pkg] {
					seen[d.Pkg] = true
					queue = append(queue, d.Pkg)
				}
			}
		}
	}
	return order, nil
}

// encode builds all variables and clauses. Clause additions may drive the
// solver into the top-level unsat state; that is fine — Solve reports it.
func (e *encoder) encode(roots []Root) {
	// Variables and selection structure first, so dependency clauses can
	// reference any reachable package.
	for _, name := range e.order {
		p, _ := e.u.Package(name)
		pv := &pkgVars{pkg: p, installed: e.s.NewVar()}
		for range p.Versions() {
			pv.vers = append(pv.vers, e.s.NewVar())
		}
		e.vars[name] = pv

		// x_{p,v} -> y_p, and y_p -> OR_v x_{p,v}.
		orClause := []sat.Lit{sat.Lit(pv.installed).Neg()}
		for _, x := range pv.vers {
			e.s.AddClause(sat.Lit(x).Neg(), sat.Lit(pv.installed))
			orClause = append(orClause, sat.Lit(x))
		}
		e.s.AddClause(orClause...)
		// at-most-one version.
		if len(pv.vers) > 1 {
			terms := make([]sat.PBTerm, len(pv.vers))
			for i, x := range pv.vers {
				terms[i] = sat.PBTerm{Lit: sat.Lit(x), Weight: 1}
			}
			e.s.AddPB(terms, 1)
		}
	}

	// Roots: the package must be installed at a version inside the range.
	for _, r := range roots {
		pv := e.vars[r.Pkg]
		e.s.AddClause(sat.Lit(pv.installed))
		allowed := []sat.Lit{}
		for i, def := range pv.pkg.Versions() {
			if r.Range.Satisfies(def.Version) {
				allowed = append(allowed, sat.Lit(pv.vers[i]))
			}
		}
		if len(allowed) == 0 {
			// No version matches: force top-level unsat via the empty clause.
			e.s.AddClause()
			continue
		}
		e.s.AddClause(allowed...)
	}

	// Dependencies and conflicts per (package, version).
	for _, name := range e.order {
		pv := e.vars[name]
		for i, def := range pv.pkg.Versions() {
			xi := sat.Lit(pv.vers[i])
			for _, d := range def.Deps {
				qv, ok := e.vars[d.Pkg]
				if !ok {
					// Unknown dependency package: this version is unbuildable.
					e.s.AddClause(xi.Neg())
					continue
				}
				impl := []sat.Lit{xi.Neg()}
				for j, qdef := range qv.pkg.Versions() {
					if d.Range.Satisfies(qdef.Version) {
						impl = append(impl, sat.Lit(qv.vers[j]))
					}
				}
				e.s.AddClause(impl...) // empty disjunction forbids x_{p,v}
			}
			for _, c := range def.Conflicts {
				qv, ok := e.vars[c.Pkg]
				if !ok {
					continue // conflict with a package that can never be installed
				}
				for j, qdef := range qv.pkg.Versions() {
					if c.Range.Satisfies(qdef.Version) {
						e.s.AddClause(xi.Neg(), sat.Lit(qv.vers[j]).Neg())
					}
				}
			}
		}
	}
}

// objective returns the weighted PB terms of the optimization objective and
// their total weight. The weights are layered lexicographically, mirroring
// Spack's root-first optimization order:
//
//  1. root version-lag: one step away from a root's newest version weighs
//     more than every dependency downgrade and install combined;
//  2. dependency version-lag: one step weighs more than installing every
//     reachable package, so the optimizer never downgrades a version just
//     to drop an optional package;
//  3. installed-package count (1 per y_p) breaks remaining ties in favor
//     of smaller installs.
func (e *encoder) objective(roots []Root) ([]sat.PBTerm, int64) {
	isRoot := map[string]bool{}
	for _, r := range roots {
		isRoot[r.Pkg] = true
	}
	depStep := int64(len(e.order)) + 1
	maxDepSum := int64(0)
	for _, name := range e.order {
		if !isRoot[name] {
			maxDepSum += depStep * int64(len(e.vars[name].vers)-1)
		}
	}
	rootStep := int64(len(e.order)) + maxDepSum + 1
	var terms []sat.PBTerm
	var total int64
	for _, name := range e.order {
		pv := e.vars[name]
		step := depStep
		if isRoot[name] {
			step = rootStep
		}
		terms = append(terms, sat.PBTerm{Lit: sat.Lit(pv.installed), Weight: 1})
		total++
		for i := 1; i < len(pv.vers); i++ {
			terms = append(terms, sat.PBTerm{Lit: sat.Lit(pv.vers[i]), Weight: int64(i) * step})
			total += int64(i) * step
		}
	}
	return terms, total
}

// cost evaluates the objective under the solver's current model.
func (e *encoder) cost(terms []sat.PBTerm) int64 {
	var c int64
	for _, t := range terms {
		if e.s.ValueOf(t.Lit.Var()) {
			c += t.Weight
		}
	}
	return c
}

// decode reads the current model into a picks map.
func (e *encoder) decode() (map[string]version.Version, error) {
	picks := make(map[string]version.Version)
	for _, name := range e.order {
		pv := e.vars[name]
		if !e.s.ValueOf(pv.installed) {
			continue
		}
		chosen := -1
		for i, x := range pv.vers {
			if e.s.ValueOf(x) {
				if chosen >= 0 {
					return nil, fmt.Errorf("concretize: internal error: %s selects two versions", name)
				}
				chosen = i
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("concretize: internal error: %s installed without a version", name)
		}
		picks[name] = pv.pkg.Versions()[chosen].Version
	}
	return picks, nil
}

// verify cross-checks a decoded resolution directly against the universe,
// independently of the SAT encoding. Any violation indicates an encoder or
// solver bug and is returned as an internal error.
func verify(u *repo.Universe, roots []Root, picks map[string]version.Version) error {
	for _, r := range roots {
		v, ok := picks[r.Pkg]
		if !ok {
			return fmt.Errorf("concretize: internal error: root %s not installed", r.Pkg)
		}
		if !r.Range.Satisfies(v) {
			return fmt.Errorf("concretize: internal error: root %s@%s outside %s", r.Pkg, v, r.Range)
		}
	}
	for name, v := range picks {
		p, ok := u.Package(name)
		if !ok {
			return fmt.Errorf("concretize: internal error: picked unknown package %s", name)
		}
		var def *repo.VersionDef
		for i := range p.Versions() {
			if p.Versions()[i].Version.Equal(v) {
				def = &p.Versions()[i]
				break
			}
		}
		if def == nil {
			return fmt.Errorf("concretize: internal error: %s@%s not in universe", name, v)
		}
		for _, d := range def.Deps {
			w, ok := picks[d.Pkg]
			if !ok {
				return fmt.Errorf("concretize: internal error: %s@%s dependency %s missing", name, v, d.Pkg)
			}
			if !d.Range.Satisfies(w) {
				return fmt.Errorf("concretize: internal error: %s@%s needs %s@%s, got %s",
					name, v, d.Pkg, d.Range, w)
			}
		}
		for _, c := range def.Conflicts {
			if w, ok := picks[c.Pkg]; ok && c.Range.Satisfies(w) {
				return fmt.Errorf("concretize: internal error: %s@%s conflicts with installed %s@%s",
					name, v, c.Pkg, w)
			}
		}
	}
	return nil
}

// Concretize resolves the requested roots against the universe, returning
// the optimal (newest-version-preferring, minimal-install) resolution. It
// wraps ErrUnsatisfiable when no assignment exists and ErrBudget when the
// conflict budget expires before any model is found; a budget expiring
// after a model was found returns that model with Stats.Optimal == false.
func Concretize(u *repo.Universe, roots []Root, opts Options) (*Resolution, error) {
	if len(roots) == 0 {
		return &Resolution{Picks: map[string]version.Version{}, Stats: Stats{Optimal: true}}, nil
	}
	order, err := reachable(u, roots)
	if err != nil {
		return nil, err
	}
	e := &encoder{u: u, s: sat.New(), vars: map[string]*pkgVars{}, order: order}
	e.s.MaxConflicts = opts.MaxConflicts
	e.encode(roots)
	objTerms, total := e.objective(roots)

	stats := Stats{Packages: len(order)}
	var best map[string]version.Version
	var bestCost int64
	var assumps []sat.Lit

	for {
		st := e.s.Solve(assumps...)
		stats.SolveCalls++
		switch st {
		case sat.Unknown:
			if best == nil {
				return nil, fmt.Errorf("%w after %d conflicts", ErrBudget, e.s.Conflicts)
			}
			return finish(u, roots, e, best, bestCost, stats, false)
		case sat.Unsat:
			if best == nil {
				return nil, fmt.Errorf("%w: roots %s", ErrUnsatisfiable, rootsString(roots))
			}
			return finish(u, roots, e, best, bestCost, stats, true)
		}
		picks, err := e.decode()
		if err != nil {
			return nil, err
		}
		best, bestCost = picks, e.cost(objTerms)
		stats.Improvements++
		if bestCost == 0 {
			return finish(u, roots, e, best, bestCost, stats, true)
		}
		// Tighten: guard -> objective <= bestCost-1, then assume the guard.
		// Encoded as objective + (total-bestCost+1)*guard <= total, which is
		// vacuous while the guard is free, so the solver stays reusable.
		// The previous round's guard is retired (fixed false) so superseded
		// bounds stop feeding VSIDS and propagation.
		if len(assumps) == 1 {
			if !e.s.AddClause(assumps[0].Neg()) {
				return finish(u, roots, e, best, bestCost, stats, true)
			}
		}
		guard := e.s.NewVar()
		terms := make([]sat.PBTerm, len(objTerms), len(objTerms)+1)
		copy(terms, objTerms)
		terms = append(terms, sat.PBTerm{Lit: sat.Lit(guard), Weight: total - bestCost + 1})
		if !e.s.AddPB(terms, total) {
			// Tightening is impossible at the top level: best is optimal.
			return finish(u, roots, e, best, bestCost, stats, true)
		}
		assumps = []sat.Lit{sat.Lit(guard)}
	}
}

func finish(u *repo.Universe, roots []Root, e *encoder, picks map[string]version.Version,
	cost int64, stats Stats, optimal bool) (*Resolution, error) {
	if err := verify(u, roots, picks); err != nil {
		return nil, err
	}
	stats.Cost = cost
	stats.Optimal = optimal
	stats.Variables = e.s.NumVars()
	stats.Conflicts = e.s.Conflicts
	stats.Decisions = e.s.Decisions
	stats.Propagations = e.s.Propagations
	return &Resolution{Picks: picks, Stats: stats}, nil
}

func rootsString(roots []Root) string {
	parts := make([]string, len(roots))
	for i, r := range roots {
		if r.Range.IsAny() {
			parts[i] = r.Pkg
		} else {
			parts[i] = r.Pkg + "@" + r.Range.String()
		}
	}
	return strings.Join(parts, ", ")
}
