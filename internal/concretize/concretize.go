// Package concretize turns dependency-resolution requests over a
// repo.Universe into pseudo-Boolean SAT problems for internal/sat and
// decodes models back into concrete (package, version) selections. This is
// the concretizer layer of the paper's architecture: the solver plays the
// role clasp plays underneath Clingo in Spack, and this package plays the
// role of the encoding that Spack lowers its package DSL into.
//
// Most callers should not import this package directly: the public serving
// surface is the resolve package (version -> repo -> sat -> concretize ->
// resolve), whose Resolver interface fronts one Session
// (resolve.SessionResolver) or races several differently-configured ones
// (resolve.PortfolioResolver). Within this package, Session is the
// long-lived warm path and the direct Concretize function is the one-shot
// convenience wrapper for scripts and tests that resolve a single request
// and throw the state away.
//
// Requests carry a context.Context: cancellation (or a deadline) is mapped
// onto the solver's asynchronous interrupt, so an in-flight solve stops
// promptly and the Session remains reusable. What "best" means is
// pluggable per request through the Objective interface — NewestVersion
// (the default), MinimalChange against an installed repo.Profile, or
// custom weights via ObjectiveFunc. Failures are typed: *UnknownPackageError
// (a root naming neither a package nor a virtual), *UnsatError (matching
// ErrUnsatisfiable and carrying the request's roots), ErrBudget, and the
// request context's error for cancellations.
//
// Architecture. Every requirement — a dependency or conflict target, a
// condition trigger, a request root — is lowered through one interface,
// repo.Candidates: the concrete (package, version) selections able to
// satisfy it, whether the name is a concrete package or a virtual provided
// by competing packages. The encoder is split into a per-universe skeleton
// and a per-request activation layer, both owned by Session — the
// long-lived warm path that the one-shot Concretize entry point also runs
// through:
//
//   - Skeleton (encoded once per Session, covering the whole universe):
//     each package p gets an "installed" variable y_p and one variable
//     x_{p,v} per available version v, with x_{p,v} -> y_p and
//     y_p -> OR_v x_{p,v} tying selection to installation; an at-most-one
//     pseudo-Boolean constraint over the x_{p,v} makes selection
//     exactly-one for installed packages. Each virtual gets a "needed"
//     variable y_virt with the provider-selection clause
//     y_virt -> OR {x_{q,w} : (q,w) provides it}. Each dependency (t, R)
//     of (p, v) becomes the implication
//     x_{p,v} -> OR {x_{c} : candidate c of t with R.Satisfies(c.Matched)}
//     (an empty disjunction forbids x_{p,v}) — for a virtual target the
//     candidates are its providers filtered by provided version; each
//     conflict (t, R) becomes binary clauses !x_{p,v} | !x_{c} per matching
//     candidate. A conditional declaration is guarded behind its trigger
//     literal z — a memoized support variable with x_{c} -> z for every
//     candidate of the trigger inside its range — so the clause constrains
//     only in models that actually select the trigger:
//     x_{p,v} AND z -> (dep-or-conflict clause). Support literals are
//     allocated with sat.Solver.NewAuxVar, so the solver defines them by
//     propagation but never branches on them: richer declaration forms do
//     not widen the search space. With no roots asserted the skeleton is
//     satisfied by installing nothing, so it can never drive the solver
//     into a top-level conflict.
//
//   - Activation (per request): each root (t, R) is represented by a
//     reusable assumption literal a with permanent clauses a -> y_t (the
//     package's installed variable, or the virtual's needed variable) and
//     a -> OR {x_{c} : candidate c of t inside R}. Solving under the
//     assumption that the request's activation literals hold yields exactly
//     the cold-path formula, while learnt clauses, VSIDS activity, and
//     saved phases persist across requests.
//
// Optimization. A weighted pseudo-Boolean objective over the request's
// reachable packages prefers newest versions and fewer installed packages,
// layered lexicographically in Spack's root-first order: root version-lag
// dominates dependency version-lag, which dominates install count. A root
// naming a virtual weights its provider packages at root rank, so a
// resolved virtual costs what its chosen provider costs. Each request runs
// branch-and-bound between the incumbent's cost and a proven lower bound:
// solve, record the model and its cost, then enforce "objective <= target"
// for the next round and re-solve, until the bounds meet. The bound is ONE
// guarded PB constraint per request — encoded objective + total*guard <=
// total + target, vacuous while the guard is unassumed — installed once
// and strengthened in place with sat.TightenPB as the target drops, so a
// tightening round allocates no solver variable and no constraint slot.
// The target schedule is sat.Config.Descent: linear stepping below the
// incumbent (DescentLinear, classic and optimal when the first model is
// already best), binary-search midpoints (DescentBinary, O(log range)
// rounds from arbitrarily bad incumbents), or adaptive (the default:
// linear on a shape's first visit, binary once a bound is banked). Guards
// are retired at request end (fixed false and their PB constraints
// garbage-collected), so bounds from past requests never constrain, slow
// down, or leak memory into future ones.
//
// Warm bound banking. A Session additionally memoizes, per request shape
// (objective key + canonical roots), the reachability order, the lowered
// objective terms, and the proven lower bound on the optimal cost. The
// bound is a fact about the formula under that shape's assumptions —
// later requests only add learnt clauses, never new constraints on the
// shape — so a repeat request that finds a model matching the banked
// bound is done after one SAT round, with no refutation and no bound
// constraint at all. This is what keeps a warm session strictly faster
// than a cold solve even on request streams that rotate roots and
// objectives (whose saved-phase cross-pollution otherwise hands descent a
// terrible first incumbent).
//
// Live universes. Session.Extend (extend.go) applies a repo.Delta to the
// bound universe and grows the encoded skeleton in place — new variables
// and clauses are appended, requirement clauses whose candidate sets
// widened are detached and re-emitted over the current candidates, and
// parked declarations (dead dependency targets, dormant triggers, vacuous
// conflicts) are revived — instead of rebuilding the session. Learnt
// clauses are dropped once per delta (widening invalidates them), while
// VSIDS activity and saved phases persist. Invalidation of the solution
// cache and the bound memo is delta-scoped: each entry records the names
// its request could reach, and only entries intersecting the delta's
// touched set are evicted, so a request untouched by a delta keeps its
// cached answer with zero new solver work. Stats.Epoch reports the
// universe epoch an answer was computed at.
//
// Lazy materialization. SessionOptions.Lazy (lazy.go) defers the skeleton
// entirely: construction encodes nothing, and each request materializes
// clauses only for its reachable subgraph — the closure of its roots over
// dependency, conflict, trigger, and provides edges — on first contact.
// Against registry-shaped universes (thousands of packages, sparse
// per-root closures) this shrinks the solver formula and session footprint
// by the catalog-to-working-set ratio while returning answers identical to
// an eager session's: materialization is purely additive once closed, and
// the one hazard — re-emitting a requirement clause over a widened
// candidate set while stale learnt clauses pin its old support — is fenced
// by the same ForgetLearnts discipline Extend uses. Deltas touching only
// unmaterialized names park: the name is dirty-marked and its clauses
// simply materialize post-delta when first reached, with no learnt-clause
// drop and no cache sweep beyond the reach-scoped invalidation above.
// EncodingStats reports coverage (materialized packages and solver
// variables against the bound universe) for observability.
package concretize

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/sat"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// VirtualPrefix is the explicit namespace prefix for roots that must name a
// virtual ("virtual:mpi@2:"). A bare name resolves package-first, then
// virtual; the prefix skips the package namespace entirely.
const VirtualPrefix = "virtual:"

// Root is one requested target with a version constraint. The target is a
// package name or — when Virtual is set, or when the bare name only exists
// as a virtual — a virtual name satisfied by any provider whose provided
// version lies in Range.
type Root struct {
	Pkg     string
	Range   version.Range
	Virtual bool // explicit virtual: namespace; the name must be a virtual
}

// ParseRoot parses a spec-like request string: "zlib" (any version),
// "zlib@1.2" (prefix constraint), "zlib@1.2:1.4" (range), or the virtual
// namespace form "virtual:mpi@2:" (any provider providing mpi at 2 or
// newer).
func ParseRoot(s string) (Root, error) {
	name, rng, found := strings.Cut(s, "@")
	virtual := false
	if rest, ok := strings.CutPrefix(name, VirtualPrefix); ok {
		virtual = true
		name = rest
	}
	if name == "" {
		return Root{}, fmt.Errorf("concretize: empty package name in root %q", s)
	}
	if !found {
		return Root{Pkg: name, Range: version.AnyRange, Virtual: virtual}, nil
	}
	r, err := version.ParseRange(rng)
	if err != nil {
		return Root{}, fmt.Errorf("concretize: root %q: %w", s, err)
	}
	return Root{Pkg: name, Range: r, Virtual: virtual}, nil
}

// MustParseRoot is ParseRoot but panics on error; intended for tests.
func MustParseRoot(s string) Root {
	r, err := ParseRoot(s)
	if err != nil {
		panic(err)
	}
	return r
}

// String renders the root in the spec syntax ParseRoot accepts: bare
// target name for an unconstrained root, "pkg@range" otherwise, with the
// "virtual:" prefix when the root is namespaced.
func (r Root) String() string {
	name := r.Pkg
	if r.Virtual {
		name = VirtualPrefix + name
	}
	if r.Range.IsAny() {
		return name
	}
	return name + "@" + r.Range.String()
}

// key renders the root's canonical identity: the activation-memo and
// solution-cache key component. Unlike String it always includes the range,
// so "pkg" and "pkg@:" (identical constraints) share one key.
func (r Root) key() string {
	name := r.Pkg
	if r.Virtual {
		name = VirtualPrefix + name
	}
	return name + "@" + r.Range.String()
}

// Options tunes the concretization search.
type Options struct {
	// MaxConflicts bounds the number of solver conflicts spent on this
	// request across all branch-and-bound iterations; <= 0 means unbounded.
	MaxConflicts int64

	// Objective ranks satisfying resolutions; nil selects DefaultObjective
	// (NewestVersion). Objectives with different Keys never share cached
	// answers.
	Objective Objective
}

// Stats reports search effort for one resolution request.
type Stats struct {
	Packages     int   // reachable packages in the request
	Variables    int   // solver variables allocated (session-wide)
	SolveCalls   int   // SAT solve invocations (including the final UNSAT proof)
	Improvements int   // models found (first model plus each strict improvement)
	Cost         int64 // objective value of the returned resolution
	Optimal      bool  // false only when the conflict budget expired early

	// SolutionCacheHit marks answers served from a Session's solution
	// cache without touching the solver; BoundMemoHit marks solves that
	// reused the request shape's banked reachability/objective/bound
	// facts. Together they make churn-invalidation behavior observable:
	// after a delta, untouched shapes keep reporting hits while touched
	// shapes re-solve.
	SolutionCacheHit bool
	BoundMemoHit     bool

	// Coalesced marks an answer shared from another request's in-flight
	// solve. The concretizer never sets it: it belongs to serving tiers
	// (serve.Server) that collapse identical concurrent requests onto one
	// leader solve and stamp each follower's copy.
	Coalesced bool

	// Epoch is the universe epoch the answer was computed at (0 for a
	// never-mutated universe). Cached answers report the epoch they were
	// solved at, which delta-scoped invalidation guarantees is still
	// semantically current for their request shape.
	Epoch repo.Epoch

	Conflicts    int64
	Decisions    int64
	Propagations int64
}

// Resolution is a concrete assignment of versions to installed packages.
type Resolution struct {
	Picks map[string]version.Version
	Stats Stats
}

// ErrUnsatisfiable is the sentinel matched (via errors.Is) by every
// *UnsatError; keep matching against it rather than the concrete type when
// only the yes/no answer matters.
var ErrUnsatisfiable = errors.New("concretize: unsatisfiable")

// ErrBudget is returned (wrapped) when the conflict budget expires before
// any model is found. If a model was already found, the request instead
// returns it with Stats.Optimal == false.
var ErrBudget = errors.New("concretize: conflict budget exhausted")

// UnsatError reports that no assignment satisfies the request, carrying
// the roots that were proven incompatible so serving layers can surface
// which request failed without string-parsing. It matches ErrUnsatisfiable
// under errors.Is.
type UnsatError struct {
	Roots []Root
}

// Error implements error.
func (e *UnsatError) Error() string {
	return "concretize: unsatisfiable: roots " + rootsString(e.Roots)
}

// Is reports sentinel equivalence: errors.Is(err, ErrUnsatisfiable)
// matches any *UnsatError.
func (e *UnsatError) Is(target error) bool { return target == ErrUnsatisfiable }

// unsatError builds an *UnsatError owning a copy of the roots.
func unsatError(roots []Root) error {
	return &UnsatError{Roots: append([]Root(nil), roots...)}
}

// UnknownPackageError reports a request root naming a target the universe
// does not carry: neither a concrete package nor a virtual with a provider
// (or, for an explicit "virtual:" root, not a virtual). It is a request
// error, distinct from unsatisfiability, and is never cached.
type UnknownPackageError struct {
	Pkg     string
	Virtual bool // the root used the explicit virtual: namespace
}

// Error implements error.
func (e *UnknownPackageError) Error() string {
	if e.Virtual {
		return fmt.Sprintf("concretize: unknown virtual %q", e.Pkg)
	}
	return fmt.Sprintf("concretize: unknown package %q", e.Pkg)
}

// canceledError wraps the request context's error (context.Canceled or
// context.DeadlineExceeded pass through errors.Is) after an interrupted
// solve.
func canceledError(err error) error {
	return fmt.Errorf("concretize: request canceled: %w", err)
}

// pkgVars holds the solver variables for one encoded package, plus the
// handles to the clauses a skeleton extension re-emits when the package
// gains versions: the y_p -> OR_v x_{p,v} disjunction and the at-most-one
// PB row, both widened by detach (remove) + re-add.
type pkgVars struct {
	pkg       *repo.Package
	installed int   // y_p
	vers      []int // x_{p,v}, parallel to pkg.Versions() (newest first)

	orRef  sat.ClauseRef // y_p -> OR_v x_{p,v}
	amoRef sat.PBRef     // at-most-one over vers (zero when < 2 versions)
}

// virtVars holds the solver variables for one encoded virtual: the "needed"
// variable backing provider-selection clauses and root activations, plus
// the handle to the provider-selection clause for widening.
type virtVars struct {
	needed int           // y_virt
	selRef sat.ClauseRef // y_virt -> OR providers
}

// rootCandidates is the single place root namespace rules live: a bare
// name resolves package-first and falls back to the virtual namespace, an
// explicit virtual: root must name a virtual, and in either case only
// candidates whose matched version lies in the root's range can satisfy
// it. Every root consumer — the reachability walk, the activation encoder,
// and objective root weighting — resolves through this helper, so the
// layers cannot drift on which concrete packages a root may bind to. ok is
// false when the universe knows the name in no namespace the root may use;
// a known name whose range matches nothing returns an empty (satisfiable-
// by-nothing, i.e. unsatisfiable) candidate set with ok true.
func rootCandidates(u *repo.Universe, r Root) ([]repo.Candidate, bool) {
	if r.Virtual && !u.IsVirtual(r.Pkg) {
		return nil, false
	}
	cands, ok := u.Candidates(r.Pkg)
	if !ok {
		return nil, false
	}
	out := make([]repo.Candidate, 0, len(cands))
	for _, c := range cands {
		if r.Range.Satisfies(c.Matched) {
			out = append(out, c)
		}
	}
	return out, true
}

// rootTargets resolves a root to the concrete package names it can
// install: the package itself, or the providers of a virtual able to
// satisfy the root's range. Unknown targets return a typed
// *UnknownPackageError.
func rootTargets(u *repo.Universe, r Root) ([]string, error) {
	cands, ok := rootCandidates(u, r)
	if !ok {
		return nil, &UnknownPackageError{Pkg: r.Pkg, Virtual: r.Virtual}
	}
	names := make([]string, 0, len(cands))
	for _, c := range cands { // canonical order: grouped by package name
		if len(names) == 0 || names[len(names)-1] != c.Pkg {
			names = append(names, c.Pkg)
		}
	}
	return names, nil
}

// reachable collects every package reachable from the roots through any
// version's dependencies (a conservative over-approximation: version choice
// can only shrink the installed set). Virtual edges traverse to every
// provider; conditional dependencies traverse regardless of their trigger
// (a trigger can only deactivate a dependency, never add targets). Trigger
// packages themselves are not traversed: a trigger outside the reachable
// set can never be installed, so the declarations it guards stay dormant.
// The order scopes a request's objective and decoded picks.
//
// The second result is the request shape's recorded reach set — the name
// universe whose growth can change this shape's answer, which delta-scoped
// invalidation intersects with each delta's touched names. It holds the
// reachable packages plus every name a traversed dependency or root
// targets, even when the name currently matches nothing (an unknown or
// empty-range target: a delta adding it must invalidate). Conflict targets
// and condition triggers are deliberately absent: a trigger or conflict
// candidate outside the reach set can never be installed in a
// cost-relevant model (every optimal model extends with the complement
// uninstalled), so growth there cannot change the shape's answer.
func reachable(u *repo.Universe, roots []Root) ([]string, map[string]bool, error) {
	var order []string
	seen := map[string]bool{}
	reach := map[string]bool{}
	var queue []string
	enqueue := func(pkgs []string) {
		for _, name := range pkgs {
			reach[name] = true
			if !seen[name] {
				seen[name] = true
				queue = append(queue, name)
			}
		}
	}
	for _, r := range roots {
		reach[r.Pkg] = true // a delta growing the root's own name must invalidate
		targets, err := rootTargets(u, r)
		if err != nil {
			return nil, nil, err
		}
		enqueue(targets)
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		order = append(order, name)
		p, _ := u.Package(name)
		for _, def := range p.Versions() {
			for _, d := range def.Deps {
				// Unknown targets are encoded as unbuildable versions and
				// contribute nothing to the closure (TargetPackages is nil) —
				// but they are recorded: a delta introducing the name revives
				// the dependency and must invalidate this shape.
				reach[d.Pkg] = true
				enqueue(u.TargetPackages(d.Pkg))
			}
		}
	}
	return order, reach, nil
}

// pickSatisfies reports whether the picks contain a selection satisfying a
// requirement on name at rng: the package itself at a version in rng, or —
// for a virtual — any picked provider whose provided version lies in rng.
// It runs per declaration on every verified resolution, so the concrete
// case is a plain map lookup and the virtual case walks the universe-owned
// provider index without allocating.
func pickSatisfies(u *repo.Universe, picks map[string]version.Version, name string, rng version.Range) bool {
	if _, ok := u.Package(name); ok {
		v, picked := picks[name]
		return picked && rng.Satisfies(v)
	}
	provs, ok := u.Virtual(name)
	if !ok {
		return false
	}
	for _, pr := range provs {
		if v, picked := picks[pr.Pkg]; picked && v.Equal(pr.Version) && rng.Satisfies(pr.Provided) {
			return true
		}
	}
	return false
}

// condActive reports whether a declaration's condition holds under the
// picks (true for the unconditional zero Condition).
func condActive(u *repo.Universe, picks map[string]version.Version, w repo.Condition) bool {
	if w.IsZero() {
		return true
	}
	return pickSatisfies(u, picks, w.Pkg, w.Range)
}

// verify cross-checks a decoded resolution directly against the universe,
// independently of the SAT encoding: roots (package or virtual) must be
// satisfied, every active dependency of every pick must be satisfied by a
// candidate, and no active conflict may hold. Any violation indicates an
// encoder or solver bug and is returned as an internal error.
func verify(u *repo.Universe, roots []Root, picks map[string]version.Version) error {
	for _, r := range roots {
		if !pickSatisfies(u, picks, r.Pkg, r.Range) {
			return fmt.Errorf("concretize: internal error: root %s not satisfied", r)
		}
	}
	for name, v := range picks {
		p, ok := u.Package(name)
		if !ok {
			return fmt.Errorf("concretize: internal error: picked unknown package %s", name)
		}
		var def *repo.VersionDef
		for i := range p.Versions() {
			if p.Versions()[i].Version.Equal(v) {
				def = &p.Versions()[i]
				break
			}
		}
		if def == nil {
			return fmt.Errorf("concretize: internal error: %s@%s not in universe", name, v)
		}
		for _, d := range def.Deps {
			if !condActive(u, picks, d.When) {
				continue
			}
			if !pickSatisfies(u, picks, d.Pkg, d.Range) {
				return fmt.Errorf("concretize: internal error: %s@%s needs %s@%s %s, unsatisfied",
					name, v, d.Pkg, d.Range, d.When)
			}
		}
		for _, c := range def.Conflicts {
			if !condActive(u, picks, c.When) {
				continue
			}
			if pickSatisfies(u, picks, c.Pkg, c.Range) {
				return fmt.Errorf("concretize: internal error: %s@%s conflicts with installed %s@%s %s",
					name, v, c.Pkg, c.Range, c.When)
			}
		}
	}
	return nil
}

// Concretize is the one-shot convenience wrapper around the resolution
// stack: it resolves the requested roots against the universe under
// context.Background and the request's objective (DefaultObjective when
// opts.Objective is nil), then discards all solver state. It returns a
// *UnsatError when no assignment exists and wraps ErrBudget when the
// conflict budget expires before any model is found; a budget expiring
// after a model was found returns that model with Stats.Optimal == false.
//
// Internally this is the cold path: one one-shot Session (solution cache
// disabled, skeleton scoped to the request's reachable packages, so cost
// tracks the request rather than the catalog), meaning there is exactly
// one encoder and the warm and cold paths cannot drift apart. Callers
// answering a stream of requests over the same universe should hold a
// Session — or, at the serving tier, a resolve.Resolver — instead; that
// is also the context-aware path (Session.Resolve), while this wrapper's
// only bound is the opts.MaxConflicts budget.
//
// goarxivlint:blocking cancel=none
func Concretize(u *repo.Universe, roots []Root, opts Options) (*Resolution, error) {
	if len(roots) == 0 {
		return &Resolution{Picks: map[string]version.Version{}, Stats: Stats{Optimal: true}}, nil
	}
	scope, _, err := reachable(u, roots)
	if err != nil {
		return nil, err
	}
	sort.Strings(scope)
	return newSession(u, scope, SessionOptions{CacheSize: -1}, false).Resolve(context.Background(), roots, opts)
}

func rootsString(roots []Root) string {
	parts := make([]string, len(roots))
	for i, r := range roots {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}
