package concretize

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/sat"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// oldestObjective prefers the oldest version of every package: a pure
// custom-weights objective used to prove the objective actually steers
// the optimizer.
var oldestObjective = ObjectiveFunc{
	ID: "oldest",
	Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
		costs := make(map[string]PkgCost, len(req.Order))
		for _, name := range req.Order {
			p, _ := req.Universe.Package(name)
			n := p.NumVersions()
			pc := PkgCost{Install: 1, Version: make([]int64, n)}
			for i := 0; i < n; i++ {
				pc.Version[i] = int64(n - 1 - i) // newest costs most
			}
			costs[name] = pc
		}
		return costs, nil
	},
}

func TestExplicitNewestMatchesDefault(t *testing.T) {
	u, root := repo.SynthDense(24, 6, 3, 11)
	roots := []Root{{Pkg: root}}
	def, err := Concretize(u, roots, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Concretize(u, roots, Options{Objective: NewestVersion{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def.Picks, exp.Picks) || def.Stats.Cost != exp.Stats.Cost {
		t.Fatalf("explicit NewestVersion differs from default:\n%v (cost %d)\n%v (cost %d)",
			def.Picks, def.Stats.Cost, exp.Picks, exp.Stats.Cost)
	}
}

func TestCustomObjectiveSteersPicks(t *testing.T) {
	u := repo.New()
	u.Add("app", "2.0", repo.Dep("lib", ":"))
	u.Add("app", "1.0", repo.Dep("lib", ":"))
	u.Add("lib", "2.0")
	u.Add("lib", "1.0")
	roots := []Root{MustParseRoot("app")}

	newest, err := Concretize(u, roots, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if newest.Picks["app"].String() != "2.0" || newest.Picks["lib"].String() != "2.0" {
		t.Fatalf("newest picks = %v", newest.Picks)
	}

	oldest, err := Concretize(u, roots, Options{Objective: oldestObjective})
	if err != nil {
		t.Fatal(err)
	}
	if oldest.Picks["app"].String() != "1.0" || oldest.Picks["lib"].String() != "1.0" {
		t.Fatalf("oldest picks = %v", oldest.Picks)
	}
}

func TestMinimalChangeKeepsInstalledVersions(t *testing.T) {
	u := repo.New()
	u.Add("app", "2.0", repo.Dep("lib", ":"))
	u.Add("app", "1.0", repo.Dep("lib", ":"))
	u.Add("lib", "3.0")
	u.Add("lib", "2.0")
	u.Add("lib", "1.0")
	roots := []Root{MustParseRoot("app")}
	installed := repo.Profile{"lib": version.MustParse("2.0")}

	res, err := Concretize(u, roots, Options{Objective: MinimalChange(installed)})
	if err != nil {
		t.Fatal(err)
	}
	// app is a new install either way; lib must stay at its installed 2.0
	// (NewestVersion would move it to 3.0), and among app's versions the
	// newest wins the tiebreak.
	if res.Picks["lib"].String() != "2.0" {
		t.Fatalf("lib = %s, want installed 2.0 kept", res.Picks["lib"])
	}
	if res.Picks["app"].String() != "2.0" {
		t.Fatalf("app = %s, want 2.0 (newest tiebreak)", res.Picks["app"])
	}
}

func TestMinimalChangeAvoidsRemovals(t *testing.T) {
	// app@2.0 pulls libnew, app@1.0 pulls libold. With {app@1.0, libold}
	// installed, the zero-change answer keeps app@1.0; the newest
	// objective would upgrade to app@2.0, dropping libold for libnew.
	u := repo.New()
	u.Add("app", "2.0", repo.Dep("libnew", ":"))
	u.Add("app", "1.0", repo.Dep("libold", ":"))
	u.Add("libnew", "1.0")
	u.Add("libold", "1.0")
	roots := []Root{MustParseRoot("app")}

	newest, err := Concretize(u, roots, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if newest.Picks["app"].String() != "2.0" {
		t.Fatalf("newest app = %v", newest.Picks)
	}

	installed := repo.Profile{
		"app":    version.MustParse("1.0"),
		"libold": version.MustParse("1.0"),
	}
	keep, err := Concretize(u, roots, Options{Objective: MinimalChange(installed)})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"app": "1.0", "libold": "1.0"}
	if len(keep.Picks) != len(want) {
		t.Fatalf("picks = %v, want %v", keep.Picks, want)
	}
	for pkg, v := range want {
		if keep.Picks[pkg].String() != v {
			t.Fatalf("picks = %v, want %v", keep.Picks, want)
		}
	}
}

func TestMinimalChangeFixpoint(t *testing.T) {
	// Resolving the same roots against a profile that IS a previous
	// optimal resolution must return exactly that resolution (zero
	// changes are achievable, and zero changes pin every pick), across
	// seeded universes.
	for seed := int64(0); seed < 12; seed++ {
		u, root := repo.SynthDense(18, 5, 3, seed)
		roots := []Root{{Pkg: root}}
		base, err := Concretize(u, roots, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		again, err := Concretize(u, roots, Options{Objective: MinimalChange(repo.ProfileOf(base.Picks))})
		if err != nil {
			t.Fatalf("seed %d: minimal-change: %v", seed, err)
		}
		if !reflect.DeepEqual(base.Picks, again.Picks) {
			t.Fatalf("seed %d: minimal-change against own profile moved picks:\n%v\n%v",
				seed, base.Picks, again.Picks)
		}
	}
}

func TestObjectiveCacheSeparation(t *testing.T) {
	u := repo.New()
	u.Add("app", "2.0")
	u.Add("app", "1.0")
	sess := NewSession(u, SessionOptions{})
	roots := []Root{MustParseRoot("app")}
	ctx := context.Background()

	newest, err := sess.Resolve(ctx, roots, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oldest, err := sess.Resolve(ctx, roots, Options{Objective: oldestObjective})
	if err != nil {
		t.Fatal(err)
	}
	if newest.Picks["app"].String() != "2.0" || oldest.Picks["app"].String() != "1.0" {
		t.Fatalf("newest=%v oldest=%v", newest.Picks, oldest.Picks)
	}
	if sess.CacheLen() != 2 {
		t.Fatalf("CacheLen = %d, want 2 (one per objective)", sess.CacheLen())
	}
	// Repeats hit their own objective's entry.
	n2, err := sess.Resolve(ctx, roots, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !n2.Stats.SolutionCacheHit || n2.Picks["app"].String() != "2.0" {
		t.Fatalf("newest repeat: hit=%v picks=%v", n2.Stats.SolutionCacheHit, n2.Picks)
	}
	o2, err := sess.Resolve(ctx, roots, Options{Objective: oldestObjective})
	if err != nil {
		t.Fatal(err)
	}
	if !o2.Stats.SolutionCacheHit || o2.Picks["app"].String() != "1.0" {
		t.Fatalf("oldest repeat: hit=%v picks=%v", o2.Stats.SolutionCacheHit, o2.Picks)
	}
}

func TestMinimalChangeKeyDependsOnProfile(t *testing.T) {
	a := MinimalChange(repo.Profile{"x": version.MustParse("1.0")})
	b := MinimalChange(repo.Profile{"x": version.MustParse("2.0")})
	if a.Key() == b.Key() {
		t.Fatal("different profiles must produce different objective keys")
	}
	c := MinimalChange(repo.Profile{"x": version.MustParse("1.0")})
	if a.Key() != c.Key() {
		t.Fatal("equal profiles must produce equal objective keys")
	}
	if a.Key() == (NewestVersion{}).Key() || a.Key() == oldestObjective.Key() {
		t.Fatal("objective key namespaces must not collide")
	}
}

func TestObjectiveValidation(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0")
	roots := []Root{MustParseRoot("app")}
	cases := []struct {
		name string
		obj  Objective
		want string
	}{
		{"unknown package", ObjectiveFunc{ID: "bad-pkg", Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
			return map[string]PkgCost{"ghost": {Install: 1}}, nil
		}}, "outside the request's reachable set"},
		{"wrong version count", ObjectiveFunc{ID: "bad-len", Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
			return map[string]PkgCost{"app": {Version: []int64{1, 2, 3}}}, nil
		}}, "version costs"},
		{"negative cost", ObjectiveFunc{ID: "neg", Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
			return map[string]PkgCost{"app": {Install: -1}}, nil
		}}, "negative cost"},
		{"objective error", ObjectiveFunc{ID: "boom", Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
			return nil, errors.New("boom")
		}}, "boom"},
		// An empty ID would collide every custom objective onto the cache
		// key "func:", silently serving one function's answers for another.
		{"empty ObjectiveFunc ID", ObjectiveFunc{Fn: func(req ObjectiveRequest) (map[string]PkgCost, error) {
			return nil, nil
		}}, "non-empty ID"},
	}
	for _, tc := range cases {
		_, err := Concretize(u, roots, Options{Objective: tc.obj})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestDescentStepDifferential(t *testing.T) {
	// Solver configurations — descent step, polarity, restart schedule —
	// must never change the answer, only the search path: every config
	// agrees with the default-config oracle on cost (and on picks for the
	// monotone family, whose optimum is unique).
	configs := []SessionOptions{
		{Solver: satConfig(1, false, 0)},
		{Solver: satConfig(4, false, 0)},
		{Solver: satConfig(64, true, 40)},
		{Solver: satConfig(1000000, true, 400)},
	}
	for seed := int64(0); seed < 10; seed++ {
		u, root := repo.SynthDense(20, 6, 3, seed)
		roots := []Root{{Pkg: root}}
		oracle, err := Concretize(u, roots, Options{})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		for i, so := range configs {
			res, err := NewSession(u, so).Resolve(context.Background(), roots, Options{})
			if err != nil {
				t.Fatalf("seed %d config %d: %v", seed, i, err)
			}
			if res.Stats.Cost != oracle.Stats.Cost {
				t.Fatalf("seed %d config %d: cost %d, oracle %d", seed, i, res.Stats.Cost, oracle.Stats.Cost)
			}
			if !reflect.DeepEqual(res.Picks, oracle.Picks) {
				t.Fatalf("seed %d config %d: picks diverge:\n%v\n%v", seed, i, res.Picks, oracle.Picks)
			}
		}
	}
	// Conflict-bearing family: optima can tie, so compare cost and
	// satisfiability only.
	for seed := int64(0); seed < 10; seed++ {
		u, root := repo.SynthDenseConflicts(20, 6, 3, 2, seed)
		roots := []Root{{Pkg: root}}
		oracle, oracleErr := Concretize(u, roots, Options{})
		for i, so := range configs {
			res, err := NewSession(u, so).Resolve(context.Background(), roots, Options{})
			if oracleErr != nil {
				if !errors.Is(err, ErrUnsatisfiable) || !errors.Is(oracleErr, ErrUnsatisfiable) {
					t.Fatalf("seed %d config %d: err %v, oracle %v", seed, i, err, oracleErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d config %d: %v", seed, i, err)
			}
			if res.Stats.Cost != oracle.Stats.Cost {
				t.Fatalf("seed %d config %d: cost %d, oracle %d", seed, i, res.Stats.Cost, oracle.Stats.Cost)
			}
		}
	}
}

func satConfig(step int64, positive bool, restart int64) sat.Config {
	return sat.Config{DescentStep: step, PositiveFirst: positive, RestartBase: restart}
}
