package concretize

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// TestSessionMatchesColdCurated runs the curated end-to-end universes from
// concretize_test through one shared Session and checks the warm answers
// against fresh Concretize calls, including interleaved repeats.
func TestSessionMatchesColdCurated(t *testing.T) {
	u := repo.New()
	u.Add("app", "2.0", repo.Dep("liba", ":"), repo.Dep("libb", ":"))
	u.Add("app", "1.0", repo.Dep("liba", ":"))
	u.Add("liba", "3.0", repo.Dep("base", "1.2"))
	u.Add("liba", "2.0", repo.Dep("base", "1.2"))
	u.Add("liba", "1.0", repo.Dep("base", ":"))
	u.Add("libb", "2.0", repo.Dep("base", "1.2.8:"))
	u.Add("libb", "1.0", repo.Dep("base", ":"))
	u.Add("base", "1.2.11")
	u.Add("base", "1.2.8")
	u.Add("base", "1.1")

	sess := NewSession(u, SessionOptions{})
	requests := [][]Root{
		{MustParseRoot("app")},
		{MustParseRoot("liba"), MustParseRoot("libb")},
		{MustParseRoot("base@:1.2.8")},
		{MustParseRoot("app@1")},
		{MustParseRoot("app")}, // repeat: cache hit
		{MustParseRoot("app@9:")},
	}
	for i, roots := range requests {
		cold, coldErr := Concretize(u, roots, Options{})
		warm, warmErr := sess.Resolve(context.Background(), roots, Options{})
		if (coldErr == nil) != (warmErr == nil) {
			t.Fatalf("request %d: cold err %v, warm err %v", i, coldErr, warmErr)
		}
		if coldErr != nil {
			if !errors.Is(warmErr, ErrUnsatisfiable) || !errors.Is(coldErr, ErrUnsatisfiable) {
				t.Fatalf("request %d: errors disagree: cold %v, warm %v", i, coldErr, warmErr)
			}
			continue
		}
		if !reflect.DeepEqual(pickStrings(cold), pickStrings(warm)) {
			t.Errorf("request %d: picks differ: cold %v, warm %v", i, pickStrings(cold), pickStrings(warm))
		}
		if cold.Stats.Cost != warm.Stats.Cost {
			t.Errorf("request %d: cost %d (cold) vs %d (warm)", i, cold.Stats.Cost, warm.Stats.Cost)
		}
	}
}

// TestSessionCacheHit: a repeated request must be answered from the cache —
// identical picks and cost, CacheHit set, and zero additional solver work.
func TestSessionCacheHit(t *testing.T) {
	u, root := repo.SynthDense(20, 5, 3, 11)
	sess := NewSession(u, SessionOptions{})
	roots := []Root{{Pkg: root}}

	first, err := sess.Resolve(context.Background(), roots, Options{})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if first.Stats.SolutionCacheHit {
		t.Error("first request cannot be a cache hit")
	}
	decisions := sess.solver.Decisions

	second, err := sess.Resolve(context.Background(), roots, Options{})
	if err != nil {
		t.Fatalf("repeat Resolve: %v", err)
	}
	if !second.Stats.SolutionCacheHit {
		t.Error("repeat request must be a cache hit")
	}
	if sess.solver.Decisions != decisions {
		t.Error("cache hit touched the solver")
	}
	if !reflect.DeepEqual(pickStrings(first), pickStrings(second)) || first.Stats.Cost != second.Stats.Cost {
		t.Error("cached answer differs from original")
	}
	// Root order and duplicates canonicalize to the same key.
	if sess.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d, want 1", sess.CacheLen())
	}
	dup, err := sess.Resolve(context.Background(), []Root{{Pkg: root}, {Pkg: root}}, Options{})
	if err != nil || !dup.Stats.SolutionCacheHit {
		t.Errorf("duplicated roots missed the cache (err %v)", err)
	}
	// Returned picks are caller-owned: mutating them must not poison later hits.
	for k := range dup.Picks {
		delete(dup.Picks, k)
	}
	again, err := sess.Resolve(context.Background(), roots, Options{})
	if err != nil || !reflect.DeepEqual(pickStrings(first), pickStrings(again)) {
		t.Error("cache entry was corrupted by caller mutation")
	}
}

// TestSessionCachesUnsat: proven unsatisfiability is definitive and must be
// memoized too, so repeat failing requests skip the solver.
func TestSessionCachesUnsat(t *testing.T) {
	u, root := repo.SynthUnsatWeb(4, 3)
	sess := NewSession(u, SessionOptions{})
	roots := []Root{{Pkg: root}}
	if _, err := sess.Resolve(context.Background(), roots, Options{}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
	decisions := sess.solver.Decisions
	if _, err := sess.Resolve(context.Background(), roots, Options{}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("repeat err = %v, want ErrUnsatisfiable", err)
	}
	if sess.solver.Decisions != decisions {
		t.Error("repeat unsat request touched the solver")
	}
}

// TestSessionCacheDisabled: CacheSize < 0 turns memoization off.
func TestSessionCacheDisabled(t *testing.T) {
	u, root := repo.SynthDense(12, 4, 2, 3)
	sess := NewSession(u, SessionOptions{CacheSize: -1})
	roots := []Root{{Pkg: root}}
	if _, err := sess.Resolve(context.Background(), roots, Options{}); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	res, err := sess.Resolve(context.Background(), roots, Options{})
	if err != nil {
		t.Fatalf("repeat Resolve: %v", err)
	}
	if res.Stats.SolutionCacheHit || sess.CacheLen() != 0 {
		t.Error("disabled cache served a hit")
	}
}

// TestSessionLRUEviction: the cache holds at most CacheSize entries,
// evicting least-recently-used.
func TestSessionLRUEviction(t *testing.T) {
	u, _ := repo.SynthDense(8, 3, 1, 21)
	sess := NewSession(u, SessionOptions{CacheSize: 2})
	for _, pkg := range []string{"dense0", "dense1", "dense2", "dense3"} {
		if _, err := sess.Resolve(context.Background(), []Root{{Pkg: pkg}}, Options{}); err != nil {
			t.Fatalf("Resolve %s: %v", pkg, err)
		}
	}
	if got := sess.CacheLen(); got != 2 {
		t.Fatalf("CacheLen = %d, want 2", got)
	}
	// dense0 was evicted long ago; resolving it again is a miss.
	decisions := sess.solver.Decisions
	res, err := sess.Resolve(context.Background(), []Root{{Pkg: "dense0"}}, Options{})
	if err != nil {
		t.Fatalf("Resolve dense0: %v", err)
	}
	if res.Stats.SolutionCacheHit || sess.solver.Decisions == decisions {
		t.Error("evicted entry still served from cache")
	}
}

// TestSessionBudgetIsPerRequest: a conflict budget scopes to one request;
// an exhausted budget must not bleed into, or be bled into by, the
// session's lifetime conflict count.
func TestSessionBudgetIsPerRequest(t *testing.T) {
	u, root := repo.SynthUnsatWeb(10, 4)
	sess := NewSession(u, SessionOptions{CacheSize: -1})
	roots := []Root{{Pkg: root}}
	// Burn some lifetime conflicts first with an unbudgeted request.
	if _, err := sess.Resolve(context.Background(), roots, Options{}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
	// A tiny budget must expire (the web needs many conflicts to refute
	// from scratch — though the session's learnt clauses may help, one
	// conflict is never enough) ...
	if _, err := sess.Resolve(context.Background(), roots, Options{MaxConflicts: 1}); err == nil {
		t.Fatal("expected an error under a one-conflict budget")
	}
	// ... and a later unbudgeted request must be unaffected by it.
	if _, err := sess.Resolve(context.Background(), roots, Options{}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("post-budget err = %v, want ErrUnsatisfiable", err)
	}
}

// TestSessionGuardRetirementBoundsSolverMemory is the regression test for
// the ROADMAP latent inefficiency: branch-and-bound guards from past
// requests must not accumulate in the solver. After every request the
// active PB constraints are exactly the skeleton's, the occurrence lists
// are back to their skeleton size, and constraint slots are recycled.
func TestSessionGuardRetirementBoundsSolverMemory(t *testing.T) {
	u, root := repo.SynthDense(20, 5, 3, 5)
	sess := NewSession(u, SessionOptions{CacheSize: -1}) // every request hits the solver
	skeletonPBs := sess.solver.ActivePBs()
	skeletonOcc := sess.solver.PBOccupancy()
	roots := []Root{{Pkg: root}}

	if _, err := sess.Resolve(context.Background(), roots, Options{}); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	slotsAfterFirst := sess.solver.PBSlots()

	for i := 0; i < 20; i++ {
		if _, err := sess.Resolve(context.Background(), roots, Options{}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got := sess.solver.ActivePBs(); got != skeletonPBs {
			t.Fatalf("request %d: ActivePBs = %d, want skeleton %d (guards leaked)", i, got, skeletonPBs)
		}
		if got := sess.solver.PBOccupancy(); got != skeletonOcc {
			t.Fatalf("request %d: PBOccupancy = %d, want skeleton %d (occurrences leaked)", i, got, skeletonOcc)
		}
	}
	if got := sess.solver.PBSlots(); got > slotsAfterFirst {
		t.Errorf("PBSlots grew from %d to %d across requests: retired slots not recycled",
			slotsAfterFirst, got)
	}
}

// TestSessionConcurrent hammers one Session from many goroutines with
// overlapping requests (run under -race in CI). Every response must
// independently pass verify and match the precomputed cold answer.
func TestSessionConcurrent(t *testing.T) {
	u, _ := repo.SynthDense(20, 5, 3, 99)
	type expect struct {
		roots []Root
		picks map[string]string
		cost  int64
		unsat bool
	}
	var pool []expect
	for _, spec := range [][]string{
		{"dense0"},
		{"dense1", "dense4"},
		{"dense2@:3"},
		{"dense0", "dense7"},
		{"dense5", "dense5@2:"},
		{"dense3@9:"}, // no such version: unsatisfiable
		{"dense9"},
		{"dense0@:4", "dense11"},
	} {
		var roots []Root
		for _, s := range spec {
			roots = append(roots, MustParseRoot(s))
		}
		e := expect{roots: roots}
		cold, err := Concretize(u, roots, Options{})
		if err != nil {
			if !errors.Is(err, ErrUnsatisfiable) {
				t.Fatalf("cold %v: %v", spec, err)
			}
			e.unsat = true
		} else {
			e.picks, e.cost = pickStrings(cold), cold.Stats.Cost
		}
		pool = append(pool, e)
	}

	sess := NewSession(u, SessionOptions{CacheSize: 4}) // small: force hit/miss/evict interleaving
	const goroutines, iters = 8, 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e := pool[(g*7+i)%len(pool)]
				res, err := sess.Resolve(context.Background(), e.roots, Options{})
				if e.unsat {
					if !errors.Is(err, ErrUnsatisfiable) {
						t.Errorf("goroutine %d: err = %v, want ErrUnsatisfiable", g, err)
					}
					continue
				}
				if err != nil {
					t.Errorf("goroutine %d: Resolve: %v", g, err)
					continue
				}
				if verr := verify(u, e.roots, res.Picks); verr != nil {
					t.Errorf("goroutine %d: verify: %v", g, verr)
				}
				if !reflect.DeepEqual(pickStrings(res), e.picks) || res.Stats.Cost != e.cost {
					t.Errorf("goroutine %d: answer drifted: got %v cost %d, want %v cost %d",
						g, pickStrings(res), res.Stats.Cost, e.picks, e.cost)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSessionActivationEviction: the activation-literal memo is bounded —
// a stream of distinct root specs cannot grow the solver without limit,
// and previously evicted specs still resolve correctly (a fresh literal is
// allocated on demand).
func TestSessionActivationEviction(t *testing.T) {
	u, _ := repo.SynthDense(10, 5, 2, 13)
	sess := NewSession(u, SessionOptions{CacheSize: -1, MaxActivations: 3})
	cold := map[string]*Resolution{}
	var specs []string
	for pkg := 0; pkg < 5; pkg++ {
		for hi := 1; hi <= 3; hi++ {
			specs = append(specs, fmt.Sprintf("dense%d@:%d", pkg, hi))
		}
	}
	for _, spec := range specs {
		roots := []Root{MustParseRoot(spec)}
		res, err := Concretize(u, roots, Options{})
		if err != nil {
			t.Fatalf("cold %s: %v", spec, err)
		}
		cold[spec] = res
		if _, err := sess.Resolve(context.Background(), roots, Options{}); err != nil {
			t.Fatalf("warm %s: %v", spec, err)
		}
		if got := len(sess.acts); got > 3 {
			t.Fatalf("after %s: %d activation literals memoized, cap is 3", spec, got)
		}
	}
	// Every early spec has been evicted by now; replay the whole stream and
	// require answers identical to cold (SynthDense optima are unique).
	for _, spec := range specs {
		roots := []Root{MustParseRoot(spec)}
		res, err := sess.Resolve(context.Background(), roots, Options{})
		if err != nil {
			t.Fatalf("replay %s: %v", spec, err)
		}
		if !reflect.DeepEqual(pickStrings(res), pickStrings(cold[spec])) ||
			res.Stats.Cost != cold[spec].Stats.Cost {
			t.Fatalf("replay %s: answer drifted after eviction", spec)
		}
	}
	// A single request with more roots than the cap must still be answered
	// correctly: in-flight activations are pinned against eviction.
	roots := []Root{
		MustParseRoot("dense0@:4"), MustParseRoot("dense1@:4"),
		MustParseRoot("dense2@:4"), MustParseRoot("dense3@:4"),
		MustParseRoot("dense4@:4"),
	}
	coldWide, err := Concretize(u, roots, Options{})
	if err != nil {
		t.Fatalf("cold wide: %v", err)
	}
	warmWide, err := sess.Resolve(context.Background(), roots, Options{})
	if err != nil {
		t.Fatalf("warm wide: %v", err)
	}
	if !reflect.DeepEqual(pickStrings(warmWide), pickStrings(coldWide)) {
		t.Fatal("wide request wrong under pinned eviction")
	}
}

// TestSessionFingerprintMatchesUniverse: the session's cache-key prefix is
// the universe's content hash.
func TestSessionFingerprintMatchesUniverse(t *testing.T) {
	u, _ := repo.SynthDense(6, 2, 1, 1)
	sess := NewSession(u, SessionOptions{})
	if sess.Fingerprint() != u.Fingerprint() {
		t.Error("session fingerprint differs from universe fingerprint")
	}
	if sess.Fingerprint() == "" {
		t.Error("empty fingerprint")
	}
}

// TestSessionEmptyRoots: no roots resolves to the empty optimal resolution
// without touching solver or cache.
func TestSessionEmptyRoots(t *testing.T) {
	u, _ := repo.SynthDense(4, 2, 1, 2)
	sess := NewSession(u, SessionOptions{})
	res, err := sess.Resolve(context.Background(), nil, Options{})
	if err != nil || len(res.Picks) != 0 || !res.Stats.Optimal {
		t.Errorf("got %+v, %v; want empty optimal resolution", res, err)
	}
	if sess.CacheLen() != 0 {
		t.Error("empty request was cached")
	}
}

// TestSessionUnknownRoot: unknown packages are request errors, distinct
// from unsatisfiability, and are not cached.
func TestSessionUnknownRoot(t *testing.T) {
	u, _ := repo.SynthDense(4, 2, 1, 2)
	sess := NewSession(u, SessionOptions{})
	_, err := sess.Resolve(context.Background(), []Root{{Pkg: "ghost"}}, Options{})
	if err == nil || errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want unknown-package error", err)
	}
	if sess.CacheLen() != 0 {
		t.Error("request error was cached")
	}
}
