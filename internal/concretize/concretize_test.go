package concretize

import (
	"errors"
	"reflect"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// pickStrings renders a resolution as pkg -> version strings for asserts.
func pickStrings(r *Resolution) map[string]string {
	out := make(map[string]string, len(r.Picks))
	for p, v := range r.Picks {
		out[p] = v.String()
	}
	return out
}

func mustConcretize(t *testing.T, u *repo.Universe, roots []Root) *Resolution {
	t.Helper()
	res, err := Concretize(u, roots, Options{})
	if err != nil {
		t.Fatalf("Concretize: %v", err)
	}
	if !res.Stats.Optimal {
		t.Fatal("expected an optimal resolution")
	}
	return res
}

// TestDiamondNewest is the headline end-to-end case: a multi-package
// universe with diamond dependencies resolves to the newest-version-
// preferring solution.
func TestDiamondNewest(t *testing.T) {
	u := repo.New()
	u.Add("app", "2.0", repo.Dep("liba", ":"), repo.Dep("libb", ":"))
	u.Add("app", "1.0", repo.Dep("liba", ":"))
	u.Add("liba", "3.0", repo.Dep("base", "1.2"))
	u.Add("liba", "2.0", repo.Dep("base", "1.2"))
	u.Add("liba", "1.0", repo.Dep("base", ":"))
	u.Add("libb", "2.0", repo.Dep("base", "1.2.8:"))
	u.Add("libb", "1.0", repo.Dep("base", ":"))
	u.Add("base", "1.2.11")
	u.Add("base", "1.2.8")
	u.Add("base", "1.1")

	res := mustConcretize(t, u, []Root{MustParseRoot("app")})
	want := map[string]string{
		"app":  "2.0",
		"liba": "3.0",
		"libb": "2.0",
		"base": "1.2.11",
	}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}
	if res.Stats.Cost != 4 {
		// 4 installed packages at their newest versions: cost is the four
		// y_p weights and nothing else.
		t.Errorf("cost = %d, want 4", res.Stats.Cost)
	}
}

// TestSynthDiamondNewest runs the generator-built diamond: everything must
// land on its newest version.
func TestSynthDiamondNewest(t *testing.T) {
	u, root := repo.SynthDiamond(4, 6)
	res := mustConcretize(t, u, []Root{{Pkg: root}})
	if len(res.Picks) != 6 { // app + 4 mids + base
		t.Fatalf("installed %d packages, want 6", len(res.Picks))
	}
	for pkg, v := range res.Picks {
		if v.String() != "6.0" {
			t.Errorf("%s resolved to %s, want newest 6.0", pkg, v)
		}
	}
}

// TestSynthChainNewest: deep chains also resolve all-newest.
func TestSynthChainNewest(t *testing.T) {
	u, root := repo.SynthChain(12, 5)
	res := mustConcretize(t, u, []Root{{Pkg: root}})
	if len(res.Picks) != 12 {
		t.Fatalf("installed %d packages, want 12", len(res.Picks))
	}
	for pkg, v := range res.Picks {
		if v.String() != "5.0" {
			t.Errorf("%s resolved to %s, want 5.0", pkg, v)
		}
	}
}

// TestOlderRootWhenNewestUnbuildable: if the newest root version has an
// unsatisfiable dependency, the optimizer must fall back to an older root
// version rather than failing.
func TestOlderRootWhenNewestUnbuildable(t *testing.T) {
	u := repo.New()
	u.Add("app", "2.0", repo.Dep("base", ":0.9")) // no such base version
	u.Add("app", "1.0", repo.Dep("base", ":"))
	u.Add("base", "1.0")
	res := mustConcretize(t, u, []Root{MustParseRoot("app")})
	want := map[string]string{"app": "1.0", "base": "1.0"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}
}

// TestGlobalOptimumBeatsGreedy: greedily taking the newest version of the
// first package is suboptimal here; branch-and-bound must find the global
// optimum instead.
func TestGlobalOptimumBeatsGreedy(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0", repo.Dep("a", ":"), repo.Dep("b", ":"))
	// a@2.0 pins b down to 1.x (cost 0 + 2); a@1.0 frees b (cost 1 + 0).
	u.Add("a", "2.0", repo.Dep("b", ":1"))
	u.Add("a", "1.0", repo.Dep("b", ":"))
	u.Add("b", "3.0")
	u.Add("b", "2.0")
	u.Add("b", "1.0")
	res := mustConcretize(t, u, []Root{MustParseRoot("app")})
	want := map[string]string{"app": "1.0", "a": "1.0", "b": "3.0"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}
	if res.Stats.Improvements < 1 || res.Stats.SolveCalls < 2 {
		t.Errorf("expected a real branch-and-bound run, got %+v", res.Stats)
	}
}

// TestRootNewnessBeatsDependencyNewness: when keeping the root at its
// newest version forces a dependency downgrade, the root must win — root
// version-lag dominates dependency version-lag in the objective, as in
// Spack's root-first optimization order.
func TestRootNewnessBeatsDependencyNewness(t *testing.T) {
	u := repo.New()
	// netcdf@4.9 pins zlib to the 1.2 series; netcdf@4.8 allows any zlib.
	u.Add("netcdf", "4.9", repo.Dep("zlib", "1.2"))
	u.Add("netcdf", "4.8", repo.Dep("zlib", ":"))
	u.Add("zlib", "1.3.1")
	u.Add("zlib", "1.2.13")
	res := mustConcretize(t, u, []Root{MustParseRoot("netcdf")})
	want := map[string]string{"netcdf": "4.9", "zlib": "1.2.13"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v (root newness must dominate)", got, want)
	}
}

// TestConflictForcesOlderVersion: a declared conflict must steer the
// resolution away from the otherwise-optimal pick.
func TestConflictForcesOlderVersion(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0", repo.Dep("x", ":"), repo.Dep("y", ":"))
	u.Add("x", "2.0", repo.Confl("y", "2.0"))
	u.Add("x", "1.0")
	u.Add("y", "2.0")
	u.Add("y", "1.0")
	res := mustConcretize(t, u, []Root{MustParseRoot("app")})
	got := pickStrings(res)
	if got["x"] == "2.0" && got["y"] == "2.0" {
		t.Fatalf("conflict violated: %v", got)
	}
	// Either (x2, y1) or (x1, y2) is optimal: 3 installs plus exactly one
	// version step (a step weighs reachable-packages+1 = 4).
	if res.Stats.Cost != 7 {
		t.Errorf("cost = %d, want 7 (%v)", res.Stats.Cost, got)
	}
}

// TestOptionalPackageNotInstalled: packages no chosen version depends on
// must be left out of the resolution.
func TestOptionalPackageNotInstalled(t *testing.T) {
	u := repo.New()
	u.Add("app", "2.0") // newest app needs nothing
	u.Add("app", "1.0", repo.Dep("legacy", ":"))
	u.Add("legacy", "1.0")
	res := mustConcretize(t, u, []Root{MustParseRoot("app")})
	want := map[string]string{"app": "2.0"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}
}

// TestUnsatWeb: an unsatisfiable universe must be reported as such.
func TestUnsatWeb(t *testing.T) {
	u, root := repo.SynthUnsatWeb(4, 3)
	_, err := Concretize(u, []Root{{Pkg: root}}, Options{})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
}

// TestRootRangeUnsatisfiable: a root constraint no version matches is
// unsatisfiable, not a panic or an empty resolution.
func TestRootRangeUnsatisfiable(t *testing.T) {
	u := repo.New()
	u.Add("app", "2.0")
	_, err := Concretize(u, []Root{MustParseRoot("app@9:")}, Options{})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
}

// TestUnknownRootRejected: asking for a package the universe does not have
// is a request error, distinct from unsatisfiability.
func TestUnknownRootRejected(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0")
	_, err := Concretize(u, []Root{MustParseRoot("ghost")}, Options{})
	if err == nil || errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want unknown-package error", err)
	}
}

// TestMultiRootSharedDependency: two roots constraining the same package
// must agree on a single version in the intersection.
func TestMultiRootSharedDependency(t *testing.T) {
	u := repo.New()
	u.Add("tool1", "1.0", repo.Dep("zlib", ":1.2.8"))
	u.Add("tool2", "1.0", repo.Dep("zlib", "1.2.5:"))
	u.Add("zlib", "1.2.11")
	u.Add("zlib", "1.2.8")
	u.Add("zlib", "1.2.5")
	u.Add("zlib", "1.2.3")
	res := mustConcretize(t, u, []Root{MustParseRoot("tool1"), MustParseRoot("tool2")})
	want := map[string]string{"tool1": "1.0", "tool2": "1.0", "zlib": "1.2.8"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}
}

// TestRootVersionConstraint: the root's own @range must be honored even
// when it forbids the newest version.
func TestRootVersionConstraint(t *testing.T) {
	u := repo.New()
	u.Add("app", "3.0")
	u.Add("app", "2.0")
	u.Add("app", "1.0")
	res := mustConcretize(t, u, []Root{MustParseRoot("app@:2")})
	want := map[string]string{"app": "2.0"}
	if got := pickStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("picks = %v, want %v", got, want)
	}
}

// TestDenseDeterministic: the dense synthetic universe resolves, and two
// independent runs agree pick-for-pick (encoding and search are
// deterministic).
func TestDenseDeterministic(t *testing.T) {
	u, root := repo.SynthDense(24, 6, 3, 42)
	res1 := mustConcretize(t, u, []Root{{Pkg: root}})
	res2 := mustConcretize(t, u, []Root{{Pkg: root}})
	if !reflect.DeepEqual(pickStrings(res1), pickStrings(res2)) {
		t.Error("two runs over the same universe disagree")
	}
	if len(res1.Picks) < 2 {
		t.Errorf("dense universe resolved only %d packages", len(res1.Picks))
	}
}

// TestEmptyRoots: no roots means the empty resolution, trivially optimal.
func TestEmptyRoots(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0")
	res, err := Concretize(u, nil, Options{})
	if err != nil {
		t.Fatalf("Concretize: %v", err)
	}
	if len(res.Picks) != 0 || !res.Stats.Optimal {
		t.Errorf("got %+v, want empty optimal resolution", res)
	}
}

// TestParseRoot covers the request-string forms.
func TestParseRoot(t *testing.T) {
	r := MustParseRoot("zlib@1.2:1.4")
	if r.Pkg != "zlib" || r.Range.String() != "1.2:1.4" {
		t.Errorf("got %+v", r)
	}
	r = MustParseRoot("zlib")
	if r.Pkg != "zlib" || !r.Range.IsAny() {
		t.Errorf("got %+v", r)
	}
	for _, bad := range []string{"", "@1.2", "zlib@2:1"} {
		if _, err := ParseRoot(bad); err == nil {
			t.Errorf("ParseRoot(%q): expected error", bad)
		}
	}
}
