// Package faultpoint is the project's named-injection-site registry: the
// mechanism that makes failure a first-class, schedulable input to every
// layer that has a failure path, instead of a per-package test hook.
//
// A site is declared once, as a package-level variable, at the code path
// whose failure modes it models:
//
//	var fpExtend = faultpoint.New("concretize/extend")
//
// and fired inline where the fault would strike:
//
//	if err := fpExtend.Inject(""); err != nil { return err }
//
// Disarmed — the production state — Inject is one atomic pointer load
// returning nil; the daemon's warm-path benchmarks run with every site
// disarmed and pin that this costs nothing measurable. Armed, a site
// executes a deterministic schedule of steps: Skip (count a hit, do
// nothing), Error (return an injected error), Latency (sleep, then
// proceed), and Panic (raise a *faultpoint.PanicValue). Schedules are
// armed per test via Arm and torn down via Disarm/DisarmAll, or supplied
// at process start through the GOARXIV_FAULTPOINTS environment variable
// for operational fault drills. A schedule whose every rule is exhausted
// disarms itself, returning the site to the zero-cost path.
//
// # Site-naming convention
//
// Site names are slash-separated paths, "<package>/<operation>" (a third
// segment for sub-operations): "concretize/extend",
// "resolve/portfolio/solve", "serve/backend/apply". The package segment is
// the package that DECLARES the site — the layer whose failure the site
// models — not the caller. Inject's label argument carries the dynamic
// instance within the site: the portfolio member name, the pool shard
// index (strconv.Itoa), or "" where the site has one instance. Rules match
// a specific label (On) or any label (Any), so one site covers "member
// 'dive' fails" and "any member fails" without multiplying site names.
//
// # Environment schedule grammar
//
//	GOARXIV_FAULTPOINTS="site[label]=2*skip,error(boom);other=sleep(5ms);third=panic"
//
// Semicolons separate site rules, commas separate a rule's steps, and an
// optional "count*" prefix repeats a step (count 0 repeats forever). The
// bracketed label is optional (any-label when absent). Actions: skip,
// error, error(msg), sleep(duration), panic, panic(msg). A malformed spec
// is reported on stderr and ignored — a fault drill must never be able to
// keep a daemon from booting.
package faultpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every error an Error step without a custom
// error produces; tests and classifiers match it with errors.Is.
var ErrInjected = errors.New("faultpoint: injected fault")

// PanicValue is what a Panic step raises: a distinguishable panic payload
// carrying the site that fired, so containment layers can tell an injected
// panic from a real one in captured stacks.
type PanicValue struct {
	Site string
	Msg  string
}

func (p *PanicValue) String() string {
	if p.Msg == "" {
		return fmt.Sprintf("faultpoint: injected panic at %s", p.Site)
	}
	return fmt.Sprintf("faultpoint: injected panic at %s: %s", p.Site, p.Msg)
}

// action is what one schedule step does when it fires.
type action uint8

const (
	actSkip action = iota
	actError
	actLatency
	actPanic
)

// Step is one unit of a schedule: an action plus how many consecutive
// injections it covers (n == 0 means forever — the step never exhausts).
type Step struct {
	act action
	n   int
	err error
	d   time.Duration
	msg string
}

// Skip passes n injections through untouched (a targeting offset: the
// schedule "Skip(2), Error(1)" faults exactly the third hit).
func Skip(n int) Step { return Step{act: actSkip, n: n} }

// Error fails n injections with err; a nil err produces a generated error
// matching ErrInjected via errors.Is.
func Error(n int, err error) Step { return Step{act: actError, n: n, err: err} }

// Latency sleeps d on each of n injections, then lets the call proceed.
func Latency(n int, d time.Duration) Step { return Step{act: actLatency, n: n, d: d} }

// Panic raises a *PanicValue on each of n injections.
func Panic(n int, msg string) Step { return Step{act: actPanic, n: n, msg: msg} }

// Rule is an ordered step sequence bound to a label filter. Within a
// program, the first non-exhausted rule matching the injection's label
// consumes the hit; rules keep independent cursors.
type Rule struct {
	Label string // "" matches any label
	Steps []Step
}

// On binds steps to one specific injection label (a portfolio member
// name, a pool shard index).
func On(label string, steps ...Step) Rule { return Rule{Label: label, Steps: steps} }

// Any binds steps to every injection label.
func Any(steps ...Step) Rule { return Rule{Steps: steps} }

// ruleState is one rule's execution cursor inside an armed program.
type ruleState struct {
	label string
	steps []Step
	idx   int // current step
	used  int // units consumed from steps[idx]
}

func (r *ruleState) exhausted() bool { return r.idx >= len(r.steps) }

// next consumes one unit from the current step and returns it. Callers
// hold the program lock and guarantee !exhausted.
func (r *ruleState) next() Step {
	st := r.steps[r.idx]
	if st.n > 0 {
		r.used++
		if r.used >= st.n {
			r.idx++
			r.used = 0
		}
	}
	return st
}

// program is one armed schedule: the rules plus the lock serializing
// concurrent injections against their cursors.
type program struct {
	mu    sync.Mutex
	rules []*ruleState
}

// Point is one named injection site. Declare with New at package level;
// fire with Inject at the guarded code path.
type Point struct {
	name string

	// prog is the armed schedule, nil while disarmed. The disarmed fast
	// path is a single atomic load.
	//
	// goarxivlint:lockfree
	prog atomic.Pointer[program]

	// hits counts injections that found the site armed (schedule
	// matching or not); disarmed passes are deliberately uncounted so
	// the production path stays one load.
	//
	// goarxivlint:lockfree
	hits atomic.Int64
}

// Name returns the site's registered name.
func (p *Point) Name() string { return p.name }

// Hits returns how many injections hit the site while armed.
func (p *Point) Hits() int64 { return p.hits.Load() }

// Inject fires the site with the given dynamic label. Disarmed it returns
// nil at the cost of one atomic load. Armed, the first non-exhausted rule
// matching the label consumes one step: Skip and Latency return nil
// (Latency after sleeping), Error returns the injected error, Panic raises
// a *PanicValue. When every rule is exhausted the site disarms itself.
func (p *Point) Inject(label string) error {
	prog := p.prog.Load()
	if prog == nil {
		return nil
	}
	p.hits.Add(1)
	var st Step
	matched := false
	allDone := true
	prog.mu.Lock()
	for _, r := range prog.rules {
		if r.exhausted() {
			continue
		}
		if !matched && (r.label == "" || r.label == label) {
			st = r.next()
			matched = true
		}
		if !r.exhausted() {
			allDone = false
		}
	}
	prog.mu.Unlock()
	if allDone {
		p.prog.CompareAndSwap(prog, nil)
	}
	if !matched {
		return nil
	}
	switch st.act {
	case actError:
		if st.err != nil {
			return st.err
		}
		if st.msg != "" {
			return fmt.Errorf("%w: %s: %s", ErrInjected, p.name, st.msg)
		}
		return fmt.Errorf("%w: %s", ErrInjected, p.name)
	case actLatency:
		time.Sleep(st.d)
	case actPanic:
		panic(&PanicValue{Site: p.name, Msg: st.msg})
	}
	return nil
}

// arm installs a fresh program for the rules (replacing any armed one).
func (p *Point) arm(rules []Rule) {
	prog := &program{}
	for _, r := range rules {
		prog.rules = append(prog.rules, &ruleState{label: r.Label, steps: r.Steps})
	}
	p.prog.Store(prog)
}

// registry is the process-wide site table plus env-supplied rules waiting
// for their sites to register.
var registry = struct {
	mu      sync.Mutex
	points  map[string]*Point
	pending map[string][]Rule
}{
	points:  make(map[string]*Point),
	pending: make(map[string][]Rule),
}

func init() {
	spec := os.Getenv("GOARXIV_FAULTPOINTS")
	if spec == "" {
		return
	}
	rules, err := parseSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultpoint: ignoring GOARXIV_FAULTPOINTS: %v\n", err)
		return
	}
	registry.pending = rules
}

// New registers a named site and returns its handle. Names must be unique
// process-wide (New panics on a duplicate: two sites sharing a name would
// make schedules ambiguous). A site named in GOARXIV_FAULTPOINTS arms
// itself the moment it registers.
func New(name string) *Point {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if name == "" {
		panic("faultpoint: empty site name")
	}
	if registry.points[name] != nil {
		panic(fmt.Sprintf("faultpoint: duplicate site %q", name))
	}
	p := &Point{name: name}
	registry.points[name] = p
	if rules := registry.pending[name]; len(rules) > 0 {
		p.arm(rules)
		delete(registry.pending, name)
	}
	return p
}

// Arm installs a schedule on a registered site, replacing any armed one.
// Tests arm sites by name (the sites themselves are private to the
// packages that declare them) and tear down with Disarm or DisarmAll.
func Arm(site string, rules ...Rule) error {
	if len(rules) == 0 {
		return fmt.Errorf("faultpoint: Arm(%q) with no rules", site)
	}
	for _, r := range rules {
		if len(r.Steps) == 0 {
			return fmt.Errorf("faultpoint: Arm(%q) rule with no steps", site)
		}
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	p := registry.points[site]
	if p == nil {
		return fmt.Errorf("faultpoint: unknown site %q", site)
	}
	p.arm(rules)
	return nil
}

// Disarm removes a site's schedule (a no-op on unknown or disarmed sites).
func Disarm(site string) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if p := registry.points[site]; p != nil {
		p.prog.Store(nil)
	}
}

// DisarmAll disarms every registered site — the standard test cleanup.
func DisarmAll() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, p := range registry.points {
		p.prog.Store(nil)
	}
}

// Armed returns the names of currently armed sites, sorted — surfaced by
// the daemon's /v1/stats so an operator can see a live fault drill.
func Armed() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var out []string
	for name, p := range registry.points {
		if p.prog.Load() != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Sites returns every registered site name, sorted.
func Sites() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]string, 0, len(registry.points))
	for name := range registry.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Hits returns a site's armed-hit counter (0 for unknown sites).
func Hits(site string) int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if p := registry.points[site]; p != nil {
		return p.hits.Load()
	}
	return 0
}

// parseSpec parses the GOARXIV_FAULTPOINTS grammar into per-site rules.
func parseSpec(spec string) (map[string][]Rule, error) {
	out := make(map[string][]Rule)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.Index(part, "=")
		if eq < 0 {
			return nil, fmt.Errorf("missing '=' in %q", part)
		}
		head := strings.TrimSpace(part[:eq])
		label := ""
		if i := strings.Index(head, "["); i >= 0 {
			if !strings.HasSuffix(head, "]") {
				return nil, fmt.Errorf("unclosed label in %q", head)
			}
			label = head[i+1 : len(head)-1]
			head = head[:i]
		}
		if head == "" {
			return nil, fmt.Errorf("empty site name in %q", part)
		}
		var steps []Step
		for _, fs := range strings.Split(part[eq+1:], ",") {
			st, err := parseStep(strings.TrimSpace(fs))
			if err != nil {
				return nil, err
			}
			steps = append(steps, st)
		}
		out[head] = append(out[head], Rule{Label: label, Steps: steps})
	}
	return out, nil
}

// parseStep parses one "count*action(arg)" step.
func parseStep(s string) (Step, error) {
	n := 1
	if i := strings.Index(s, "*"); i >= 0 {
		v, err := strconv.Atoi(strings.TrimSpace(s[:i]))
		if err != nil || v < 0 {
			return Step{}, fmt.Errorf("bad count in %q", s)
		}
		n = v
		s = strings.TrimSpace(s[i+1:])
	}
	name, arg := s, ""
	if i := strings.Index(s, "("); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Step{}, fmt.Errorf("unclosed argument in %q", s)
		}
		name, arg = s[:i], s[i+1:len(s)-1]
	}
	switch name {
	case "skip":
		return Skip(n), nil
	case "error":
		st := Error(n, nil)
		st.msg = arg
		return st, nil
	case "sleep", "latency":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Step{}, fmt.Errorf("bad duration in %q: %v", s, err)
		}
		return Latency(n, d), nil
	case "panic":
		return Panic(n, arg), nil
	default:
		return Step{}, fmt.Errorf("unknown action %q", name)
	}
}
