package faultpoint

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// newT registers a uniquely-named site and disarms it at cleanup, so tests
// never leak schedules into each other through the process registry.
func newT(t *testing.T) *Point {
	t.Helper()
	p := New(fmt.Sprintf("test/%s", t.Name()))
	t.Cleanup(func() { Disarm(p.Name()) })
	return p
}

func TestDisarmedInjectIsNil(t *testing.T) {
	p := newT(t)
	for i := 0; i < 100; i++ {
		if err := p.Inject("any"); err != nil {
			t.Fatalf("disarmed Inject returned %v", err)
		}
	}
	if p.Hits() != 0 {
		t.Fatalf("disarmed injections counted: hits=%d", p.Hits())
	}
}

func TestScheduleOrderAndExhaustion(t *testing.T) {
	p := newT(t)
	boom := errors.New("boom")
	if err := Arm(p.Name(), Any(Skip(2), Error(1, boom))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.Inject(""); err != nil {
			t.Fatalf("skip step %d returned %v", i, err)
		}
	}
	if err := p.Inject(""); !errors.Is(err, boom) {
		t.Fatalf("third injection = %v, want boom", err)
	}
	// Exhausted schedule auto-disarms: later injections pass and stop
	// counting.
	h := p.Hits()
	if err := p.Inject(""); err != nil {
		t.Fatalf("post-exhaustion injection = %v", err)
	}
	if p.Hits() != h {
		t.Fatalf("exhausted site still counting hits")
	}
	if got := Armed(); len(got) != 0 {
		t.Fatalf("Armed() = %v after exhaustion, want empty", got)
	}
}

func TestLabelTargeting(t *testing.T) {
	p := newT(t)
	if err := Arm(p.Name(), On("dive", Error(0, nil))); err != nil {
		t.Fatal(err)
	}
	if err := p.Inject("baseline"); err != nil {
		t.Fatalf("unmatched label injected: %v", err)
	}
	err := p.Inject("dive")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("matched label = %v, want ErrInjected", err)
	}
	// n==0 repeats forever: still armed, still failing.
	if err := p.Inject("dive"); !errors.Is(err, ErrInjected) {
		t.Fatalf("forever step exhausted: %v", err)
	}
	if got := Armed(); len(got) != 1 || got[0] != p.Name() {
		t.Fatalf("Armed() = %v, want [%s]", got, p.Name())
	}
}

func TestRuleCursorsAreIndependent(t *testing.T) {
	p := newT(t)
	errA, errB := errors.New("a"), errors.New("b")
	if err := Arm(p.Name(), On("a", Error(1, errA)), On("b", Error(1, errB))); err != nil {
		t.Fatal(err)
	}
	if err := p.Inject("b"); !errors.Is(err, errB) {
		t.Fatalf("label b = %v", err)
	}
	if err := p.Inject("a"); !errors.Is(err, errA) {
		t.Fatalf("label a = %v", err)
	}
}

func TestPanicStepRaisesPanicValue(t *testing.T) {
	p := newT(t)
	if err := Arm(p.Name(), Any(Panic(1, "die"))); err != nil {
		t.Fatal(err)
	}
	defer func() {
		rec := recover()
		pv, ok := rec.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicValue", rec, rec)
		}
		if pv.Site != p.Name() || pv.Msg != "die" {
			t.Fatalf("panic value = %+v", pv)
		}
	}()
	p.Inject("")
	t.Fatal("Panic step did not panic")
}

func TestLatencyStepSleeps(t *testing.T) {
	p := newT(t)
	if err := Arm(p.Name(), Any(Latency(1, 30*time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.Inject(""); err != nil {
		t.Fatalf("latency step returned %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency step slept %v, want >= 30ms", d)
	}
}

func TestConcurrentInjectIsExact(t *testing.T) {
	p := newT(t)
	const faults = 10
	if err := Arm(p.Name(), Any(Error(faults, nil))); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	failed := 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Inject("w"); err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if failed != faults {
		t.Fatalf("injected %d faults across 64 concurrent hits, want exactly %d", failed, faults)
	}
}

func TestArmValidation(t *testing.T) {
	p := newT(t)
	if err := Arm("no/such/site", Any(Skip(1))); err == nil {
		t.Fatal("Arm on unknown site succeeded")
	}
	if err := Arm(p.Name()); err == nil {
		t.Fatal("Arm with no rules succeeded")
	}
	if err := Arm(p.Name(), Rule{}); err == nil {
		t.Fatal("Arm with empty rule succeeded")
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := parseSpec("a/b[dive]=2*skip,error(boom); c/d = sleep(5ms), 0*panic(x) ")
	if err != nil {
		t.Fatal(err)
	}
	ab := rules["a/b"]
	if len(ab) != 1 || ab[0].Label != "dive" || len(ab[0].Steps) != 2 {
		t.Fatalf("a/b rules = %+v", ab)
	}
	if ab[0].Steps[0].act != actSkip || ab[0].Steps[0].n != 2 {
		t.Fatalf("a/b step 0 = %+v", ab[0].Steps[0])
	}
	if ab[0].Steps[1].act != actError || ab[0].Steps[1].msg != "boom" {
		t.Fatalf("a/b step 1 = %+v", ab[0].Steps[1])
	}
	cd := rules["c/d"]
	if len(cd) != 1 || cd[0].Label != "" || len(cd[0].Steps) != 2 {
		t.Fatalf("c/d rules = %+v", cd)
	}
	if cd[0].Steps[0].act != actLatency || cd[0].Steps[0].d != 5*time.Millisecond {
		t.Fatalf("c/d step 0 = %+v", cd[0].Steps[0])
	}
	if cd[0].Steps[1].act != actPanic || cd[0].Steps[1].n != 0 {
		t.Fatalf("c/d step 1 = %+v", cd[0].Steps[1])
	}

	for _, bad := range []string{"nosign", "x[y=skip", "x=explode", "x=sleep(nope)", "x=-1*skip", "=skip"} {
		if _, err := parseSpec(bad); err == nil {
			t.Fatalf("parseSpec(%q) succeeded", bad)
		}
	}
}

func TestEnvArmOnRegistration(t *testing.T) {
	// Simulate init(): stash pending rules, then register the site.
	name := "test/env-armed"
	registry.mu.Lock()
	registry.pending[name] = []Rule{Any(Error(1, nil))}
	registry.mu.Unlock()
	p := New(name)
	t.Cleanup(func() { Disarm(name) })
	if err := p.Inject(""); !errors.Is(err, ErrInjected) {
		t.Fatalf("env-pending site not armed at registration: %v", err)
	}
}
