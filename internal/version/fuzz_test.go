package version

import "testing"

// FuzzParseRange: ParseRange must never panic, and every accepted input
// must round-trip — its String form reparses to an equivalent range with a
// stable String. The seed corpus lives under testdata/fuzz/FuzzParseRange.
func FuzzParseRange(f *testing.F) {
	for _, seed := range []string{
		"1.2", "1.2:1.4", ":", "1.2:", ":1.4", "develop", "2021.06.0",
		"1.2.3-rc1", "1_2", "0:9", "1.beta:1.2", "00.01", ":" + "1.2.8",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRange(s)
		if err != nil {
			return // rejected inputs only need to be crash-free
		}
		str := r.String()
		r2, err := ParseRange(str)
		if err != nil {
			t.Fatalf("round-trip parse failed: %q -> %q: %v", s, str, err)
		}
		if got := r2.String(); got != str {
			t.Fatalf("String unstable: %q -> %q -> %q", s, str, got)
		}
		if r2.IsExact() != r.IsExact() || r2.IsAny() != r.IsAny() {
			t.Fatalf("round-trip changed range kind for %q", s)
		}
		lo1, okLo1 := r.Lo()
		lo2, okLo2 := r2.Lo()
		hi1, okHi1 := r.Hi()
		hi2, okHi2 := r2.Hi()
		if okLo1 != okLo2 || okHi1 != okHi2 ||
			(okLo1 && lo1.Compare(lo2) != 0) || (okHi1 && hi1.Compare(hi2) != 0) {
			t.Fatalf("round-trip changed bounds for %q", s)
		}
	})
}

// FuzzParse: Parse must never panic, and accepted versions must reparse
// from their String form to an equal value.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"1.2.3", "develop", "1-2_3", "2021.06.0", "18446744073709551615", "0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return
		}
		v2, err := Parse(v.String())
		if err != nil {
			t.Fatalf("round-trip parse failed: %q -> %q: %v", s, v.String(), err)
		}
		if !v.Equal(v2) {
			t.Fatalf("round-trip changed value: %q", s)
		}
	})
}
