package version

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	cases := []struct {
		in   string
		segs int
	}{
		{"1.14.5", 3},
		{"3.4.3", 3},
		{"1", 1},
		{"develop", 1},
		{"2021.06.0", 3},
		{"1.0-rc1", 3},
		{"1_2", 2},
	}
	for _, c := range cases {
		v, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if v.Len() != c.segs {
			t.Errorf("Parse(%q): got %d segments, want %d", c.in, v.Len(), c.segs)
		}
		if v.String() != c.in {
			t.Errorf("Parse(%q).String() = %q", c.in, v.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", ".", "..", "-"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.2", "1.2", 0},
		{"1.2", "1.3", -1},
		{"1.10", "1.9", 1},
		{"1.2", "1.2.1", -1},
		{"1.2.beta", "1.2.1", -1}, // alpha before numeric
		{"develop", "1.0", -1},
		{"1.2.11", "1.2.2", 1},
		{"2.0", "10.0", -1},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := b.Compare(a); got != -c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestHasPrefix(t *testing.T) {
	cases := []struct {
		v, p string
		want bool
	}{
		{"1.2.11", "1.2", true},
		{"1.2.11", "1.2.11", true},
		{"1.2", "1.2.11", false},
		{"1.22", "1.2", false},
		{"1.2.11", "1", true},
	}
	for _, c := range cases {
		if got := MustParse(c.v).HasPrefix(MustParse(c.p)); got != c.want {
			t.Errorf("HasPrefix(%q,%q) = %v, want %v", c.v, c.p, got, c.want)
		}
	}
}

func TestRangeSatisfies(t *testing.T) {
	cases := []struct {
		rng, v string
		want   bool
	}{
		// Exact form uses prefix semantics: the paper concretizes
		// depends_on("zlib@1.2") to zlib@1.2.11.
		{"1.2", "1.2.11", true},
		{"1.2", "1.2", true},
		{"1.2", "1.3", false},
		{"1.2", "1.22", false},
		{"1.2:1.4", "1.3", true},
		{"1.2:1.4", "1.4.8", true}, // upper bound prefix semantics
		{"1.2:1.4", "1.5", false},
		{"1.2:1.4", "1.1", false},
		{"1.2:", "9.9", true},
		{"1.2:", "1.1", false},
		{":1.4", "0.1", true},
		{":1.4", "1.4.2", true},
		{":1.4", "1.5", false},
		{":", "42", true},
		// Lower bound prefix: 1.2 satisfies "1.2.5:"? No: 1.2 < 1.2.5
		// and 1.2 does not have prefix 1.2.5.
		{"1.2.5:", "1.2", false},
		// But 1.2.5 satisfies "1.2:" trivially and "@1.2:"
		{"1.2:", "1.2.5", true},
	}
	for _, c := range cases {
		r := MustParseRange(c.rng)
		if got := r.Satisfies(MustParse(c.v)); got != c.want {
			t.Errorf("Range(%q).Satisfies(%q) = %v, want %v", c.rng, c.v, got, c.want)
		}
	}
}

// TestRangeSatisfiesPrefixSemantics pins down the Spack prefix semantics
// from Table 1 of the paper: an exact constraint "@1.2" admits any 1.2.x,
// and an upper bound ":1.4" admits any 1.4.x.
func TestRangeSatisfiesPrefixSemantics(t *testing.T) {
	cases := []struct {
		rng, v string
		want   bool
	}{
		// "@1.2" is a prefix constraint: 1.2.1 has prefix 1.2.
		{"1.2", "1.2.1", true},
		{"1.2", "1.2.0", true},
		{"1.2", "1.20", false},  // 1.20 is not prefixed by 1.2
		{"1.2", "1.1.2", false}, // ordering alone is not enough
		{"1.2", "2.1.2", false},
		// ":1.4" admits 1.4.8 via upper-bound prefix semantics even though
		// 1.4.8 > 1.4 segment-wise.
		{":1.4", "1.4.8", true},
		{":1.4", "1.4", true},
		{":1.4", "1.40", false},
		{":1.4", "1.5.0", false},
		// half-open lower bound has no prefix relaxation downward
		{"1.4:", "1.4.8", true},
		{"1.4:", "1.3.9", false},
		// bounded range: both ends exercise prefix semantics
		{"1.2:1.4", "1.2.0", true},
		{"1.2:1.4", "1.4.8", true},
		{"1.2:1.4", "1.5", false},
	}
	for _, c := range cases {
		r := MustParseRange(c.rng)
		if got := r.Satisfies(MustParse(c.v)); got != c.want {
			t.Errorf("Range(%q).Satisfies(%q) = %v, want %v", c.rng, c.v, got, c.want)
		}
	}
}

// TestRangeInvertedErrors: a range whose lower bound orders above its upper
// bound must be rejected at parse time.
func TestRangeInvertedErrors(t *testing.T) {
	for _, in := range []string{"2.0:1.0", "1.4.8:1.4", "1.10:1.9", "10:2"} {
		if _, err := ParseRange(in); err == nil {
			t.Errorf("ParseRange(%q): expected inverted-range error", in)
		}
	}
	// Degenerate but valid: equal bounds.
	if _, err := ParseRange("1.4:1.4"); err != nil {
		t.Errorf("ParseRange(1.4:1.4): unexpected error %v", err)
	}
}

func TestRangeParseErrors(t *testing.T) {
	for _, in := range []string{"", "1.2:1.4:1.6", "2.0:1.0", "1..2"} {
		if _, err := ParseRange(in); err == nil {
			t.Errorf("ParseRange(%q): expected error", in)
		}
	}
}

func TestRangeString(t *testing.T) {
	for _, s := range []string{"1.2", "1.2:1.4", "1.2:", ":1.4", ":"} {
		r := MustParseRange(s)
		if r.String() != s {
			t.Errorf("Range(%q).String() = %q", s, r.String())
		}
	}
}

func TestSortAndMax(t *testing.T) {
	vs := []Version{MustParse("1.10"), MustParse("1.2"), MustParse("1.9")}
	Sort(vs)
	if got := vs[0].String() + "," + vs[1].String() + "," + vs[2].String(); got != "1.2,1.9,1.10" {
		t.Errorf("Sort: got %s", got)
	}
	SortDesc(vs)
	if vs[0].String() != "1.10" {
		t.Errorf("SortDesc: got %s first", vs[0])
	}
	if m := Max(vs); m.String() != "1.10" {
		t.Errorf("Max: got %s", m)
	}
	if !Max(nil).IsZero() {
		t.Error("Max(nil) should be zero")
	}
}

// randomVersion generates a structured random version for property tests.
func randomVersion(r *rand.Rand) Version {
	n := 1 + r.Intn(4)
	parts := make([]string, n)
	for i := range parts {
		if r.Intn(5) == 0 {
			parts[i] = []string{"alpha", "beta", "rc1", "dev"}[r.Intn(4)]
		} else {
			parts[i] = strconv.Itoa(r.Intn(30))
		}
	}
	return MustParse(strings.Join(parts, "."))
}

func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomVersion(rand.New(rand.NewSource(seedA)))
		b := randomVersion(rand.New(rand.NewSource(seedB)))
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCompareTransitive(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		a := randomVersion(rand.New(rand.NewSource(s1)))
		b := randomVersion(rand.New(rand.NewSource(s2)))
		c := randomVersion(rand.New(rand.NewSource(s3)))
		// sort the three and verify pairwise consistency
		vs := []Version{a, b, c}
		Sort(vs)
		return vs[0].Compare(vs[1]) <= 0 && vs[1].Compare(vs[2]) <= 0 && vs[0].Compare(vs[2]) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCompareReflexiveAndRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		v := randomVersion(rand.New(rand.NewSource(seed)))
		w := MustParse(v.String())
		return v.Compare(v) == 0 && v.Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropPrefixImpliesExactSatisfies(t *testing.T) {
	// Any version satisfies the exact range of any of its prefixes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomVersion(r)
		k := 1 + r.Intn(v.Len())
		prefix := MustParse(strings.Join(strings.FieldsFunc(v.String(), func(c rune) bool {
			return c == '.' || c == '-' || c == '_'
		})[:k], "."))
		return ExactRange(prefix).Satisfies(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropRangeContainsBounds(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomVersion(rand.New(rand.NewSource(s1)))
		b := randomVersion(rand.New(rand.NewSource(s2)))
		if a.Compare(b) > 0 {
			a, b = b, a
		}
		r := NewRange(a, b)
		return r.Satisfies(a) && r.Satisfies(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
