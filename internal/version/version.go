// Package version implements Spack-style version values and ranges.
//
// Versions are dot-separated sequences of numeric or alphanumeric segments
// ("1.14.5", "3.4.3", "2021.06.0", "develop"). Ordering is segment-wise:
// numeric segments compare numerically, alphabetic segments compare
// lexically, and numeric segments order after alphabetic ones at the same
// position (so "1.2" > "1.beta"). A shorter version that is a prefix of a
// longer one orders before it ("1.2" < "1.2.1").
//
// Ranges follow Spack's spec syntax (Table 1 of the paper): "@1.2" is a
// prefix constraint satisfied by 1.2 and any 1.2.x; "@1.2:1.4" is an
// inclusive range; "@1.2:" and "@:1.4" are half-open; "@:" is any version.
package version

import (
	"fmt"
	"strconv"
	"strings"
)

// segment is one dot-separated component of a version.
type segment struct {
	num   uint64
	str   string
	isNum bool
}

func (s segment) String() string {
	if s.isNum {
		return strconv.FormatUint(s.num, 10)
	}
	return s.str
}

// compareSegments orders two segments. Numeric segments order after
// alphabetic ones ("1.beta" < "1.2"), matching Spack's convention that
// pre-release words precede numbered releases.
func compareSegments(a, b segment) int {
	switch {
	case a.isNum && b.isNum:
		switch {
		case a.num < b.num:
			return -1
		case a.num > b.num:
			return 1
		}
		return 0
	case a.isNum && !b.isNum:
		return 1
	case !a.isNum && b.isNum:
		return -1
	default:
		return strings.Compare(a.str, b.str)
	}
}

// Version is an immutable parsed version value. The zero Version is the
// empty version, which orders before every non-empty version.
type Version struct {
	segs []segment
	raw  string
}

// Parse parses a version string. Segments are separated by '.', '-' or '_'.
// An empty string is invalid.
func Parse(s string) (Version, error) {
	if s == "" {
		return Version{}, fmt.Errorf("version: empty version string")
	}
	norm := strings.Map(func(r rune) rune {
		if r == '-' || r == '_' {
			return '.'
		}
		return r
	}, s)
	fields := strings.Split(norm, ".")
	segs := make([]segment, 0, len(fields))
	for _, f := range fields {
		if f == "" {
			return Version{}, fmt.Errorf("version: empty segment in %q", s)
		}
		if n, err := strconv.ParseUint(f, 10, 64); err == nil {
			segs = append(segs, segment{num: n, isNum: true})
		} else {
			segs = append(segs, segment{str: f})
		}
	}
	return Version{segs: segs, raw: s}, nil
}

// MustParse is Parse but panics on error; intended for package definitions
// and tests where the input is a literal.
func MustParse(s string) Version {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String returns the original string form of the version.
func (v Version) String() string { return v.raw }

// IsZero reports whether v is the zero (empty) version.
func (v Version) IsZero() bool { return len(v.segs) == 0 }

// Len returns the number of segments.
func (v Version) Len() int { return len(v.segs) }

// Compare returns -1, 0, or +1 ordering v against w.
func (v Version) Compare(w Version) int {
	n := len(v.segs)
	if len(w.segs) < n {
		n = len(w.segs)
	}
	for i := 0; i < n; i++ {
		if c := compareSegments(v.segs[i], w.segs[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(v.segs) < len(w.segs):
		return -1
	case len(v.segs) > len(w.segs):
		return 1
	}
	return 0
}

// Equal reports segment-wise equality (ignores raw formatting differences
// such as "1-2" vs "1.2").
func (v Version) Equal(w Version) bool { return v.Compare(w) == 0 }

// HasPrefix reports whether p is a segment-wise prefix of v. Every version
// is a prefix of itself. The empty version is a prefix of everything.
func (v Version) HasPrefix(p Version) bool {
	if len(p.segs) > len(v.segs) {
		return false
	}
	for i := range p.segs {
		if compareSegments(v.segs[i], p.segs[i]) != 0 {
			return false
		}
	}
	return true
}

// Range is an inclusive version range with optional bounds. Bounds use
// Spack prefix semantics: the upper bound "1.4" admits 1.4.8 because 1.4.8
// has prefix 1.4; the exact form Lo==Hi ("@1.2") admits any version with
// prefix 1.2.
type Range struct {
	lo, hi     Version
	hasLo      bool
	hasHi      bool
	exactRange bool // true when written without ':' (prefix-match form)
}

// AnyRange is the range satisfied by every version ("@:").
var AnyRange = Range{}

// ExactRange returns the prefix-constraint range for v (spec form "@v").
func ExactRange(v Version) Range {
	return Range{lo: v, hi: v, hasLo: true, hasHi: true, exactRange: true}
}

// NewRange builds a bounded range; either bound may be the zero Version to
// leave that side open.
func NewRange(lo, hi Version) Range {
	return Range{lo: lo, hi: hi, hasLo: !lo.IsZero(), hasHi: !hi.IsZero()}
}

// ParseRange parses the version portion of a spec constraint: "1.2",
// "1.2:1.4", "1.2:", ":1.4", ":".
func ParseRange(s string) (Range, error) {
	if s == "" {
		return Range{}, fmt.Errorf("version: empty range")
	}
	idx := strings.Index(s, ":")
	if idx < 0 {
		v, err := Parse(s)
		if err != nil {
			return Range{}, err
		}
		return ExactRange(v), nil
	}
	var r Range
	loStr, hiStr := s[:idx], s[idx+1:]
	if strings.Contains(hiStr, ":") {
		return Range{}, fmt.Errorf("version: multiple ':' in range %q", s)
	}
	if loStr != "" {
		lo, err := Parse(loStr)
		if err != nil {
			return Range{}, err
		}
		r.lo, r.hasLo = lo, true
	}
	if hiStr != "" {
		hi, err := Parse(hiStr)
		if err != nil {
			return Range{}, err
		}
		r.hi, r.hasHi = hi, true
	}
	if r.hasLo && r.hasHi && r.lo.Compare(r.hi) > 0 {
		return Range{}, fmt.Errorf("version: inverted range %q", s)
	}
	return r, nil
}

// MustParseRange is ParseRange but panics on error.
func MustParseRange(s string) Range {
	r, err := ParseRange(s)
	if err != nil {
		panic(err)
	}
	return r
}

// IsAny reports whether the range admits every version.
func (r Range) IsAny() bool { return !r.hasLo && !r.hasHi }

// IsExact reports whether the range was written as a single version
// (prefix-match form).
func (r Range) IsExact() bool { return r.exactRange }

// Lo returns the lower bound and whether it is set.
func (r Range) Lo() (Version, bool) { return r.lo, r.hasLo }

// Hi returns the upper bound and whether it is set.
func (r Range) Hi() (Version, bool) { return r.hi, r.hasHi }

// Satisfies reports whether v lies in the range. Prefix semantics apply on
// the upper bound and on exact constraints.
func (r Range) Satisfies(v Version) bool {
	if r.exactRange {
		return v.HasPrefix(r.lo)
	}
	if r.hasLo {
		if v.Compare(r.lo) < 0 && !v.HasPrefix(r.lo) {
			return false
		}
	}
	if r.hasHi {
		if v.Compare(r.hi) > 0 && !v.HasPrefix(r.hi) {
			return false
		}
	}
	return true
}

// String renders the range in spec syntax (without the leading '@').
func (r Range) String() string {
	if r.exactRange {
		return r.lo.String()
	}
	var b strings.Builder
	if r.hasLo {
		b.WriteString(r.lo.String())
	}
	b.WriteByte(':')
	if r.hasHi {
		b.WriteString(r.hi.String())
	}
	return b.String()
}

// IntersectsOver reports whether two ranges admit at least one common
// version among the given candidates. It is a candidate-based check because
// prefix semantics make symbolic intersection ambiguous.
func (r Range) IntersectsOver(other Range, candidates []Version) bool {
	for _, v := range candidates {
		if r.Satisfies(v) && other.Satisfies(v) {
			return true
		}
	}
	return false
}

// Sort orders versions ascending in place (insertion sort; version lists in
// package definitions are short).
func Sort(vs []Version) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Compare(vs[j-1]) < 0; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// SortDesc orders versions descending (newest first) in place.
func SortDesc(vs []Version) {
	Sort(vs)
	for i, j := 0, len(vs)-1; i < j; i, j = i+1, j-1 {
		vs[i], vs[j] = vs[j], vs[i]
	}
}

// Max returns the maximum of the given versions; the zero Version if none.
func Max(vs []Version) Version {
	var m Version
	for _, v := range vs {
		if m.IsZero() || v.Compare(m) > 0 {
			m = v
		}
	}
	return m
}
