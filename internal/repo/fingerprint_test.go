package repo

import (
	"strings"
	"testing"
)

// TestFingerprintStableAcrossAddOrder: the hash covers content, not build
// order — versions are kept sorted, so interleaving Add calls differently
// must not change it.
func TestFingerprintStableAcrossAddOrder(t *testing.T) {
	a := New()
	a.Add("app", "2.0", Dep("lib", ":"))
	a.Add("app", "1.0")
	a.Add("lib", "1.0", Confl("app", "1"))

	b := New()
	b.Add("lib", "1.0", Confl("app", "1"))
	b.Add("app", "1.0")
	b.Add("app", "2.0", Dep("lib", ":"))

	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa != fb {
		t.Errorf("fingerprints differ across Add order:\n a: %s\n b: %s", fa, fb)
	}
	if len(fa) != 64 || strings.Trim(fa, "0123456789abcdef") != "" {
		t.Errorf("fingerprint %q is not lowercase sha256 hex", fa)
	}
}

// TestFingerprintSensitive: any content change — extra version, different
// range, dep vs conflict, renamed target — must change the hash.
func TestFingerprintSensitive(t *testing.T) {
	base := func() *Universe {
		u := New()
		u.Add("app", "1.0", Dep("lib", ":2"))
		u.Add("lib", "1.0")
		return u
	}
	fp := base().Fingerprint()

	mutations := map[string]func() *Universe{
		"extra version": func() *Universe {
			u := base()
			u.Add("lib", "2.0")
			return u
		},
		"different range": func() *Universe {
			u := New()
			u.Add("app", "1.0", Dep("lib", ":3"))
			u.Add("lib", "1.0")
			return u
		},
		"dep becomes conflict": func() *Universe {
			u := New()
			u.Add("app", "1.0", Confl("lib", ":2"))
			u.Add("lib", "1.0")
			return u
		},
		"renamed package": func() *Universe {
			u := New()
			u.Add("app", "1.0", Dep("lib2", ":2"))
			u.Add("lib2", "1.0")
			return u
		},
	}
	for name, build := range mutations {
		if got := build().Fingerprint(); got == fp {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
	if got := base().Fingerprint(); got != fp {
		t.Error("fingerprint not reproducible for identical content")
	}
}

// TestSynthDenseConflictsDeterministic: the conflict-bearing generator is a
// pure function of its arguments, degenerates to SynthDense at
// conflictsPer == 0, and actually emits conflicts otherwise.
func TestSynthDenseConflictsDeterministic(t *testing.T) {
	u1, _ := SynthDenseConflicts(12, 4, 3, 2, 77)
	u2, _ := SynthDenseConflicts(12, 4, 3, 2, 77)
	if u1.Fingerprint() != u2.Fingerprint() {
		t.Error("two builds with identical arguments differ")
	}

	plain, _ := SynthDense(12, 4, 3, 77)
	zero, _ := SynthDenseConflicts(12, 4, 3, 0, 77)
	if plain.Fingerprint() != zero.Fingerprint() {
		t.Error("conflictsPer == 0 must reproduce SynthDense exactly")
	}
	if u1.Fingerprint() == plain.Fingerprint() {
		t.Error("conflictsPer > 0 produced no observable conflicts")
	}

	conflicts := 0
	for _, name := range u1.Names() {
		p, _ := u1.Package(name)
		for _, def := range p.Versions() {
			conflicts += len(def.Conflicts)
		}
	}
	if conflicts == 0 {
		t.Error("expected at least one conflict declaration")
	}
	if err := u1.Validate(); err != nil {
		t.Errorf("generated universe fails validation: %v", err)
	}
}
