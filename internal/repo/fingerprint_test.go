package repo

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

// TestFingerprintStableAcrossAddOrder: the hash covers content, not build
// order — versions are kept sorted, so interleaving Add calls differently
// must not change it.
func TestFingerprintStableAcrossAddOrder(t *testing.T) {
	a := New()
	a.Add("app", "2.0", Dep("lib", ":"))
	a.Add("app", "1.0")
	a.Add("lib", "1.0", Confl("app", "1"))

	b := New()
	b.Add("lib", "1.0", Confl("app", "1"))
	b.Add("app", "1.0")
	b.Add("app", "2.0", Dep("lib", ":"))

	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa != fb {
		t.Errorf("fingerprints differ across Add order:\n a: %s\n b: %s", fa, fb)
	}
	if len(fa) != 64 || strings.Trim(fa, "0123456789abcdef") != "" {
		t.Errorf("fingerprint %q is not lowercase sha256 hex", fa)
	}
}

// TestFingerprintSensitive: any content change — extra version, different
// range, dep vs conflict, renamed target — must change the hash.
func TestFingerprintSensitive(t *testing.T) {
	base := func() *Universe {
		u := New()
		u.Add("app", "1.0", Dep("lib", ":2"))
		u.Add("lib", "1.0")
		return u
	}
	fp := base().Fingerprint()

	mutations := map[string]func() *Universe{
		"extra version": func() *Universe {
			u := base()
			u.Add("lib", "2.0")
			return u
		},
		"different range": func() *Universe {
			u := New()
			u.Add("app", "1.0", Dep("lib", ":3"))
			u.Add("lib", "1.0")
			return u
		},
		"dep becomes conflict": func() *Universe {
			u := New()
			u.Add("app", "1.0", Confl("lib", ":2"))
			u.Add("lib", "1.0")
			return u
		},
		"renamed package": func() *Universe {
			u := New()
			u.Add("app", "1.0", Dep("lib2", ":2"))
			u.Add("lib2", "1.0")
			return u
		},
	}
	for name, build := range mutations {
		if got := build().Fingerprint(); got == fp {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
	if got := base().Fingerprint(); got != fp {
		t.Error("fingerprint not reproducible for identical content")
	}
}

// TestFingerprintDistinguishesProvidesAndWhen is the cache-poisoning
// regression test for the richer declaration schema: two universes
// differing ONLY in a Provides or When declaration must hash differently —
// otherwise a Session solution cache could serve a resolution computed
// under different provider or trigger semantics.
func TestFingerprintDistinguishesProvidesAndWhen(t *testing.T) {
	base := func() *Universe {
		u := New()
		u.Add("app", "1.0", Dep("lib", ":2"))
		u.Add("lib", "1.0")
		return u
	}
	fp := base().Fingerprint()

	mutations := map[string]func() *Universe{
		"provides added": func() *Universe {
			u := New()
			u.Add("app", "1.0", Dep("lib", ":2"))
			u.Add("lib", "1.0", Prov("iface", "1.0"))
			return u
		},
		"provided version differs": func() *Universe {
			u := New()
			u.Add("app", "1.0", Dep("lib", ":2"))
			u.Add("lib", "1.0", Prov("iface", "2.0"))
			return u
		},
		"provided virtual renamed": func() *Universe {
			u := New()
			u.Add("app", "1.0", Dep("lib", ":2"))
			u.Add("lib", "1.0", Prov("iface2", "1.0"))
			return u
		},
		"dep gains a condition": func() *Universe {
			u := New()
			u.Add("app", "1.0", DepWhen("lib", ":2", "lib", "1:"))
			u.Add("lib", "1.0")
			return u
		},
		"condition range differs": func() *Universe {
			u := New()
			u.Add("app", "1.0", DepWhen("lib", ":2", "lib", "2:"))
			u.Add("lib", "1.0")
			return u
		},
	}
	seen := map[string]string{"base": fp}
	for name, build := range mutations {
		got := build().Fingerprint()
		for prev, prevFP := range seen {
			if got == prevFP {
				t.Errorf("%s: fingerprint collides with %s", name, prev)
			}
		}
		seen[name] = got
	}
	// Conditional vs unconditional conflict must differ too.
	uncond := New()
	uncond.Add("app", "1.0", Confl("lib", ":"))
	uncond.Add("lib", "1.0")
	cond := New()
	cond.Add("app", "1.0", ConflWhen("lib", ":", "lib", ":"))
	cond.Add("lib", "1.0")
	if uncond.Fingerprint() == cond.Fingerprint() {
		t.Error("conditional and unconditional conflict hash identically")
	}
}

// TestFingerprintSchemaTagged: the serialization carries the v2 schema tag,
// so the hash of even a trivially small universe differs from what the
// untagged v1 serialization would produce (guarding against silent schema
// reuse if the tag were dropped).
func TestFingerprintSchemaTagged(t *testing.T) {
	u := New()
	u.Add("solo", "1.0")
	// Recompute what an untagged serialization of this universe hashes to.
	h := sha256.New()
	fmt.Fprintf(h, "p %q\n", "solo")
	fmt.Fprintf(h, "v %q\n", "1.0")
	untagged := hex.EncodeToString(h.Sum(nil))
	if u.Fingerprint() == untagged {
		t.Error("fingerprint is not schema-tagged")
	}
}

// TestSynthVirtualGeneratorsDeterministic: the virtual/conditional
// families are pure functions of their arguments and carry the
// declarations they advertise.
func TestSynthVirtualGeneratorsDeterministic(t *testing.T) {
	v1, root1 := SynthVirtualDiamond(3, 2, 4)
	v2, root2 := SynthVirtualDiamond(3, 2, 4)
	if root1 != root2 || v1.Fingerprint() != v2.Fingerprint() {
		t.Error("SynthVirtualDiamond not deterministic")
	}
	if v1.NumVirtuals() != 3 {
		t.Errorf("NumVirtuals = %d, want 3", v1.NumVirtuals())
	}
	if provs, _ := v1.Virtual("virt0"); len(provs) != 2*4 {
		t.Errorf("virt0 has %d provider entries, want 8", len(provs))
	}
	if err := v1.Validate(); err != nil {
		t.Errorf("SynthVirtualDiamond invalid: %v", err)
	}

	c1, _ := SynthConditionalChain(4, 3)
	c2, _ := SynthConditionalChain(4, 3)
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Error("SynthConditionalChain not deterministic")
	}
	if err := c1.Validate(); err != nil {
		t.Errorf("SynthConditionalChain invalid: %v", err)
	}
	conds := 0
	for _, name := range c1.Names() {
		p, _ := c1.Package(name)
		for _, def := range p.Versions() {
			for _, d := range def.Deps {
				if !d.When.IsZero() {
					conds++
				}
			}
			for _, cf := range def.Conflicts {
				if !cf.When.IsZero() {
					conds++
				}
			}
		}
	}
	if conds == 0 {
		t.Error("SynthConditionalChain emitted no conditional declarations")
	}
}

// TestSynthDenseConflictsDeterministic: the conflict-bearing generator is a
// pure function of its arguments, degenerates to SynthDense at
// conflictsPer == 0, and actually emits conflicts otherwise.
func TestSynthDenseConflictsDeterministic(t *testing.T) {
	u1, _ := SynthDenseConflicts(12, 4, 3, 2, 77)
	u2, _ := SynthDenseConflicts(12, 4, 3, 2, 77)
	if u1.Fingerprint() != u2.Fingerprint() {
		t.Error("two builds with identical arguments differ")
	}

	plain, _ := SynthDense(12, 4, 3, 77)
	zero, _ := SynthDenseConflicts(12, 4, 3, 0, 77)
	if plain.Fingerprint() != zero.Fingerprint() {
		t.Error("conflictsPer == 0 must reproduce SynthDense exactly")
	}
	if u1.Fingerprint() == plain.Fingerprint() {
		t.Error("conflictsPer > 0 produced no observable conflicts")
	}

	conflicts := 0
	for _, name := range u1.Names() {
		p, _ := u1.Package(name)
		for _, def := range p.Versions() {
			conflicts += len(def.Conflicts)
		}
	}
	if conflicts == 0 {
		t.Error("expected at least one conflict declaration")
	}
	if err := u1.Validate(); err != nil {
		t.Errorf("generated universe fails validation: %v", err)
	}
}
