package repo

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// Epoch counts the deltas applied to a Universe: 0 for a freshly built
// catalog, incremented by every successful Apply. Layers above use it to
// agree on which universe revision an artifact (an extended skeleton, a
// resolution) corresponds to.
type Epoch uint64

// Epoch returns the universe's current epoch.
func (u *Universe) Epoch() Epoch { return u.epoch }

// Live reports whether the universe is delta-managed: at least one Apply
// has happened, so direct Add mutation is frozen.
func (u *Universe) Live() bool { return u.live }

// VersionAdd is one entry of a Delta: a new version definition for a
// (possibly new) package.
type VersionAdd struct {
	Pkg string
	Def VersionDef
}

// Delta is an append-only batch of universe growth: new versions on
// existing packages, entirely new packages, and — through the new
// versions' declarations — new provides edges and dependencies. A delta
// can only strengthen the catalog's content monotonically: nothing is ever
// removed or redefined, which is what lets warm sessions extend their
// encoded skeletons in place instead of rebuilding.
//
// Build a delta with Add (same string-literal surface as Universe.Add),
// then hand it to Universe.Apply. The zero value is an empty delta. A
// Delta is not safe for concurrent mutation; once built it is read-only
// and may be applied to any number of universes (a portfolio broadcasts
// one delta across members).
type Delta struct {
	adds []VersionAdd
}

// NewDelta returns an empty delta.
func NewDelta() *Delta { return &Delta{} }

// Add appends one (package, version) with its declarations, mirroring
// Universe.Add: it panics on a malformed version string (deltas, like
// universes, are built from literals). Duplicate detection is deferred to
// Validate/Apply, which know the target universe.
func (d *Delta) Add(pkg, ver string, decls ...Decl) {
	v := version.MustParse(ver)
	def := VersionDef{Version: v}
	for _, dc := range decls {
		switch dc := dc.(type) {
		case Dependency:
			def.Deps = append(def.Deps, dc)
		case Conflict:
			def.Conflicts = append(def.Conflicts, dc)
		case Provides:
			def.Provides = append(def.Provides, dc)
		}
	}
	d.adds = append(d.adds, VersionAdd{Pkg: pkg, Def: def})
}

// Empty reports whether the delta carries no additions.
func (d *Delta) Empty() bool { return len(d.adds) == 0 }

// Len returns the number of version additions.
func (d *Delta) Len() int { return len(d.adds) }

// Adds returns the additions in canonical order: package name ascending,
// then version descending (newest first, matching universe iteration
// order). The canonical order makes the chained fingerprint — and every
// skeleton-extension artifact derived from the delta — independent of the
// order Add was called in. The slice is owned by the delta.
//
// goarxivlint:owned owned by the delta; callers must not mutate
func (d *Delta) Adds() []VersionAdd {
	sort.SliceStable(d.adds, func(i, j int) bool {
		if d.adds[i].Pkg != d.adds[j].Pkg {
			return d.adds[i].Pkg < d.adds[j].Pkg
		}
		return d.adds[i].Def.Version.Compare(d.adds[j].Def.Version) > 0
	})
	return d.adds
}

// Packages returns the sorted distinct package names the delta adds
// versions to.
func (d *Delta) Packages() []string {
	var out []string
	for _, a := range d.Adds() {
		if len(out) == 0 || out[len(out)-1] != a.Pkg {
			out = append(out, a.Pkg)
		}
	}
	return out
}

// Validate checks the delta against a target universe incrementally: only
// the delta's own additions and their declaration targets are examined —
// never the rest of the universe, which Apply trusts to be sound already.
// All violations are collected and joined (nil when the delta is
// applicable):
//
//   - no (package, version) may duplicate one already in the universe, or
//     another addition in the same delta;
//   - a newly provided virtual name must not collide with a concrete
//     package name (existing or added), and a new package name must not
//     collide with an existing virtual;
//   - every dependency and conflict target and every condition trigger
//     must name a package or virtual known to the universe or introduced
//     by this delta (append-only growth can only reference forward).
//
// As with Universe.Validate, a dependency range no candidate satisfies is
// not an error — it is a legitimate unsatisfiable constraint.
func (d *Delta) Validate(u *Universe) error {
	var errs []error
	newPkgs := make(map[string]bool)
	newVirts := make(map[string]bool)
	for _, a := range d.adds {
		newPkgs[a.Pkg] = true
		for _, pr := range a.Def.Provides {
			newVirts[pr.Virtual] = true
		}
	}
	known := func(name string) bool {
		if _, ok := u.pkgs[name]; ok {
			return true
		}
		return u.IsVirtual(name) || newPkgs[name] || newVirts[name]
	}

	seen := make(map[string]bool, len(d.adds))
	for _, a := range d.adds {
		key := a.Pkg + "\x00" + a.Def.Version.String()
		if seen[key] {
			errs = append(errs, fmt.Errorf("repo: delta adds %s@%s twice", a.Pkg, a.Def.Version))
		}
		seen[key] = true
		if p, ok := u.pkgs[a.Pkg]; ok && p.indexOf(a.Def.Version) >= 0 {
			errs = append(errs, fmt.Errorf("repo: delta re-adds existing version %s@%s", a.Pkg, a.Def.Version))
		}
	}

	for virt := range newVirts {
		if _, ok := u.pkgs[virt]; ok || newPkgs[virt] {
			errs = append(errs, fmt.Errorf("repo: delta-provided virtual %q collides with a concrete package name", virt))
		}
	}
	for pkg := range newPkgs {
		if _, exists := u.pkgs[pkg]; !exists && u.IsVirtual(pkg) {
			errs = append(errs, fmt.Errorf("repo: delta package %q collides with an existing virtual name", pkg))
		}
	}

	for _, a := range d.adds {
		checkWhen := func(kind string, w Condition) {
			if !w.IsZero() && !known(w.Pkg) {
				errs = append(errs, fmt.Errorf("repo: delta %s@%s %s condition triggers on unknown name %q",
					a.Pkg, a.Def.Version, kind, w.Pkg))
			}
		}
		for _, dep := range a.Def.Deps {
			if !known(dep.Pkg) {
				errs = append(errs, fmt.Errorf("repo: delta %s@%s depends on unknown name %q",
					a.Pkg, a.Def.Version, dep.Pkg))
			}
			checkWhen("dependency", dep.When)
		}
		for _, c := range a.Def.Conflicts {
			if !known(c.Pkg) {
				errs = append(errs, fmt.Errorf("repo: delta %s@%s conflicts with unknown name %q",
					a.Pkg, a.Def.Version, c.Pkg))
			}
			checkWhen("conflict", c.When)
		}
	}
	return errors.Join(errs...)
}

// deltaFingerprintTag versions the chained-fingerprint serialization.
const deltaFingerprintTag = "go-arxiv-delta-v1\n"

// chainFingerprint hashes the previous universe fingerprint together with
// the delta's canonical serialization (same line schema as Fingerprint),
// giving an O(delta) successor fingerprint.
func chainFingerprint(prev string, d *Delta) string {
	h := sha256.New()
	h.Write([]byte(deltaFingerprintTag))
	h.Write([]byte(prev))
	lastPkg := ""
	for i, a := range d.Adds() {
		if i == 0 || a.Pkg != lastPkg {
			fmt.Fprintf(h, "p %q\n", a.Pkg)
			lastPkg = a.Pkg
		}
		fmt.Fprintf(h, "v %q\n", a.Def.Version.String())
		for _, dep := range a.Def.Deps {
			fmt.Fprintf(h, "d %q %q %q %q\n", dep.Pkg, dep.Range.String(), dep.When.Pkg, dep.When.Range.String())
		}
		for _, c := range a.Def.Conflicts {
			fmt.Fprintf(h, "c %q %q %q %q\n", c.Pkg, c.Range.String(), c.When.Pkg, c.When.Range.String())
		}
		for _, pr := range a.Def.Provides {
			fmt.Fprintf(h, "P %q %q\n", pr.Virtual, pr.Version.String())
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Apply grows the universe by one epoch: the delta is validated
// incrementally (Delta.Validate), its additions inserted in canonical
// order, the virtual/provider and memoized name indexes updated in place,
// and the fingerprint advanced by chaining the previous fingerprint with
// the canonical delta — O(delta) work beyond the insertions themselves,
// never O(universe).
//
// On a validation error nothing is mutated and the current epoch is
// returned with the error. The first successful Apply marks the universe
// live, freezing direct Add mutation for good.
//
// Apply is not safe for use concurrent with readers: callers that share
// the universe across sessions (resolve.PortfolioResolver) must quiesce
// or lock out requests around it, which is exactly what the serving
// layer's Apply broadcast does.
func (u *Universe) Apply(d *Delta) (Epoch, error) {
	if err := d.Validate(u); err != nil {
		return u.epoch, err
	}
	// Memoize the predecessor fingerprint before mutating (the chained
	// hash needs it, and post-mutation the full recompute would be wrong).
	prev := u.Fingerprint()

	adds := d.Adds()
	var newNames []string
	for _, a := range adds {
		if _, ok := u.pkgs[a.Pkg]; !ok {
			if len(newNames) == 0 || newNames[len(newNames)-1] != a.Pkg {
				newNames = append(newNames, a.Pkg)
			}
		}
		u.insertDef(a.Pkg, a.Def)
	}

	// Keep the memoized sorted name index warm with a copy-on-write merge
	// (concurrent readers hold the old slice; never mutate it in place).
	if cached := u.names.Load(); cached != nil && len(newNames) > 0 {
		merged := make([]string, 0, len(*cached)+len(newNames))
		merged = append(merged, *cached...)
		for _, n := range newNames {
			i := sort.SearchStrings(merged, n)
			merged = append(merged, "")
			copy(merged[i+1:], merged[i:])
			merged[i] = n
		}
		u.names.Store(&merged)
	}

	u.live = true
	u.epoch++
	fp := chainFingerprint(prev, d)
	u.fp.Store(&fp)
	return u.epoch, nil
}
