package repo

import (
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

func TestAddOrdersNewestFirst(t *testing.T) {
	u := New()
	u.Add("zlib", "1.2.8")
	u.Add("zlib", "1.2.11")
	u.Add("zlib", "1.1")
	p, ok := u.Package("zlib")
	if !ok {
		t.Fatal("zlib not found")
	}
	var got []string
	for _, def := range p.Versions() {
		got = append(got, def.Version.String())
	}
	want := []string{"1.2.11", "1.2.8", "1.1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("versions = %v, want %v", got, want)
	}
	if p.Newest().String() != "1.2.11" {
		t.Errorf("Newest = %s", p.Newest())
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add should panic")
		}
	}()
	u := New()
	u.Add("zlib", "1.2.8")
	u.Add("zlib", "1.2.8")
}

func TestDeclsRecorded(t *testing.T) {
	u := New()
	u.Add("libdwarf", "20130729",
		Dep("libelf", "0.8.12"),
		Confl("mpich", ":"))
	u.Add("libelf", "0.8.12")
	u.Add("mpich", "3.0.4")
	p, _ := u.Package("libdwarf")
	def := p.Versions()[0]
	if len(def.Deps) != 1 || def.Deps[0].Pkg != "libelf" {
		t.Errorf("deps = %+v", def.Deps)
	}
	if !def.Deps[0].Range.Satisfies(version.MustParse("0.8.12")) {
		t.Error("dep range should admit 0.8.12")
	}
	if len(def.Conflicts) != 1 || def.Conflicts[0].Pkg != "mpich" {
		t.Errorf("conflicts = %+v", def.Conflicts)
	}
	if err := u.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateUnknownReferences(t *testing.T) {
	u := New()
	u.Add("a", "1.0", Dep("ghost", ":"))
	if err := u.Validate(); err == nil {
		t.Error("Validate should reject dependency on unknown package")
	}
	u2 := New()
	u2.Add("a", "1.0", Confl("ghost", ":"))
	if err := u2.Validate(); err == nil {
		t.Error("Validate should reject conflict with unknown package")
	}
}

// TestValidateReportsAllErrors: Validate collects every integrity
// violation via errors.Join instead of stopping at the first — one pass
// over a broken universe names each problem.
func TestValidateReportsAllErrors(t *testing.T) {
	u := New()
	u.Add("a", "1.0",
		Dep("ghostdep", ":"),
		Confl("ghostconfl", ":"),
		DepWhen("b", ":", "ghosttrigger", "2:"),
		ConflWhen("b", ":", "ghosttrigger2", ":"))
	u.Add("b", "1.0", Prov("a", "1.0")) // virtual "a" collides with package "a"
	err := u.Validate()
	if err == nil {
		t.Fatal("Validate accepted a universe with five violations")
	}
	for _, want := range []string{
		"ghostdep", "ghostconfl", "ghosttrigger", "ghosttrigger2", "collides",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
}

// TestValidateVirtualReferences: dependency, conflict, and trigger targets
// naming a virtual (with at least one provider) are sound; Provides itself
// introduces the virtual.
func TestValidateVirtualReferences(t *testing.T) {
	u := New()
	u.Add("app", "1.0",
		Dep("mpi", "2:"),
		ConflWhen("mpi", ":1", "toggle", ":"),
		DepWhen("extra", ":", "mpi", "3:"))
	u.Add("ompi", "4.0", Prov("mpi", "3.0"))
	u.Add("toggle", "1.0")
	u.Add("extra", "1.0")
	if err := u.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNamesAndCounts(t *testing.T) {
	u, root := SynthDiamond(3, 4)
	if root != "app" {
		t.Errorf("root = %q", root)
	}
	// app + 3 mids + base
	if got := u.NumPackages(); got != 5 {
		t.Errorf("NumPackages = %d, want 5", got)
	}
	if got := u.NumVersions(); got != 20 {
		t.Errorf("NumVersions = %d, want 20", got)
	}
	names := u.Names()
	want := []string{"app", "base", "mid0", "mid1", "mid2"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Names = %v, want %v", names, want)
	}
}

func TestSynthGeneratorsValidateAndAreDeterministic(t *testing.T) {
	type gen struct {
		name  string
		build func() (*Universe, string)
	}
	gens := []gen{
		{"diamond", func() (*Universe, string) { return SynthDiamond(4, 5) }},
		{"chain", func() (*Universe, string) { return SynthChain(8, 4) }},
		{"dense", func() (*Universe, string) { return SynthDense(12, 4, 3, 7) }},
		{"unsatweb", func() (*Universe, string) { return SynthUnsatWeb(4, 3) }},
		{"virtualdiamond", func() (*Universe, string) { return SynthVirtualDiamond(3, 2, 4) }},
		{"condchain", func() (*Universe, string) { return SynthConditionalChain(5, 3) }},
	}
	for _, g := range gens {
		u1, root1 := g.build()
		u2, root2 := g.build()
		if err := u1.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", g.name, err)
		}
		if root1 != root2 {
			t.Errorf("%s: roots differ: %q vs %q", g.name, root1, root2)
		}
		if !reflect.DeepEqual(u1.Names(), u2.Names()) {
			t.Errorf("%s: package sets differ between runs", g.name)
		}
		// Structural determinism: identical version lists and declarations.
		for _, name := range u1.Names() {
			p1, _ := u1.Package(name)
			p2, _ := u2.Package(name)
			if !reflect.DeepEqual(p1.Versions(), p2.Versions()) {
				t.Errorf("%s: package %s differs between runs", g.name, name)
			}
		}
	}
}

// TestVirtualIndexAndCandidates: the virtual-name index is canonical
// (provider order independent of Add order) and Candidates unifies the
// package and virtual namespaces, carrying the matched version each.
func TestVirtualIndexAndCandidates(t *testing.T) {
	build := func(flip bool) *Universe {
		u := New()
		add := func() {
			u.Add("ompi", "4.0", Prov("mpi", "3.0"))
			u.Add("ompi", "3.0", Prov("mpi", "2.1"))
		}
		if flip {
			u.Add("mpich", "1.5", Prov("mpi", "1.0"))
			add()
		} else {
			add()
			u.Add("mpich", "1.5", Prov("mpi", "1.0"))
		}
		return u
	}
	a, b := build(false), build(true)
	if !a.IsVirtual("mpi") || a.IsVirtual("ompi") || a.NumVirtuals() != 1 {
		t.Fatalf("virtual index wrong: %v", a.VirtualNames())
	}
	pa, _ := a.Virtual("mpi")
	pb, _ := b.Virtual("mpi")
	if !reflect.DeepEqual(pa, pb) {
		t.Errorf("provider order depends on Add order:\n a: %v\n b: %v", pa, pb)
	}

	cands, ok := a.Candidates("mpi")
	if !ok || len(cands) != 3 {
		t.Fatalf("Candidates(mpi) = %v, %v", cands, ok)
	}
	for _, c := range cands {
		p, _ := a.Package(c.Pkg)
		if !p.Versions()[c.Index].Version.Equal(c.Version) {
			t.Errorf("candidate %v: Index does not address Version", c)
		}
		if c.Matched.Equal(c.Version) {
			t.Errorf("virtual candidate %v: Matched should be the provided version", c)
		}
	}
	pkgCands, ok := a.Candidates("ompi")
	if !ok || len(pkgCands) != 2 || !pkgCands[0].Matched.Equal(pkgCands[0].Version) {
		t.Errorf("package candidates wrong: %v, %v", pkgCands, ok)
	}
	if _, ok := a.Candidates("ghost"); ok {
		t.Error("Candidates accepted an unknown name")
	}

	if got := a.TargetPackages("mpi"); !reflect.DeepEqual(got, []string{"mpich", "ompi"}) {
		t.Errorf("TargetPackages(mpi) = %v", got)
	}
	if got := a.TargetPackages("ompi"); !reflect.DeepEqual(got, []string{"ompi"}) {
		t.Errorf("TargetPackages(ompi) = %v", got)
	}
	if got := a.TargetPackages("ghost"); got != nil {
		t.Errorf("TargetPackages(ghost) = %v, want nil", got)
	}
}

// TestNamesMemoized: Names returns the same (content-equal) slice across
// calls without rebuilding, and Add invalidates the memo — interleaved
// with Fingerprint, which walks Names on every call.
func TestNamesMemoized(t *testing.T) {
	u := New()
	u.Add("b", "1.0")
	u.Add("a", "1.0")
	n1 := u.Names()
	n2 := u.Names()
	if !reflect.DeepEqual(n1, []string{"a", "b"}) {
		t.Fatalf("Names = %v", n1)
	}
	if &n1[0] != &n2[0] {
		t.Error("repeat Names call rebuilt the slice (memo not hit)")
	}
	fp1 := u.Fingerprint()
	u.Add("c", "1.0")
	if got := u.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Names after Add = %v (stale memo)", got)
	}
	if u.Fingerprint() == fp1 {
		t.Error("fingerprint unchanged after Add (stale memo leaked into hash)")
	}
}

func TestSynthChainShape(t *testing.T) {
	u, root := SynthChain(5, 3)
	if root != "chain0" {
		t.Errorf("root = %q", root)
	}
	if u.NumPackages() != 5 || u.NumVersions() != 15 {
		t.Errorf("got %d pkgs %d versions", u.NumPackages(), u.NumVersions())
	}
	// Last link has no deps; first links have exactly one per version.
	last, _ := u.Package("chain4")
	for _, def := range last.Versions() {
		if len(def.Deps) != 0 {
			t.Errorf("chain4@%s should have no deps", def.Version)
		}
	}
	first, _ := u.Package("chain0")
	for _, def := range first.Versions() {
		if len(def.Deps) != 1 || def.Deps[0].Pkg != "chain1" {
			t.Errorf("chain0@%s deps = %+v", def.Version, def.Deps)
		}
	}
}
