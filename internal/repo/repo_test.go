package repo

import (
	"reflect"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

func TestAddOrdersNewestFirst(t *testing.T) {
	u := New()
	u.Add("zlib", "1.2.8")
	u.Add("zlib", "1.2.11")
	u.Add("zlib", "1.1")
	p, ok := u.Package("zlib")
	if !ok {
		t.Fatal("zlib not found")
	}
	var got []string
	for _, def := range p.Versions() {
		got = append(got, def.Version.String())
	}
	want := []string{"1.2.11", "1.2.8", "1.1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("versions = %v, want %v", got, want)
	}
	if p.Newest().String() != "1.2.11" {
		t.Errorf("Newest = %s", p.Newest())
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add should panic")
		}
	}()
	u := New()
	u.Add("zlib", "1.2.8")
	u.Add("zlib", "1.2.8")
}

func TestDeclsRecorded(t *testing.T) {
	u := New()
	u.Add("libdwarf", "20130729",
		Dep("libelf", "0.8.12"),
		Confl("mpich", ":"))
	u.Add("libelf", "0.8.12")
	u.Add("mpich", "3.0.4")
	p, _ := u.Package("libdwarf")
	def := p.Versions()[0]
	if len(def.Deps) != 1 || def.Deps[0].Pkg != "libelf" {
		t.Errorf("deps = %+v", def.Deps)
	}
	if !def.Deps[0].Range.Satisfies(version.MustParse("0.8.12")) {
		t.Error("dep range should admit 0.8.12")
	}
	if len(def.Conflicts) != 1 || def.Conflicts[0].Pkg != "mpich" {
		t.Errorf("conflicts = %+v", def.Conflicts)
	}
	if err := u.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateUnknownReferences(t *testing.T) {
	u := New()
	u.Add("a", "1.0", Dep("ghost", ":"))
	if err := u.Validate(); err == nil {
		t.Error("Validate should reject dependency on unknown package")
	}
	u2 := New()
	u2.Add("a", "1.0", Confl("ghost", ":"))
	if err := u2.Validate(); err == nil {
		t.Error("Validate should reject conflict with unknown package")
	}
}

func TestNamesAndCounts(t *testing.T) {
	u, root := SynthDiamond(3, 4)
	if root != "app" {
		t.Errorf("root = %q", root)
	}
	// app + 3 mids + base
	if got := u.NumPackages(); got != 5 {
		t.Errorf("NumPackages = %d, want 5", got)
	}
	if got := u.NumVersions(); got != 20 {
		t.Errorf("NumVersions = %d, want 20", got)
	}
	names := u.Names()
	want := []string{"app", "base", "mid0", "mid1", "mid2"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Names = %v, want %v", names, want)
	}
}

func TestSynthGeneratorsValidateAndAreDeterministic(t *testing.T) {
	type gen struct {
		name  string
		build func() (*Universe, string)
	}
	gens := []gen{
		{"diamond", func() (*Universe, string) { return SynthDiamond(4, 5) }},
		{"chain", func() (*Universe, string) { return SynthChain(8, 4) }},
		{"dense", func() (*Universe, string) { return SynthDense(12, 4, 3, 7) }},
		{"unsatweb", func() (*Universe, string) { return SynthUnsatWeb(4, 3) }},
	}
	for _, g := range gens {
		u1, root1 := g.build()
		u2, root2 := g.build()
		if err := u1.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", g.name, err)
		}
		if root1 != root2 {
			t.Errorf("%s: roots differ: %q vs %q", g.name, root1, root2)
		}
		if !reflect.DeepEqual(u1.Names(), u2.Names()) {
			t.Errorf("%s: package sets differ between runs", g.name)
		}
		// Structural determinism: identical version lists and declarations.
		for _, name := range u1.Names() {
			p1, _ := u1.Package(name)
			p2, _ := u2.Package(name)
			if !reflect.DeepEqual(p1.Versions(), p2.Versions()) {
				t.Errorf("%s: package %s differs between runs", g.name, name)
			}
		}
	}
}

func TestSynthChainShape(t *testing.T) {
	u, root := SynthChain(5, 3)
	if root != "chain0" {
		t.Errorf("root = %q", root)
	}
	if u.NumPackages() != 5 || u.NumVersions() != 15 {
		t.Errorf("got %d pkgs %d versions", u.NumPackages(), u.NumVersions())
	}
	// Last link has no deps; first links have exactly one per version.
	last, _ := u.Package("chain4")
	for _, def := range last.Versions() {
		if len(def.Deps) != 0 {
			t.Errorf("chain4@%s should have no deps", def.Version)
		}
	}
	first, _ := u.Package("chain0")
	for _, def := range first.Versions() {
		if len(def.Deps) != 1 || def.Deps[0].Pkg != "chain1" {
			t.Errorf("chain0@%s deps = %+v", def.Version, def.Deps)
		}
	}
}
