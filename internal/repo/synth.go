package repo

import (
	"fmt"
	"math/rand"
)

// This file contains deterministic synthetic universe generators used by
// both the concretizer tests and the BenchmarkConcretize* benchmarks, so
// future performance work has a stable workload trajectory to optimize
// against. All generators are pure functions of their arguments: calling
// one twice yields structurally identical universes.

// synthVer renders the k-th version (1-based) of a synthetic package.
func synthVer(k int) string { return fmt.Sprintf("%d.0", k) }

// SynthDiamond builds a diamond-shaped universe: a root "app" depends on
// `width` middle packages "mid0".."mid<width-1>", each of which depends on
// a single shared "base". Every package has `versions` versions 1.0 ..
// <versions>.0, and version k.0 of a parent requires its child at ":k", so
// picking everything at its newest version is the unique optimum. Returns
// the universe and the root package name.
func SynthDiamond(width, versions int) (*Universe, string) {
	if width < 1 || versions < 1 {
		panic("repo: SynthDiamond requires width >= 1 and versions >= 1")
	}
	u := New()
	for k := 1; k <= versions; k++ {
		var appDecls []Decl
		for m := 0; m < width; m++ {
			appDecls = append(appDecls, Dep(fmt.Sprintf("mid%d", m), ":"+fmt.Sprint(k)))
		}
		u.Add("app", synthVer(k), appDecls...)
		for m := 0; m < width; m++ {
			u.Add(fmt.Sprintf("mid%d", m), synthVer(k), Dep("base", ":"+fmt.Sprint(k)))
		}
		u.Add("base", synthVer(k))
	}
	return u, "app"
}

// SynthChain builds a linear dependency chain "chain0" -> "chain1" -> ... ->
// "chain<length-1>", each package with `versions` versions; version k.0 of
// each link requires the next link at ":k". Deep chains exercise propagation
// depth in the encoder and solver. Returns the universe and the root name.
func SynthChain(length, versions int) (*Universe, string) {
	if length < 1 || versions < 1 {
		panic("repo: SynthChain requires length >= 1 and versions >= 1")
	}
	u := New()
	for i := 0; i < length; i++ {
		name := fmt.Sprintf("chain%d", i)
		for k := 1; k <= versions; k++ {
			var decls []Decl
			if i+1 < length {
				decls = append(decls, Dep(fmt.Sprintf("chain%d", i+1), ":"+fmt.Sprint(k)))
			}
			u.Add(name, synthVer(k), decls...)
		}
	}
	return u, "chain0"
}

// SynthDense builds a version-dense DAG of `pkgs` packages "dense0"..,
// each with `versions` versions. Each version of package i depends on up to
// `depsPer` packages with a higher index, chosen by a seeded PRNG so the
// shape is deterministic for a given seed. Ranges are mostly wide (":") with
// an occasional tight upper bound to force version interplay; the universe
// is always satisfiable. Returns the universe and the root name ("dense0").
//
// Because every dependency range is an upper bound (":" or ":k") and
// raising a package's version only loosens the constraints on its
// dependents' choices, any request over a SynthDense universe has a unique
// optimal resolution: every reachable package at the newest version its
// (maximized) parents allow. The differential test harness in
// internal/concretize relies on this uniqueness to assert pick-for-pick
// equality between independent solver runs.
func SynthDense(pkgs, versions, depsPer int, seed int64) (*Universe, string) {
	return synthDense(pkgs, versions, depsPer, 0, seed)
}

// SynthDenseConflicts is SynthDense plus seeded random conflict
// declarations: each package gets up to `conflictsPer` conflicts, each
// attached to one random version of the declaring package and forbidding a
// random other package at versions >= a random floor. Conflict-bearing
// universes may be unsatisfiable for some (or all) requests and generally
// admit several co-optimal resolutions, so tests over them should compare
// costs and verify validity rather than exact picks. With conflictsPer == 0
// the result is identical to SynthDense for the same seed.
func SynthDenseConflicts(pkgs, versions, depsPer, conflictsPer int, seed int64) (*Universe, string) {
	if conflictsPer < 0 {
		panic("repo: SynthDenseConflicts requires conflictsPer >= 0")
	}
	return synthDense(pkgs, versions, depsPer, conflictsPer, seed)
}

func synthDense(pkgs, versions, depsPer, conflictsPer int, seed int64) (*Universe, string) {
	if pkgs < 1 || versions < 1 || depsPer < 0 {
		panic("repo: SynthDense requires pkgs >= 1, versions >= 1, depsPer >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	u := New()
	for i := 0; i < pkgs; i++ {
		name := fmt.Sprintf("dense%d", i)
		// Pick dependency targets once per package so every version agrees
		// on the dependency set and differs only in ranges.
		var targets []int
		if i+1 < pkgs {
			n := depsPer
			if rem := pkgs - i - 1; n > rem {
				n = rem
			}
			seen := map[int]bool{}
			for len(targets) < n {
				t := i + 1 + rng.Intn(pkgs-i-1)
				if !seen[t] {
					seen[t] = true
					targets = append(targets, t)
				}
			}
		}
		tight := rng.Intn(4) == 0 // one in four packages constrains versions
		// Conflicts (SynthDenseConflicts only): each is attached to one
		// version of this package and forbids another package at versions
		// >= a random floor. The rng calls are gated so conflictsPer == 0
		// reproduces SynthDense's exact stream for a given seed.
		confls := make(map[int][]Conflict)
		for c := 0; c < conflictsPer; c++ {
			t := rng.Intn(pkgs)
			from := 1 + rng.Intn(versions)
			floor := 1 + rng.Intn(versions)
			if t == i {
				continue
			}
			confls[from] = append(confls[from],
				Confl(fmt.Sprintf("dense%d", t), fmt.Sprintf("%d:", floor)))
		}
		for k := 1; k <= versions; k++ {
			var decls []Decl
			for _, t := range targets {
				rngStr := ":"
				if tight {
					rngStr = ":" + fmt.Sprint(k)
				}
				decls = append(decls, Dep(fmt.Sprintf("dense%d", t), rngStr))
			}
			for _, cf := range confls[k] {
				decls = append(decls, cf)
			}
			u.Add(name, synthVer(k), decls...)
		}
	}
	return u, "dense0"
}

// SynthPigeonhole builds an unsatisfiable universe encoding the pigeonhole
// principle: a root "nest" depends on `pigeons` packages "pigeon0"..; each
// pigeon has pigeons-1 versions (its hole choice), and version h of pigeon
// i conflicts with version h of every other pigeon. Any resolution of
// "nest" would place `pigeons` pigeons into pigeons-1 distinct holes, so
// the universe is unsatisfiable — and refuting it is exponentially hard
// for clause-learning solvers, which makes this family the deterministic
// long-running workload for cancellation and deadline tests (PHP with 11
// pigeons runs for minutes; a single pigeon alone resolves instantly).
// Returns the universe and the root name.
func SynthPigeonhole(pigeons int) (*Universe, string) {
	if pigeons < 2 {
		panic("repo: SynthPigeonhole requires pigeons >= 2")
	}
	u := New()
	holes := pigeons - 1
	var nestDecls []Decl
	for i := 0; i < pigeons; i++ {
		nestDecls = append(nestDecls, Dep(fmt.Sprintf("pigeon%d", i), ":"))
	}
	u.Add("nest", "1.0", nestDecls...)
	for i := 0; i < pigeons; i++ {
		name := fmt.Sprintf("pigeon%d", i)
		for h := 1; h <= holes; h++ {
			var decls []Decl
			for j := 0; j < pigeons; j++ {
				if j != i {
					decls = append(decls, Confl(fmt.Sprintf("pigeon%d", j), fmt.Sprintf("%d:%d", h, h)))
				}
			}
			u.Add(name, synthVer(h), decls...)
		}
	}
	return u, "nest"
}

// SynthVirtualDiamond builds a diamond-shaped universe over virtual
// interfaces: a root "app" depends on `virtuals` virtual names
// "virt0".."virt<virtuals-1>", each provided by `providers` competing
// provider packages "prov<i>_<j>", each of which depends on a single shared
// "vbase". Every concrete package has `versions` versions 1.0 ..
// <versions>.0; version k.0 of a provider provides its virtual at k.0 and
// requires vbase at ":k", and app@k requires each virtual at ":k", so every
// pick chain is an upper-bound (monotone) constraint.
//
// With providers == 1 each request has a unique optimal resolution (the
// SynthDense monotone argument applies: raising any version only loosens
// downstream constraints), so differential tests may assert pick-for-pick
// equality. With providers >= 2 the K providers of each virtual are
// interchangeable and the optimum is tie-prone: K co-optimal resolutions
// per virtual, so tests must compare costs and verify validity rather than
// exact picks. Returns the universe and the root package name.
func SynthVirtualDiamond(virtuals, providers, versions int) (*Universe, string) {
	if virtuals < 1 || providers < 1 || versions < 1 {
		panic("repo: SynthVirtualDiamond requires virtuals, providers, versions >= 1")
	}
	u := New()
	for k := 1; k <= versions; k++ {
		var appDecls []Decl
		for i := 0; i < virtuals; i++ {
			appDecls = append(appDecls, Dep(fmt.Sprintf("virt%d", i), ":"+fmt.Sprint(k)))
		}
		u.Add("app", synthVer(k), appDecls...)
		for i := 0; i < virtuals; i++ {
			for j := 0; j < providers; j++ {
				u.Add(fmt.Sprintf("prov%d_%d", i, j), synthVer(k),
					Prov(fmt.Sprintf("virt%d", i), synthVer(k)),
					Dep("vbase", ":"+fmt.Sprint(k)))
			}
		}
		u.Add("vbase", synthVer(k))
	}
	return u, "app"
}

// SynthConditionalChain builds a universe whose constraint graph flips with
// trigger picks: a root "cc0" depends on a trigger package "ctrl" at ":k"
// (so the root's version caps the trigger's) and on a chain
// "cc1".."cc<length-1>". Each link cc_i@k unconditionally accepts any next
// link, but conditionally — only when ctrl is selected at "k:" — requires
// the next link at "k:", so high trigger picks activate lower-bound
// cascades that low trigger picks leave dormant. A pariah package "ccx"
// (reachable only when requested as a root) carries conditional conflicts:
// ccx@k cannot coexist with cc0 at "k:" while ctrl is at "k:", so requests
// rooting both ccx and cc0 force the optimizer to trade trigger version-lag
// against the conflict — and are unsatisfiable outright when versions == 1.
// Every package has `versions` versions. Returns the universe and the root
// package name.
//
// Requests whose roots constrain only "cc0" have a unique optimal
// resolution (the root pick is forced to its newest allowed version by the
// dominant root weight, the trigger to the root's cap, and every link to
// its newest version, which all active cascades accept), so differential
// tests may assert exact picks on such streams; requests rooting other
// packages are tie-prone and should compare costs only.
func SynthConditionalChain(length, versions int) (*Universe, string) {
	if length < 1 || versions < 1 {
		panic("repo: SynthConditionalChain requires length >= 1 and versions >= 1")
	}
	u := New()
	for k := 1; k <= versions; k++ {
		ks := fmt.Sprint(k)
		u.Add("ctrl", synthVer(k))
		rootDecls := []Decl{Dep("ctrl", ":"+ks)}
		if length > 1 {
			rootDecls = append(rootDecls, Dep("cc1", ":"))
		}
		u.Add("cc0", synthVer(k), rootDecls...)
		for i := 1; i < length; i++ {
			var decls []Decl
			if i+1 < length {
				next := fmt.Sprintf("cc%d", i+1)
				decls = append(decls,
					Dep(next, ":"),
					DepWhen(next, ks+":", "ctrl", ks+":"))
			}
			u.Add(fmt.Sprintf("cc%d", i), synthVer(k), decls...)
		}
		u.Add("ccx", synthVer(k), ConflWhen("cc0", ks+":", "ctrl", ks+":"))
	}
	return u, "cc0"
}

// SynthRegistry builds a registry-shaped universe: `pkgs` packages
// "reg0".."reg<pkgs-1>" with `versions` versions each, whose dependency
// graph mimics a real ecosystem dump. A small tier of hub libraries (the
// last min(32, pkgs/8) packages, dependency-free leaves) is depended on
// from everywhere, while the remaining packages form blocks of 48 whose
// members depend only on up to three near successors inside their own
// block — so the catalog is huge but any single request reaches at most a
// block tail plus the hub tier, a few dozen packages. That gap between
// universe size and reachable-closure size is the workload the lazy
// session encoder exists for: whole-universe encoding pays for
// pkgs*(versions+1) variables up front, lazy materialization for ~80
// packages' worth.
//
// Every dependency range is an upper bound (":", or ":k" for every fourth
// package), so the SynthDense monotone argument applies: each request has
// a unique optimal resolution and differential tests may assert exact
// picks. The shape is a pure function of (pkgs, versions) — arithmetic,
// not seeded. Returns the universe and the root name "reg0".
func SynthRegistry(pkgs, versions int) (*Universe, string) {
	if pkgs < 2 || versions < 1 {
		panic("repo: SynthRegistry requires pkgs >= 2 and versions >= 1")
	}
	const (
		blockSize  = 48
		nearWindow = 9
		nearDeps   = 3
	)
	hubs := pkgs / 8
	if hubs > 32 {
		hubs = 32
	}
	if hubs < 1 {
		hubs = 1
	}
	hubStart := pkgs - hubs
	name := func(i int) string { return fmt.Sprintf("reg%d", i) }
	u := New()
	for i := 0; i < pkgs; i++ {
		// Dependency targets are chosen once per package (versions differ
		// only in ranges): near successors within the block, then hubs.
		var targets []int
		seen := map[int]bool{}
		if i < hubStart {
			blockEnd := (i/blockSize+1)*blockSize - 1
			if blockEnd >= hubStart {
				blockEnd = hubStart - 1
			}
			for d := 0; d < nearDeps; d++ {
				j := i + 1 + (i*(2*d+1)+d)%nearWindow
				if j > blockEnd || seen[j] {
					continue
				}
				seen[j] = true
				targets = append(targets, j)
			}
			h := hubStart + i%hubs
			seen[h] = true
			targets = append(targets, h)
			if h2 := hubStart + (i*7+3)%hubs; i%3 == 0 && !seen[h2] {
				targets = append(targets, h2)
			}
		}
		tight := i%4 == 0
		for k := 1; k <= versions; k++ {
			var decls []Decl
			for _, t := range targets {
				rngStr := ":"
				if tight && t < hubStart {
					rngStr = ":" + fmt.Sprint(k)
				}
				decls = append(decls, Dep(name(t), rngStr))
			}
			u.Add(name(i), synthVer(k), decls...)
		}
	}
	return u, "reg0"
}

// SynthUnsatWeb builds an unsatisfiable universe: a root "app" depends on
// `width` packages "web0".."web<width-1>" (any version), and every version
// of each web package conflicts with every version of the next one in the
// cycle. Since the root forces all of them to be installed, any width >= 2
// is unsatisfiable; larger widths grow the conflict web the solver must
// refute. Returns the universe and the root name.
func SynthUnsatWeb(width, versions int) (*Universe, string) {
	if width < 2 || versions < 1 {
		panic("repo: SynthUnsatWeb requires width >= 2 and versions >= 1")
	}
	u := New()
	var appDecls []Decl
	for m := 0; m < width; m++ {
		appDecls = append(appDecls, Dep(fmt.Sprintf("web%d", m), ":"))
	}
	for k := 1; k <= versions; k++ {
		u.Add("app", synthVer(k), appDecls...)
		for m := 0; m < width; m++ {
			next := fmt.Sprintf("web%d", (m+1)%width)
			u.Add(fmt.Sprintf("web%d", m), synthVer(k), Confl(next, ":"))
		}
	}
	return u, "app"
}
