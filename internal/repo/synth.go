package repo

import (
	"fmt"
	"math/rand"
)

// This file contains deterministic synthetic universe generators used by
// both the concretizer tests and the BenchmarkConcretize* benchmarks, so
// future performance work has a stable workload trajectory to optimize
// against. All generators are pure functions of their arguments: calling
// one twice yields structurally identical universes.

// synthVer renders the k-th version (1-based) of a synthetic package.
func synthVer(k int) string { return fmt.Sprintf("%d.0", k) }

// SynthDiamond builds a diamond-shaped universe: a root "app" depends on
// `width` middle packages "mid0".."mid<width-1>", each of which depends on
// a single shared "base". Every package has `versions` versions 1.0 ..
// <versions>.0, and version k.0 of a parent requires its child at ":k", so
// picking everything at its newest version is the unique optimum. Returns
// the universe and the root package name.
func SynthDiamond(width, versions int) (*Universe, string) {
	if width < 1 || versions < 1 {
		panic("repo: SynthDiamond requires width >= 1 and versions >= 1")
	}
	u := New()
	for k := 1; k <= versions; k++ {
		var appDecls []Decl
		for m := 0; m < width; m++ {
			appDecls = append(appDecls, Dep(fmt.Sprintf("mid%d", m), ":"+fmt.Sprint(k)))
		}
		u.Add("app", synthVer(k), appDecls...)
		for m := 0; m < width; m++ {
			u.Add(fmt.Sprintf("mid%d", m), synthVer(k), Dep("base", ":"+fmt.Sprint(k)))
		}
		u.Add("base", synthVer(k))
	}
	return u, "app"
}

// SynthChain builds a linear dependency chain "chain0" -> "chain1" -> ... ->
// "chain<length-1>", each package with `versions` versions; version k.0 of
// each link requires the next link at ":k". Deep chains exercise propagation
// depth in the encoder and solver. Returns the universe and the root name.
func SynthChain(length, versions int) (*Universe, string) {
	if length < 1 || versions < 1 {
		panic("repo: SynthChain requires length >= 1 and versions >= 1")
	}
	u := New()
	for i := 0; i < length; i++ {
		name := fmt.Sprintf("chain%d", i)
		for k := 1; k <= versions; k++ {
			var decls []Decl
			if i+1 < length {
				decls = append(decls, Dep(fmt.Sprintf("chain%d", i+1), ":"+fmt.Sprint(k)))
			}
			u.Add(name, synthVer(k), decls...)
		}
	}
	return u, "chain0"
}

// SynthDense builds a version-dense DAG of `pkgs` packages "dense0"..,
// each with `versions` versions. Each version of package i depends on up to
// `depsPer` packages with a higher index, chosen by a seeded PRNG so the
// shape is deterministic for a given seed. Ranges are mostly wide (":") with
// an occasional tight upper bound to force version interplay; the universe
// is always satisfiable. Returns the universe and the root name ("dense0").
func SynthDense(pkgs, versions, depsPer int, seed int64) (*Universe, string) {
	if pkgs < 1 || versions < 1 || depsPer < 0 {
		panic("repo: SynthDense requires pkgs >= 1, versions >= 1, depsPer >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	u := New()
	for i := 0; i < pkgs; i++ {
		name := fmt.Sprintf("dense%d", i)
		// Pick dependency targets once per package so every version agrees
		// on the dependency set and differs only in ranges.
		var targets []int
		if i+1 < pkgs {
			n := depsPer
			if rem := pkgs - i - 1; n > rem {
				n = rem
			}
			seen := map[int]bool{}
			for len(targets) < n {
				t := i + 1 + rng.Intn(pkgs-i-1)
				if !seen[t] {
					seen[t] = true
					targets = append(targets, t)
				}
			}
		}
		tight := rng.Intn(4) == 0 // one in four packages constrains versions
		for k := 1; k <= versions; k++ {
			var decls []Decl
			for _, t := range targets {
				rngStr := ":"
				if tight {
					rngStr = ":" + fmt.Sprint(k)
				}
				decls = append(decls, Dep(fmt.Sprintf("dense%d", t), rngStr))
			}
			u.Add(name, synthVer(k), decls...)
		}
	}
	return u, "dense0"
}

// SynthUnsatWeb builds an unsatisfiable universe: a root "app" depends on
// `width` packages "web0".."web<width-1>" (any version), and every version
// of each web package conflicts with every version of the next one in the
// cycle. Since the root forces all of them to be installed, any width >= 2
// is unsatisfiable; larger widths grow the conflict web the solver must
// refute. Returns the universe and the root name.
func SynthUnsatWeb(width, versions int) (*Universe, string) {
	if width < 2 || versions < 1 {
		panic("repo: SynthUnsatWeb requires width >= 2 and versions >= 1")
	}
	u := New()
	var appDecls []Decl
	for m := 0; m < width; m++ {
		appDecls = append(appDecls, Dep(fmt.Sprintf("web%d", m), ":"))
	}
	for k := 1; k <= versions; k++ {
		u.Add("app", synthVer(k), appDecls...)
		for m := 0; m < width; m++ {
			next := fmt.Sprintf("web%d", (m+1)%width)
			u.Add(fmt.Sprintf("web%d", m), synthVer(k), Confl(next, ":"))
		}
	}
	return u, "app"
}
