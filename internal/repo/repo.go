// Package repo models a package universe: package names, their available
// versions, per-version declarations, and the indexes the concretizer in
// internal/concretize lowers them from. It is the input side of the
// resolution stack, playing the role Spack's package repository plays for
// its concretizer: the catalog that resolution requests are solved
// against. The catalog is live, not static — see "Live growth" below.
//
// # Declaration model
//
// Each (package, version) carries a list of declarations:
//
//   - Dependency: the named target must be installed at a version inside
//     Range. The target may be a concrete package or a virtual name (see
//     below).
//   - Conflict: the declaring version cannot coexist with the named target
//     at any version inside Range.
//   - Provides: the declaring version provides the named virtual interface
//     at a virtual version (Spack's "provides(mpi@3)", Debian's Provides).
//
// Dependencies and conflicts may additionally be conditional: a Condition
// ("when" trigger) names a target (package or virtual) and a range, and the
// declaration constrains only in resolutions where that trigger is selected
// inside the range (npm-style optional/peer activation, Spack's when=).
// The zero Condition is unconditional.
//
// # Virtuals and candidates
//
// A virtual is a name that no concrete package owns; it exists only through
// Provides declarations and is usable anywhere a package name is: as a
// dependency or conflict target, as a condition trigger, and (through the
// concretizer) as a request root. The Universe maintains a virtual-name
// index, and Candidates unifies the two namespaces: for any requirement
// target it enumerates the concrete (package, version) selections able to
// satisfy it, each carrying the version that requirement ranges are matched
// against — the package's own version for a concrete target, the provided
// virtual version for a provider. Every layer above (encoder, reachability,
// verification, objectives) lowers requirements through this one interface
// instead of special-casing declaration types.
//
// # Live growth
//
// A Universe carries a monotone Epoch, bumped by Apply(Delta). A Delta is
// a validated batch of additions — new versions of existing packages, new
// packages, new providers — and is growth-only: nothing is ever retracted,
// mirroring how release streams behave and what lets downstream encoders
// extend state in place rather than rebuild (see
// internal/concretize.Session.Extend). Delta.Validate checks a delta
// against the universe it will apply to without mutating it; Apply is
// all-or-nothing. Fingerprints chain per epoch — each epoch's fingerprint
// hashes the previous one plus the delta — so two universes with equal
// content but different growth histories remain distinguishable.
package repo

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// Condition guards a declaration: the declaration constrains only when the
// named target (a package or virtual) is selected at a version inside
// Range. The zero Condition is unconditional.
type Condition struct {
	Pkg   string
	Range version.Range
}

// IsZero reports whether the condition is the unconditional zero value.
func (c Condition) IsZero() bool { return c.Pkg == "" }

// String renders the condition for diagnostics ("" when unconditional).
func (c Condition) String() string {
	if c.IsZero() {
		return ""
	}
	return "when " + c.Pkg + "@" + c.Range.String()
}

// Dependency is a constraint declared by one package version: the named
// target (package or virtual) must be installed at a version inside Range —
// but only in resolutions where When holds (always, for the zero When).
type Dependency struct {
	Pkg   string
	Range version.Range
	When  Condition
}

// Conflict declares that the declaring package version cannot coexist with
// the named target (package or virtual) at any version inside Range — but
// only in resolutions where When holds (always, for the zero When).
type Conflict struct {
	Pkg   string
	Range version.Range
	When  Condition
}

// Provides declares that the declaring package version provides the named
// virtual interface at virtual version Version. Requirements on the virtual
// match against Version, not the provider's own version.
type Provides struct {
	Virtual string
	Version version.Version
}

// Decl is a dependency, conflict, or provides declaration accepted by
// Universe.Add.
type Decl interface{ isDecl() }

func (Dependency) isDecl() {}
func (Conflict) isDecl()   {}
func (Provides) isDecl()   {}

// Dep builds an unconditional Dependency from string forms. It panics on a
// malformed range; intended for package definitions and tests where inputs
// are literals.
func Dep(pkg, rng string) Dependency {
	return Dependency{Pkg: pkg, Range: version.MustParseRange(rng)}
}

// DepWhen builds a conditional Dependency: pkg@rng required only when
// whenPkg is selected at a version in whenRng. Panics on malformed ranges.
func DepWhen(pkg, rng, whenPkg, whenRng string) Dependency {
	return Dependency{Pkg: pkg, Range: version.MustParseRange(rng),
		When: Condition{Pkg: whenPkg, Range: version.MustParseRange(whenRng)}}
}

// Confl builds an unconditional Conflict from string forms; panics on a
// malformed range.
func Confl(pkg, rng string) Conflict {
	return Conflict{Pkg: pkg, Range: version.MustParseRange(rng)}
}

// ConflWhen builds a conditional Conflict: pkg@rng forbidden only when
// whenPkg is selected at a version in whenRng. Panics on malformed ranges.
func ConflWhen(pkg, rng, whenPkg, whenRng string) Conflict {
	return Conflict{Pkg: pkg, Range: version.MustParseRange(rng),
		When: Condition{Pkg: whenPkg, Range: version.MustParseRange(whenRng)}}
}

// Prov builds a Provides from string forms; panics on a malformed version.
func Prov(virtual, ver string) Provides {
	return Provides{Virtual: virtual, Version: version.MustParse(ver)}
}

// VersionDef is one concrete version of a package together with the
// declarations it carries.
type VersionDef struct {
	Version   version.Version
	Deps      []Dependency
	Conflicts []Conflict
	Provides  []Provides
}

// Package is a named package with its available versions, newest first.
type Package struct {
	Name     string
	versions []VersionDef
}

// Versions returns the package's version definitions ordered newest first.
// The returned slice is owned by the package; callers must not mutate it.
//
// goarxivlint:owned borrowed view; callers must not mutate
func (p *Package) Versions() []VersionDef { return p.versions }

// NumVersions returns the number of available versions.
func (p *Package) NumVersions() int { return len(p.versions) }

// Newest returns the highest available version; the zero Version if the
// package has none.
func (p *Package) Newest() version.Version {
	if len(p.versions) == 0 {
		return version.Version{}
	}
	return p.versions[0].Version
}

// IndexOf returns the newest-first index of v among the package's
// versions, or -1 when absent. Skeleton extension uses it to re-locate a
// version's slot after delta insertions shift indices.
func (p *Package) IndexOf(v version.Version) int { return p.indexOf(v) }

// indexOf returns the newest-first index of v, or -1 when absent.
func (p *Package) indexOf(v version.Version) int {
	for i := range p.versions {
		if p.versions[i].Version.Equal(v) {
			return i
		}
	}
	return -1
}

// Provider is one entry of the virtual-name index: a concrete (package,
// version) providing a virtual at a provided virtual version.
type Provider struct {
	Pkg      string          // providing package name
	Version  version.Version // the provider's own version
	Provided version.Version // virtual version it provides
}

// Candidate is one concrete (package, version) able to satisfy a
// requirement on a name. Matched is the version requirement ranges are
// compared against: the package's own version for a concrete target, the
// provided virtual version for a provider of a virtual.
type Candidate struct {
	Pkg     string
	Index   int             // into Package.Versions() (newest first)
	Version version.Version // the candidate package's own version
	Matched version.Version // version matched against requirement ranges
}

// Universe is a catalog of packages that resolution requests are solved
// against. The zero value is not usable; call New.
type Universe struct {
	pkgs     map[string]*Package
	virtuals map[string][]Provider // virtual name -> providers (canonical order)

	// names memoizes the sorted package-name slice (read-heavy: every
	// fingerprint and skeleton encode walks it). Add invalidates it;
	// Apply updates it incrementally (copy-on-write merge). atomic so
	// concurrent readers (e.g. portfolio members fingerprinting lazily)
	// never race; racing rebuilders produce identical slices.
	names atomic.Pointer[[]string]

	// fp memoizes the content fingerprint. Add invalidates it; Apply
	// replaces it with the delta-chained hash in O(delta).
	fp atomic.Pointer[string]

	// epoch counts applied deltas; live marks the universe as
	// delta-managed, freezing direct Add mutation.
	epoch Epoch
	live  bool
}

// New returns an empty universe.
func New() *Universe {
	return &Universe{
		pkgs:     make(map[string]*Package),
		virtuals: make(map[string][]Provider),
	}
}

// Add declares one (package, version) with its declarations. It panics on a
// malformed version string or a duplicate (package, version) pair:
// universes are static catalogs built from literals, and a silent overwrite
// would hide definition bugs. Add is not safe for use concurrent with
// readers; build the universe fully before sharing it. Once the universe
// has gone live (its first Apply), Add panics: further growth must arrive
// as epoch-versioned deltas.
func (u *Universe) Add(pkg, ver string, decls ...Decl) {
	if u.live {
		panic("repo: Add on a live universe (after Apply); use a Delta")
	}
	v := version.MustParse(ver)
	def := VersionDef{Version: v}
	for _, d := range decls {
		switch d := d.(type) {
		case Dependency:
			def.Deps = append(def.Deps, d)
		case Conflict:
			def.Conflicts = append(def.Conflicts, d)
		case Provides:
			def.Provides = append(def.Provides, d)
		}
	}
	if p, ok := u.pkgs[pkg]; ok && p.indexOf(v) >= 0 {
		panic(fmt.Sprintf("repo: duplicate version %s@%s", pkg, ver))
	}
	u.insertDef(pkg, def)
	u.names.Store(nil) // invalidate the memoized sorted name slice
	u.fp.Store(nil)    // invalidate the memoized fingerprint
}

// insertDef inserts one version definition keeping newest-first order and
// indexes its provides declarations. The caller has already rejected
// duplicates (Add panics, Apply validates).
func (u *Universe) insertDef(pkg string, def VersionDef) {
	p := u.pkgs[pkg]
	if p == nil {
		p = &Package{Name: pkg}
		u.pkgs[pkg] = p
	}
	i := sort.Search(len(p.versions), func(i int) bool {
		return p.versions[i].Version.Compare(def.Version) <= 0
	})
	p.versions = append(p.versions, VersionDef{})
	copy(p.versions[i+1:], p.versions[i:])
	p.versions[i] = def

	for _, pr := range def.Provides {
		u.addProvider(pr.Virtual, Provider{Pkg: pkg, Version: def.Version, Provided: pr.Version})
	}
}

// addProvider inserts into the virtual index keeping canonical order:
// provider package name ascending, then provider version newest first, then
// provided version newest first. Canonical order makes every index-derived
// artifact (encodings, reachability walks) independent of Add order.
func (u *Universe) addProvider(virtual string, pr Provider) {
	provs := u.virtuals[virtual]
	i := sort.Search(len(provs), func(i int) bool {
		if provs[i].Pkg != pr.Pkg {
			return provs[i].Pkg > pr.Pkg
		}
		if c := provs[i].Version.Compare(pr.Version); c != 0 {
			return c < 0
		}
		return provs[i].Provided.Compare(pr.Provided) <= 0
	})
	provs = append(provs, Provider{})
	copy(provs[i+1:], provs[i:])
	provs[i] = pr
	u.virtuals[virtual] = provs
}

// Package looks up a package by name.
func (u *Universe) Package(name string) (*Package, bool) {
	p, ok := u.pkgs[name]
	return p, ok
}

// IsVirtual reports whether name is a virtual (has at least one provider).
// A name that is both a concrete package and a virtual target is a
// validation error; lookups resolve the package first.
func (u *Universe) IsVirtual(name string) bool {
	_, ok := u.virtuals[name]
	return ok
}

// Virtual returns the providers of a virtual name in canonical order. The
// returned slice is owned by the universe; callers must not mutate it.
//
// goarxivlint:owned borrowed view; callers must not mutate
func (u *Universe) Virtual(name string) ([]Provider, bool) {
	provs, ok := u.virtuals[name]
	return provs, ok
}

// VirtualNames returns all virtual names in sorted order.
func (u *Universe) VirtualNames() []string {
	names := make([]string, 0, len(u.virtuals))
	for n := range u.virtuals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumVirtuals returns the number of virtual names with at least one
// provider.
func (u *Universe) NumVirtuals() int { return len(u.virtuals) }

// Candidates enumerates the concrete (package, version) selections able to
// satisfy a requirement on name: the package's own versions when name is a
// concrete package, or every provider entry (carrying its provided virtual
// version as Matched) when name is a virtual. ok is false when the name is
// neither. This is the single lowering interface requirement targets,
// condition triggers, and request roots all resolve through.
func (u *Universe) Candidates(name string) ([]Candidate, bool) {
	if p, ok := u.pkgs[name]; ok {
		out := make([]Candidate, len(p.versions))
		for i := range p.versions {
			v := p.versions[i].Version
			out[i] = Candidate{Pkg: name, Index: i, Version: v, Matched: v}
		}
		return out, true
	}
	if provs, ok := u.virtuals[name]; ok {
		out := make([]Candidate, 0, len(provs))
		for _, pr := range provs {
			p := u.pkgs[pr.Pkg]
			out = append(out, Candidate{
				Pkg:     pr.Pkg,
				Index:   p.indexOf(pr.Version),
				Version: pr.Version,
				Matched: pr.Provided,
			})
		}
		return out, true
	}
	return nil, false
}

// TargetPackages returns the concrete package names a requirement on name
// can resolve to: {name} for a package, the deduplicated sorted provider
// package set for a virtual, nil for an unknown name. Reachability walks
// traverse requirement edges through it.
func (u *Universe) TargetPackages(name string) []string {
	if _, ok := u.pkgs[name]; ok {
		return []string{name}
	}
	provs, ok := u.virtuals[name]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(provs))
	for _, pr := range provs { // canonical order: grouped by package name
		if len(out) == 0 || out[len(out)-1] != pr.Pkg {
			out = append(out, pr.Pkg)
		}
	}
	return out
}

// Names returns all package names in sorted order. The slice is memoized
// (rebuilt after Add) and shared: callers must not mutate it.
//
// goarxivlint:owned memoized shared slice; callers must not mutate
func (u *Universe) Names() []string {
	if cached := u.names.Load(); cached != nil {
		return *cached
	}
	names := make([]string, 0, len(u.pkgs))
	for n := range u.pkgs {
		names = append(names, n)
	}
	sort.Strings(names)
	u.names.Store(&names)
	return names
}

// NumPackages returns the number of packages in the universe.
func (u *Universe) NumPackages() int { return len(u.pkgs) }

// NumVersions returns the total number of (package, version) pairs.
func (u *Universe) NumVersions() int {
	n := 0
	for _, p := range u.pkgs {
		n += len(p.versions)
	}
	return n
}

// fingerprintTag versions the Fingerprint serialization. It is bumped
// whenever the serialized declaration schema changes (v2: provides lines
// and condition fields), so cache keys derived from universes written under
// an older schema can never collide with keys written under the current
// one.
const fingerprintTag = "go-arxiv-universe-v2\n"

// Fingerprint returns a stable content hash of the universe: the SHA-256
// (hex) of a canonical serialization covering every package name, its
// versions newest-first, and each version's dependency, conflict, and
// provides declarations — including condition triggers — with their ranges.
// Two universes built from the same declarations hash identically
// regardless of Add order (version insertion is sorted); any change to a
// name, version, range, provided virtual, or condition changes the hash.
// The serialization carries a schema tag, so a schema change (new
// declaration kinds) changes every hash at once.
//
// The hash is memoized: the full O(universe) serialization runs at most
// once per mutation. On a live universe, Apply replaces the memo with a
// delta-chained hash (previous fingerprint + canonical delta), so
// fingerprinting stays O(delta) per epoch; the chained value identifies
// the universe's delta history, meaning two universes with identical
// content reached through different delta partitionings hash differently.
func (u *Universe) Fingerprint() string {
	if cached := u.fp.Load(); cached != nil {
		return *cached
	}
	h := sha256.New()
	h.Write([]byte(fingerprintTag))
	for _, name := range u.Names() {
		p := u.pkgs[name]
		fmt.Fprintf(h, "p %q\n", name)
		for _, def := range p.versions {
			fmt.Fprintf(h, "v %q\n", def.Version.String())
			for _, d := range def.Deps {
				fmt.Fprintf(h, "d %q %q %q %q\n", d.Pkg, d.Range.String(), d.When.Pkg, d.When.Range.String())
			}
			for _, c := range def.Conflicts {
				fmt.Fprintf(h, "c %q %q %q %q\n", c.Pkg, c.Range.String(), c.When.Pkg, c.When.Range.String())
			}
			for _, pr := range def.Provides {
				fmt.Fprintf(h, "P %q %q\n", pr.Virtual, pr.Version.String())
			}
		}
	}
	fp := hex.EncodeToString(h.Sum(nil))
	u.fp.Store(&fp)
	return fp
}

// Validate checks declaration integrity, collecting every violation and
// returning them joined via errors.Join (nil when the universe is sound):
//
//   - every dependency and conflict target must name a package or a virtual
//     with at least one provider;
//   - every condition trigger must likewise name a package or a virtual;
//   - a virtual name must not collide with a concrete package name (the
//     namespaces are resolved package-first everywhere, so a collision
//     would shadow the providers).
//
// A dependency range that no candidate satisfies is NOT an error — it is a
// legitimate (unsatisfiable) constraint the solver reports as such.
func (u *Universe) Validate() error {
	var errs []error
	for _, virt := range u.VirtualNames() {
		if _, ok := u.pkgs[virt]; ok {
			provs := u.virtuals[virt]
			errs = append(errs, fmt.Errorf(
				"repo: virtual %q (provided by %s@%s) collides with a concrete package name",
				virt, provs[0].Pkg, provs[0].Version))
		}
	}
	known := func(name string) bool {
		if _, ok := u.pkgs[name]; ok {
			return true
		}
		return u.IsVirtual(name)
	}
	for _, name := range u.Names() {
		p := u.pkgs[name]
		for _, def := range p.versions {
			checkWhen := func(kind string, w Condition) {
				if !w.IsZero() && !known(w.Pkg) {
					errs = append(errs, fmt.Errorf("repo: %s@%s %s condition triggers on unknown name %q",
						name, def.Version, kind, w.Pkg))
				}
			}
			for _, d := range def.Deps {
				if !known(d.Pkg) {
					errs = append(errs, fmt.Errorf("repo: %s@%s depends on unknown name %q",
						name, def.Version, d.Pkg))
				}
				checkWhen("dependency", d.When)
			}
			for _, c := range def.Conflicts {
				if !known(c.Pkg) {
					errs = append(errs, fmt.Errorf("repo: %s@%s conflicts with unknown name %q",
						name, def.Version, c.Pkg))
				}
				checkWhen("conflict", c.When)
			}
		}
	}
	return errors.Join(errs...)
}
