// Package repo models a package universe: package names, their available
// versions, per-version dependency constraints, and conflicts. It is the
// input side of the concretizer in internal/concretize, playing the role
// Spack's package repository plays for its concretizer: a static catalog
// that resolution requests are solved against.
package repo

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// Dependency is a constraint declared by one package version: the named
// package must be installed at a version inside Range.
type Dependency struct {
	Pkg   string
	Range version.Range
}

// Conflict declares that the declaring package version cannot coexist with
// the named package at any version inside Range.
type Conflict struct {
	Pkg   string
	Range version.Range
}

// Decl is a dependency or conflict declaration accepted by Universe.Add.
type Decl interface{ isDecl() }

func (Dependency) isDecl() {}
func (Conflict) isDecl()   {}

// Dep builds a Dependency from string forms. It panics on a malformed
// range; intended for package definitions and tests where inputs are
// literals.
func Dep(pkg, rng string) Dependency {
	return Dependency{Pkg: pkg, Range: version.MustParseRange(rng)}
}

// Confl builds a Conflict from string forms; panics on a malformed range.
func Confl(pkg, rng string) Conflict {
	return Conflict{Pkg: pkg, Range: version.MustParseRange(rng)}
}

// VersionDef is one concrete version of a package together with the
// dependencies and conflicts it declares.
type VersionDef struct {
	Version   version.Version
	Deps      []Dependency
	Conflicts []Conflict
}

// Package is a named package with its available versions, newest first.
type Package struct {
	Name     string
	versions []VersionDef
}

// Versions returns the package's version definitions ordered newest first.
// The returned slice is owned by the package; callers must not mutate it.
func (p *Package) Versions() []VersionDef { return p.versions }

// NumVersions returns the number of available versions.
func (p *Package) NumVersions() int { return len(p.versions) }

// Newest returns the highest available version; the zero Version if the
// package has none.
func (p *Package) Newest() version.Version {
	if len(p.versions) == 0 {
		return version.Version{}
	}
	return p.versions[0].Version
}

// Universe is a catalog of packages that resolution requests are solved
// against. The zero value is not usable; call New.
type Universe struct {
	pkgs map[string]*Package
}

// New returns an empty universe.
func New() *Universe {
	return &Universe{pkgs: make(map[string]*Package)}
}

// Add declares one (package, version) with its dependency and conflict
// declarations. It panics on a malformed version string or a duplicate
// (package, version) pair: universes are static catalogs built from
// literals, and a silent overwrite would hide definition bugs.
func (u *Universe) Add(pkg, ver string, decls ...Decl) {
	v := version.MustParse(ver)
	p := u.pkgs[pkg]
	if p == nil {
		p = &Package{Name: pkg}
		u.pkgs[pkg] = p
	}
	def := VersionDef{Version: v}
	for _, d := range decls {
		switch d := d.(type) {
		case Dependency:
			def.Deps = append(def.Deps, d)
		case Conflict:
			def.Conflicts = append(def.Conflicts, d)
		}
	}
	// Insert keeping newest-first order; reject duplicates.
	i := sort.Search(len(p.versions), func(i int) bool {
		return p.versions[i].Version.Compare(v) <= 0
	})
	if i < len(p.versions) && p.versions[i].Version.Equal(v) {
		panic(fmt.Sprintf("repo: duplicate version %s@%s", pkg, ver))
	}
	p.versions = append(p.versions, VersionDef{})
	copy(p.versions[i+1:], p.versions[i:])
	p.versions[i] = def
}

// Package looks up a package by name.
func (u *Universe) Package(name string) (*Package, bool) {
	p, ok := u.pkgs[name]
	return p, ok
}

// Names returns all package names in sorted order.
func (u *Universe) Names() []string {
	names := make([]string, 0, len(u.pkgs))
	for n := range u.pkgs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumPackages returns the number of packages in the universe.
func (u *Universe) NumPackages() int { return len(u.pkgs) }

// NumVersions returns the total number of (package, version) pairs.
func (u *Universe) NumVersions() int {
	n := 0
	for _, p := range u.pkgs {
		n += len(p.versions)
	}
	return n
}

// Fingerprint returns a stable content hash of the universe: the SHA-256
// (hex) of a canonical serialization covering every package name, its
// versions newest-first, and each version's dependency and conflict
// declarations with their ranges. Two universes built from the same
// declarations hash identically regardless of Add order (version insertion
// is sorted); any change to a name, version, range, or declaration order
// within a version changes the hash. It is the universe half of the
// solution-cache key in internal/concretize, so cached resolutions can
// never be served against different catalog contents.
func (u *Universe) Fingerprint() string {
	h := sha256.New()
	for _, name := range u.Names() {
		p := u.pkgs[name]
		fmt.Fprintf(h, "p %q\n", name)
		for _, def := range p.versions {
			fmt.Fprintf(h, "v %q\n", def.Version.String())
			for _, d := range def.Deps {
				fmt.Fprintf(h, "d %q %q\n", d.Pkg, d.Range.String())
			}
			for _, c := range def.Conflicts {
				fmt.Fprintf(h, "c %q %q\n", c.Pkg, c.Range.String())
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Validate checks referential integrity: every dependency and conflict must
// name a package that exists in the universe. A dependency range that no
// version satisfies is NOT an error — it is a legitimate (unsatisfiable)
// constraint the solver reports as such.
func (u *Universe) Validate() error {
	for _, name := range u.Names() {
		p := u.pkgs[name]
		for _, def := range p.versions {
			for _, d := range def.Deps {
				if _, ok := u.pkgs[d.Pkg]; !ok {
					return fmt.Errorf("repo: %s@%s depends on unknown package %q",
						name, def.Version, d.Pkg)
				}
			}
			for _, c := range def.Conflicts {
				if _, ok := u.pkgs[c.Pkg]; !ok {
					return fmt.Errorf("repo: %s@%s conflicts with unknown package %q",
						name, def.Version, c.Pkg)
				}
			}
		}
	}
	return nil
}
