package repo

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// Profile is a snapshot of an installed system: which packages are present
// and at which version. It is the input to change-minimizing objectives in
// the concretizer (upgrade one root while touching as little of the
// existing install as possible) and is an ordinary map, so callers can
// build one from literals or from a previous resolution's picks.
type Profile map[string]version.Version

// ProfileOf copies a resolution's picks (or any package->version map) into
// a Profile the caller owns.
func ProfileOf(picks map[string]version.Version) Profile {
	p := make(Profile, len(picks))
	for name, v := range picks {
		p[name] = v
	}
	return p
}

// Canonical renders the profile deterministically: "pkg@version" entries
// sorted by package name, comma-joined. Two profiles with the same
// contents always render identically.
func (p Profile) Canonical() string {
	parts := make([]string, 0, len(p))
	for name, v := range p {
		parts = append(parts, name+"@"+v.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Fingerprint returns a stable content hash (SHA-256, hex) of the
// canonical rendering, suitable as the profile half of a cache key.
func (p Profile) Fingerprint() string {
	h := sha256.Sum256([]byte(p.Canonical()))
	return hex.EncodeToString(h[:])
}

// Validate checks the profile against a universe: every named package must
// exist. A version the catalog no longer carries is NOT an error — it is a
// legitimate state for an install predating a catalog update; objectives
// treat any re-pick of such a package as a change.
func (p Profile) Validate(u *Universe) error {
	for name := range p {
		if _, ok := u.Package(name); !ok {
			return fmt.Errorf("repo: profile names unknown package %q", name)
		}
	}
	return nil
}

// VersionIndex returns the index of the profile's version of pkg within
// the package's newest-first version list, or -1 when the package is not
// in the profile or the version is no longer in the catalog.
func (p Profile) VersionIndex(u *Universe, pkg string) int {
	v, ok := p[pkg]
	if !ok {
		return -1
	}
	pk, ok := u.Package(pkg)
	if !ok {
		return -1
	}
	for i, def := range pk.Versions() {
		if def.Version.Equal(v) {
			return i
		}
	}
	return -1
}
