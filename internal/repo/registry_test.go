package repo

import (
	"fmt"
	"testing"
)

// TestSynthRegistryDeterministic: the family is pure arithmetic — two
// builds at the same scale must be byte-identical (same fingerprint), and
// scale changes must change it.
func TestSynthRegistryDeterministic(t *testing.T) {
	a, rootA := SynthRegistry(300, 7)
	b, rootB := SynthRegistry(300, 7)
	if rootA != "reg0" || rootB != "reg0" {
		t.Fatalf("roots %q, %q; want reg0", rootA, rootB)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same scale, different fingerprints:\n %s\n %s", a.Fingerprint(), b.Fingerprint())
	}
	c, _ := SynthRegistry(300, 8)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatalf("different scales share fingerprint %s", a.Fingerprint())
	}
}

// TestSynthRegistryShape pins the structural properties the lazy-encoder
// suites lean on: exact package/version counts, validity, a hub tier of
// dependency-free leaves, and sparse near-block fan-out everywhere else —
// the shape that keeps any single root's reachable closure tiny relative
// to the registry.
func TestSynthRegistryShape(t *testing.T) {
	const pkgs, versions = 300, 7
	u, root := SynthRegistry(pkgs, versions)
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := u.NumPackages(); got != pkgs {
		t.Fatalf("NumPackages %d, want %d", got, pkgs)
	}
	if got := u.NumVersions(); got != pkgs*versions {
		t.Fatalf("NumVersions %d, want %d", got, pkgs*versions)
	}

	hubs := pkgs / 8
	if hubs > 32 {
		hubs = 32
	}
	hubStart := pkgs - hubs
	for i := 0; i < pkgs; i++ {
		p, ok := u.Package(fmt.Sprintf("reg%d", i))
		if !ok {
			t.Fatalf("missing package reg%d", i)
		}
		if got := len(p.Versions()); got != versions {
			t.Fatalf("reg%d: %d versions, want %d", i, got, versions)
		}
		nDeps := len(p.Versions()[0].Deps)
		if i >= hubStart {
			if nDeps != 0 {
				t.Fatalf("hub reg%d has %d deps, want 0 (hubs are leaves)", i, nDeps)
			}
			continue
		}
		if nDeps < 1 || nDeps > 5 {
			t.Fatalf("reg%d has %d deps, want 1..5 (sparse fan-out)", i, nDeps)
		}
		// Acyclicity by construction: every dependency points strictly
		// forward in package order.
		for _, d := range p.Versions()[0].Deps {
			var j int
			if _, err := fmt.Sscanf(d.Pkg, "reg%d", &j); err != nil || j <= i {
				t.Fatalf("reg%d depends on %s: not strictly forward", i, d.Pkg)
			}
		}
	}

	// The root's reachable closure is bounded by its block plus the hub
	// tier (~90 packages) regardless of registry size — the scale-free
	// bound that gives a lazy encoder its edge.
	reach := map[string]bool{}
	var walk func(name string)
	walk = func(name string) {
		if reach[name] {
			return
		}
		reach[name] = true
		p, _ := u.Package(name)
		for _, def := range p.Versions() {
			for _, d := range def.Deps {
				walk(d.Pkg)
			}
		}
	}
	walk(root)
	if len(reach) < 2 || len(reach) > 120 {
		t.Fatalf("root closure %d of %d packages — registry not sparse", len(reach), pkgs)
	}
}
