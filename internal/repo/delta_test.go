package repo

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// seedUniverse builds the base catalog the delta tests grow.
func seedUniverse() *Universe {
	u := New()
	u.Add("app", "2.0", Dep("lib", "1:"))
	u.Add("app", "1.0", Dep("lib", ":"))
	u.Add("lib", "1.5", Dep("base", ":"))
	u.Add("lib", "1.0")
	u.Add("base", "1.0")
	u.Add("mpich", "3.0", Prov("mpi", "3.0"))
	return u
}

func TestApplyGrowsUniverse(t *testing.T) {
	u := seedUniverse()
	if u.Epoch() != 0 || u.Live() {
		t.Fatalf("fresh universe: epoch=%d live=%v", u.Epoch(), u.Live())
	}
	preFP := u.Fingerprint()

	d := NewDelta()
	d.Add("lib", "2.0", Dep("base", ":"))
	d.Add("newpkg", "1.0", Dep("lib", "2:"))
	d.Add("openmpi", "4.0", Prov("mpi", "4.0"))
	epoch, err := u.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || u.Epoch() != 1 || !u.Live() {
		t.Fatalf("after Apply: epoch=%d live=%v", u.Epoch(), u.Live())
	}

	lib, _ := u.Package("lib")
	if lib.NumVersions() != 3 || lib.Newest().String() != "2.0" {
		t.Fatalf("lib after delta: %d versions, newest %s", lib.NumVersions(), lib.Newest())
	}
	if lib.IndexOf(version.MustParse("2.0")) != 0 || lib.IndexOf(version.MustParse("1.0")) != 2 {
		t.Fatalf("lib version order wrong after insert")
	}
	if _, ok := u.Package("newpkg"); !ok {
		t.Fatalf("newpkg missing after delta")
	}
	provs, ok := u.Virtual("mpi")
	if !ok || len(provs) != 2 {
		t.Fatalf("mpi providers after delta: %v ok=%v", provs, ok)
	}

	if fp := u.Fingerprint(); fp == preFP {
		t.Fatalf("fingerprint unchanged across Apply")
	}
}

func TestApplyFreezesDirectAdd(t *testing.T) {
	u := seedUniverse()
	d := NewDelta()
	d.Add("base", "2.0")
	if _, err := u.Apply(d); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Add on a live universe did not panic")
		}
	}()
	u.Add("base", "3.0")
}

// TestApplyKeepsMemoizedNamesWarm: Names() before Apply memoizes the index;
// Apply must merge incrementally and stay identical to a fresh sort — and
// the pre-Apply snapshot held by a concurrent reader must not be mutated.
func TestApplyKeepsMemoizedNamesWarm(t *testing.T) {
	u := seedUniverse()
	before := u.Names()
	snapshot := append([]string(nil), before...)

	d := NewDelta()
	d.Add("aaa", "1.0")
	d.Add("zzz", "1.0")
	d.Add("lib", "9.0") // existing package: no name change
	if _, err := u.Apply(d); err != nil {
		t.Fatal(err)
	}
	after := u.Names()
	want := append([]string{"aaa", "zzz"}, snapshot...)
	sort.Strings(want)
	if strings.Join(after, ",") != strings.Join(want, ",") {
		t.Fatalf("merged names = %v, want %v", after, want)
	}
	if strings.Join(before, ",") != strings.Join(snapshot, ",") {
		t.Fatalf("pre-Apply names slice mutated in place")
	}
}

func TestDeltaFingerprintChain(t *testing.T) {
	build := func(addOrder []int) string {
		u := seedUniverse()
		d := NewDelta()
		adds := []func(){
			func() { d.Add("lib", "2.0", Dep("base", ":")) },
			func() { d.Add("extra", "1.0") },
			func() { d.Add("lib", "3.0") },
		}
		for _, i := range addOrder {
			adds[i]()
		}
		if _, err := u.Apply(d); err != nil {
			t.Fatal(err)
		}
		return u.Fingerprint()
	}

	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if a != b {
		t.Fatalf("chained fingerprint depends on Add call order: %s vs %s", a, b)
	}

	// Sensitivity: a different delta chains to a different fingerprint.
	u := seedUniverse()
	d := NewDelta()
	d.Add("lib", "2.0") // same version, no dependency
	if _, err := u.Apply(d); err != nil {
		t.Fatal(err)
	}
	if u.Fingerprint() == a {
		t.Fatalf("fingerprint insensitive to delta content")
	}

	// The chained fingerprint identifies delta history: applying the same
	// additions in two deltas differs from one delta (documented behavior).
	u2 := seedUniverse()
	d1 := NewDelta()
	d1.Add("lib", "2.0", Dep("base", ":"))
	d2 := NewDelta()
	d2.Add("extra", "1.0")
	d2.Add("lib", "3.0")
	if _, err := u2.Apply(d1); err != nil {
		t.Fatal(err)
	}
	if _, err := u2.Apply(d2); err != nil {
		t.Fatal(err)
	}
	if u2.Epoch() != 2 {
		t.Fatalf("epoch after two deltas = %d", u2.Epoch())
	}
	if u2.Fingerprint() == a {
		t.Fatalf("differently-partitioned histories chained to one fingerprint")
	}
}

func TestDeltaValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		build func(d *Delta)
		want  string
	}{
		{"dup within delta", func(d *Delta) {
			d.Add("extra", "1.0")
			d.Add("extra", "1.0")
		}, "twice"},
		{"dup vs universe", func(d *Delta) {
			d.Add("lib", "1.5")
		}, "re-adds existing version"},
		{"virtual collides with package", func(d *Delta) {
			d.Add("extra", "1.0", Prov("base", "1.0"))
		}, "collides with a concrete package"},
		{"package collides with virtual", func(d *Delta) {
			d.Add("mpi", "1.0")
		}, "collides with an existing virtual"},
		{"unknown dep target", func(d *Delta) {
			d.Add("extra", "1.0", Dep("ghost", ":"))
		}, "depends on unknown name"},
		{"unknown conflict target", func(d *Delta) {
			d.Add("extra", "1.0", Confl("ghost", ":"))
		}, "conflicts with unknown name"},
		{"unknown trigger", func(d *Delta) {
			d.Add("extra", "1.0", DepWhen("lib", ":", "ghost", ":"))
		}, "triggers on unknown name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := seedUniverse()
			preFP := u.Fingerprint()
			prePkgs := u.NumPackages()
			d := NewDelta()
			tc.build(d)
			epoch, err := u.Apply(d)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Apply error = %v, want substring %q", err, tc.want)
			}
			if epoch != 0 || u.Epoch() != 0 || u.Live() {
				t.Fatalf("failed Apply advanced the epoch")
			}
			if u.Fingerprint() != preFP || u.NumPackages() != prePkgs {
				t.Fatalf("failed Apply mutated the universe")
			}
		})
	}

	// Forward references within one delta are legal: a new package may
	// depend on another new package or newly provided virtual.
	u := seedUniverse()
	d := NewDelta()
	d.Add("front", "1.0", Dep("back", ":"), Dep("newvirt", ":"))
	d.Add("back", "1.0", Prov("newvirt", "1.0"))
	if _, err := u.Apply(d); err != nil {
		t.Fatalf("forward-referencing delta rejected: %v", err)
	}
}

// FuzzDeltaApply drives random delta streams against a seed universe:
// every valid delta must apply with a strictly increasing epoch and a
// fingerprint consistent with an independent replay of the same history,
// and the grown universe must be structurally identical to one built from
// scratch with the same content; injected invalid deltas must be rejected
// without mutating anything.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x10, 0xff}, uint8(3))
	f.Add([]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0x07, 0x31}, uint8(5))
	f.Add([]byte{0x00}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, steps uint8) {
		next := func(i int) int {
			if len(data) == 0 {
				return 0
			}
			return int(data[i%len(data)])
		}
		u := seedUniverse()
		shadow := seedUniverse() // replays the same deltas for fp consistency
		fresh := New()           // accumulates the union via direct Add
		union := []struct {
			pkg, ver string
			decls    []Decl
		}{
			{"app", "2.0", []Decl{Dep("lib", "1:")}},
			{"app", "1.0", []Decl{Dep("lib", ":")}},
			{"lib", "1.5", []Decl{Dep("base", ":")}},
			{"lib", "1.0", nil},
			{"base", "1.0", nil},
			{"mpich", "3.0", []Decl{Prov("mpi", "3.0")}},
		}

		nSteps := int(steps%8) + 1
		verSeq := 100 // fresh version numbers, never colliding with the seed
		pkgSeq := 0
		for step := 0; step < nSteps; step++ {
			d := NewDelta()
			nAdds := next(step)%3 + 1
			invalid := next(step+7)%5 == 0 // one in five deltas is poisoned
			for a := 0; a < nAdds; a++ {
				sel := next(step*13 + a*3)
				verSeq++
				ver := fmt.Sprintf("%d.0", verSeq)
				var pkg string
				var decls []Decl
				switch sel % 4 {
				case 0: // new version of an existing package
					pkg = []string{"app", "lib", "base"}[sel%3]
					decls = []Decl{Dep("base", ":")}
					if pkg == "base" {
						decls = nil
					}
				case 1: // brand-new package depending into the seed
					pkgSeq++
					pkg = fmt.Sprintf("fz%d", pkgSeq)
					decls = []Decl{Dep("lib", ":")}
				case 2: // new provider of the seed virtual
					pkgSeq++
					pkg = fmt.Sprintf("fzp%d", pkgSeq)
					decls = []Decl{Prov("mpi", ver)}
				case 3: // conditional declaration riding on seed names
					pkg = "lib"
					decls = []Decl{DepWhen("base", ":", "app", ":")}
				}
				d.Add(pkg, ver, decls...)
				if !invalid {
					union = append(union, struct {
						pkg, ver string
						decls    []Decl
					}{pkg, ver, decls})
				}
			}
			if invalid {
				d.Add("ix", "1.0", Dep("no-such-name", ":")) // poison pill
			}

			preEpoch := u.Epoch()
			preFP := u.Fingerprint()
			epoch, err := u.Apply(d)
			if invalid {
				if err == nil {
					t.Fatalf("step %d: poisoned delta applied", step)
				}
				if u.Epoch() != preEpoch || u.Fingerprint() != preFP {
					t.Fatalf("step %d: rejected delta mutated the universe", step)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: valid delta rejected: %v", step, err)
			}
			if epoch != preEpoch+1 {
				t.Fatalf("step %d: epoch %d after %d", step, epoch, preEpoch)
			}
			if _, err := shadow.Apply(d); err != nil {
				t.Fatalf("step %d: shadow replay rejected: %v", step, err)
			}
			if u.Fingerprint() != shadow.Fingerprint() {
				t.Fatalf("step %d: chained fingerprint not reproducible", step)
			}
		}

		// Structural equivalence with a from-scratch build of the union.
		for _, a := range union {
			fresh.Add(a.pkg, a.ver, a.decls...)
		}
		if got, want := u.Names(), fresh.Names(); strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("names diverge from scratch build:\n  live:  %v\n  fresh: %v", got, want)
		}
		for _, name := range u.Names() {
			lp, _ := u.Package(name)
			fp, _ := fresh.Package(name)
			if lp.NumVersions() != fp.NumVersions() {
				t.Fatalf("%s: %d versions live, %d fresh", name, lp.NumVersions(), fp.NumVersions())
			}
			for i := range lp.Versions() {
				if !lp.Versions()[i].Version.Equal(fp.Versions()[i].Version) {
					t.Fatalf("%s: version order diverges at %d", name, i)
				}
			}
		}
		lv, fv := u.VirtualNames(), fresh.VirtualNames()
		if strings.Join(lv, ",") != strings.Join(fv, ",") {
			t.Fatalf("virtuals diverge: %v vs %v", lv, fv)
		}
		for _, virt := range lv {
			lc, _ := u.Candidates(virt)
			fc, _ := fresh.Candidates(virt)
			if len(lc) != len(fc) {
				t.Fatalf("%s: %d candidates live, %d fresh", virt, len(lc), len(fc))
			}
		}
	})
}
