package repo

import (
	"strings"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

func TestProfileCanonicalAndFingerprint(t *testing.T) {
	a := Profile{"zlib": version.MustParse("1.2"), "app": version.MustParse("3.0")}
	if got, want := a.Canonical(), "app@3.0,zlib@1.2"; got != want {
		t.Fatalf("Canonical = %q, want %q", got, want)
	}
	b := ProfileOf(map[string]version.Version{
		"app":  version.MustParse("3.0"),
		"zlib": version.MustParse("1.2"),
	})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal profiles must fingerprint identically")
	}
	b["zlib"] = version.MustParse("1.3")
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different profiles must fingerprint differently")
	}
	if Profile(nil).Canonical() != "" {
		t.Fatal("empty profile canonical form must be empty")
	}
}

func TestProfileValidate(t *testing.T) {
	u := New()
	u.Add("zlib", "1.2")
	if err := (Profile{"zlib": version.MustParse("1.2")}).Validate(u); err != nil {
		t.Fatalf("valid profile: %v", err)
	}
	// A version missing from the catalog is allowed (stale install)...
	if err := (Profile{"zlib": version.MustParse("9.9")}).Validate(u); err != nil {
		t.Fatalf("stale version must validate: %v", err)
	}
	// ...but an unknown package is not.
	err := (Profile{"ghost": version.MustParse("1.0")}).Validate(u)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unknown package: err = %v", err)
	}
}

func TestProfileVersionIndex(t *testing.T) {
	u := New()
	u.Add("zlib", "1.2")
	u.Add("zlib", "1.3")
	u.Add("zlib", "1.4")
	p := Profile{"zlib": version.MustParse("1.3")}
	if got := p.VersionIndex(u, "zlib"); got != 1 {
		t.Fatalf("VersionIndex = %d, want 1 (newest-first)", got)
	}
	if got := p.VersionIndex(u, "ghost"); got != -1 {
		t.Fatalf("unknown package index = %d, want -1", got)
	}
	stale := Profile{"zlib": version.MustParse("0.9")}
	if got := stale.VersionIndex(u, "zlib"); got != -1 {
		t.Fatalf("stale version index = %d, want -1", got)
	}
}

func TestSynthPigeonhole(t *testing.T) {
	u, root := SynthPigeonhole(4)
	if root != "nest" {
		t.Fatalf("root = %q", root)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	// pigeons + nest packages; each pigeon has pigeons-1 versions.
	if got, want := u.NumPackages(), 5; got != want {
		t.Fatalf("NumPackages = %d, want %d", got, want)
	}
	if got, want := u.NumVersions(), 1+4*3; got != want {
		t.Fatalf("NumVersions = %d, want %d", got, want)
	}
	// Determinism.
	u2, _ := SynthPigeonhole(4)
	if u.Fingerprint() != u2.Fingerprint() {
		t.Fatal("SynthPigeonhole must be deterministic")
	}
}
