package resolve

// White-box fault-injection tests for the Apply broadcast path: the
// production failure mode (a member Extend failing mid-broadcast) is only
// reachable through universe corruption, so the concretize/extend
// faultpoint simulates it (members extend in racing order — baseline,
// positive, dive, steady — so a Skip/Error schedule targets one member).
// These pin the quarantine contract introduced by the partial-broadcast
// bugfix: a failed member is benched, not left racing at a stale epoch.

import (
	"context"
	"errors"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/faultpoint"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// armFault arms one faultpoint site with a single anonymous rule and
// disarms everything at test end (schedules are process-global).
func armFault(t *testing.T, site string, steps ...faultpoint.Step) {
	t.Helper()
	t.Cleanup(faultpoint.DisarmAll)
	if err := faultpoint.Arm(site, faultpoint.Any(steps...)); err != nil {
		t.Fatal(err)
	}
}

func diamondDelta() *Delta {
	d := NewDelta()
	d.Add("app", "99.0", repo.Dep("mid0", ":"))
	return d
}

// TestPortfolioApplyQuarantinesFailedMember: a member whose Extend fails
// during the broadcast is quarantined — attributed in the returned error,
// visible in Health, and excluded from every subsequent race — while the
// surviving members complete the broadcast and keep serving.
func TestPortfolioApplyQuarantinesFailedMember(t *testing.T) {
	u, root := repo.SynthDiamond(3, 4)
	p := mustPortfolio(t, u)
	armFault(t, "concretize/extend", faultpoint.Skip(1), faultpoint.Error(1, nil))

	epoch, err := p.Apply(diamondDelta())
	if epoch != 1 {
		t.Fatalf("epoch after apply = %d, want 1 (universe must advance)", epoch)
	}
	if err == nil {
		t.Fatal("broadcast with a failing member returned nil error")
	}
	var me *MemberError
	if !errors.As(err, &me) {
		t.Fatalf("broadcast error %T lost member attribution: %v", err, err)
	}
	if me.Member != "positive" {
		t.Fatalf("attributed member = %q, want positive", me.Member)
	}

	// Health: the failed member is quarantined at its stale epoch; every
	// survivor reached the new epoch.
	quarantined := 0
	for _, h := range p.Health() {
		if h.Name == "positive" {
			if !h.Quarantined || h.Err == nil {
				t.Fatalf("failed member not quarantined: %+v", h)
			}
			if h.Epoch != 0 {
				t.Fatalf("quarantined member epoch = %d, want stale 0", h.Epoch)
			}
			quarantined++
			continue
		}
		if h.Quarantined {
			t.Fatalf("healthy member %s quarantined: %v", h.Name, h.Err)
		}
		if h.Epoch != 1 {
			t.Fatalf("healthy member %s at epoch %d, want 1", h.Name, h.Epoch)
		}
	}
	if quarantined != 1 {
		t.Fatalf("quarantined members = %d, want 1", quarantined)
	}
	// Members() still lists the full configuration, quarantined included.
	if got := len(p.Members()); got != len(DefaultPortfolio()) {
		t.Fatalf("Members() = %d names, want %d", got, len(DefaultPortfolio()))
	}

	// The quarantined member must never win a race: it would answer from a
	// pre-delta skeleton. Repeat to give it every chance to race.
	req := Request{Roots: []Root{{Pkg: root}}, Objective: NewestVersion()}
	for i := 0; i < 8; i++ {
		res, err := p.Resolve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Config == "positive" {
			t.Fatal("quarantined member won a race")
		}
		if res.Picks["app"].String() != "99.0" {
			t.Fatalf("post-apply resolve picked app@%s, want 99.0", res.Picks["app"])
		}
		if res.Stats.Epoch != 1 {
			t.Fatalf("answer epoch = %d, want 1", res.Stats.Epoch)
		}
	}
}

// TestPortfolioAllQuarantinedFailStops: when the broadcast benches every
// member, the portfolio fail-stops — Resolve refuses with
// ErrNoActiveMembers rather than inventing an answer.
func TestPortfolioAllQuarantinedFailStops(t *testing.T) {
	u, root := repo.SynthDiamond(3, 4)
	p := mustPortfolio(t, u)
	armFault(t, "concretize/extend", faultpoint.Error(0, nil))

	epoch, err := p.Apply(diamondDelta())
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	if err == nil {
		t.Fatal("total broadcast failure returned nil error")
	}

	_, err = p.Resolve(context.Background(), Request{Roots: []Root{{Pkg: root}}, Objective: NewestVersion()})
	if !errors.Is(err, ErrNoActiveMembers) {
		t.Fatalf("resolve after total quarantine = %v, want ErrNoActiveMembers", err)
	}
}

// TestPortfolioQuarantineSticks: a second Apply must not resurrect a
// quarantined member — it skipped a delta, so it stays behind forever.
func TestPortfolioQuarantineSticks(t *testing.T) {
	u, _ := repo.SynthDiamond(3, 4)
	p := mustPortfolio(t, u)
	// Fault only "steady" (fourth in racing order); the schedule exhausts
	// and auto-disarms, so the second Apply runs fault-free.
	armFault(t, "concretize/extend", faultpoint.Skip(3), faultpoint.Error(1, nil))

	if _, err := p.Apply(diamondDelta()); err == nil {
		t.Fatal("want broadcast error")
	}
	// The fault is gone — but the member already missed a delta.

	d2 := NewDelta()
	d2.Add("app", "100.0", repo.Dep("mid0", ":"))
	epoch, err := p.Apply(d2)
	if epoch != 2 {
		t.Fatalf("epoch = %d, want 2", epoch)
	}
	if err != nil {
		t.Fatalf("second broadcast over healthy members failed: %v", err)
	}
	for _, h := range p.Health() {
		if h.Name == "steady" {
			if !h.Quarantined {
				t.Fatal("quarantined member resurrected by a later Apply")
			}
			if h.Epoch != 0 {
				t.Fatalf("quarantined member epoch = %d, want 0 (never extended)", h.Epoch)
			}
		} else if h.Epoch != 2 {
			t.Fatalf("member %s at epoch %d, want 2", h.Name, h.Epoch)
		}
	}
}

// TestPortfolioUnsatAttribution pins the second bugfix: a definitive
// unsat answer surfaces WHICH member proved it (via *MemberError) while
// preserving the whole error taxonomy for errors.Is/As callers.
func TestPortfolioUnsatAttribution(t *testing.T) {
	u, root := repo.SynthUnsatWeb(4, 2)
	p := mustPortfolio(t, u)

	_, err := p.Resolve(context.Background(), Request{Roots: []Root{{Pkg: root}}, Objective: NewestVersion()})
	if err == nil {
		t.Fatal("unsat web resolved")
	}
	var me *MemberError
	if !errors.As(err, &me) {
		t.Fatalf("unsat answer %T lost member attribution: %v", err, err)
	}
	if me.Member == "" {
		t.Fatal("member attribution empty")
	}
	var unsat *UnsatError
	if !errors.As(err, &unsat) {
		t.Fatalf("wrapping broke errors.As(*UnsatError): %v", err)
	}
	if len(unsat.Roots) == 0 {
		t.Fatal("unsat error lost its roots")
	}
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("wrapping broke errors.Is(ErrUnsatisfiable): %v", err)
	}
}
