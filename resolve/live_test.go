package resolve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// liveUniverse is a small clustered universe: independent root/leaf pairs
// so deltas can target one cluster while others stay cached.
func liveUniverse(clusters int) *repo.Universe {
	u := repo.New()
	for c := 0; c < clusters; c++ {
		u.Add(fmt.Sprintf("root%d", c), "1.0", repo.Dep(fmt.Sprintf("leaf%d", c), ":"))
		u.Add(fmt.Sprintf("leaf%d", c), "1.0")
	}
	return u
}

// TestSessionResolverApply: growth through the public surface — Apply
// returns the advancing epoch, answers report the epoch they were computed
// at, untouched shapes stay cache-served, and touched shapes flip to the
// delta's optimum.
func TestSessionResolverApply(t *testing.T) {
	u := liveUniverse(2)
	r := NewSessionResolver(u, SessionOptions{})
	req0 := Request{Roots: []Root{{Pkg: "root0"}}}
	req1 := Request{Roots: []Root{{Pkg: "root1"}}}

	res, err := r.Resolve(context.Background(), req0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Epoch != 0 {
		t.Fatalf("pre-delta Epoch = %d, want 0", res.Stats.Epoch)
	}
	if _, err := r.Resolve(context.Background(), req1); err != nil {
		t.Fatal(err)
	}

	d := NewDelta()
	d.Add("leaf1", "2.0")
	epoch, err := r.Apply(d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("Apply epoch = %d, want 1", epoch)
	}

	// Untouched cluster: cached answer survives, still stamped with the
	// epoch it was computed at.
	hit, err := r.Resolve(context.Background(), req0)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Stats.SolutionCacheHit {
		t.Error("delta to leaf1 invalidated root0's cached answer")
	}
	if hit.Stats.Epoch != 0 {
		t.Errorf("cached answer Epoch = %d, want 0 (computed pre-delta)", hit.Stats.Epoch)
	}

	// Touched cluster: re-solved at the new epoch, new optimum.
	miss, err := r.Resolve(context.Background(), req1)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Stats.SolutionCacheHit {
		t.Error("delta to leaf1 left root1's stale answer cached")
	}
	if miss.Stats.Epoch != 1 {
		t.Errorf("re-solved answer Epoch = %d, want 1", miss.Stats.Epoch)
	}
	if got := miss.Picks["leaf1"].String(); got != "2.0" {
		t.Errorf("leaf1 pick = %s, want 2.0", got)
	}

	// An invalid delta is rejected without moving the epoch.
	bad := NewDelta()
	bad.Add("leaf1", "2.0") // already exists
	if _, err := r.Apply(bad); err == nil {
		t.Fatal("invalid delta accepted")
	}
	after, err := r.Resolve(context.Background(), Request{Roots: []Root{{Pkg: "root1"}, {Pkg: "root0"}}})
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.Epoch != 1 {
		t.Errorf("epoch after rejected delta = %d, want 1", after.Stats.Epoch)
	}
}

// TestPortfolioApplyBroadcast: one Apply must land the delta on every
// member — whichever member wins any later race, the answer reflects the
// grown universe.
func TestPortfolioApplyBroadcast(t *testing.T) {
	u := liveUniverse(2)
	p := mustPortfolio(t, u)

	req := Request{Roots: []Root{{Pkg: "root0"}}}
	if _, err := p.Resolve(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	d := NewDelta()
	d.Add("leaf0", "3.0")
	epoch, err := p.Apply(d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("Apply epoch = %d, want 1", epoch)
	}

	// Every member must answer from the grown universe: query repeatedly so
	// race wins spread across members, and pin each member directly too.
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		res, err := p.Resolve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Picks["leaf0"].String(); got != "3.0" {
			t.Fatalf("iteration %d (member %s): leaf0 = %s, want 3.0", i, res.Config, got)
		}
		if res.Stats.Epoch > 1 {
			t.Fatalf("iteration %d: Epoch = %d, want <= 1", i, res.Stats.Epoch)
		}
		seen[res.Config] = true
	}
	// A member that missed the broadcast cannot hide behind faster
	// siblings on this shape: only the delta's version satisfies it, so a
	// stale member would race in with a definitive unsat answer and win.
	strict := Request{Roots: []Root{MustParseRootT(t, "leaf0@3:")}}
	for i := 0; i < 8; i++ {
		res, err := p.Resolve(context.Background(), strict)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got := res.Picks["leaf0"].String(); got != "3.0" {
			t.Fatalf("iteration %d: leaf0 = %s, want 3.0", i, got)
		}
	}
}

// MustParseRootT parses a root spec or fails the test.
func MustParseRootT(t testing.TB, s string) Root {
	t.Helper()
	r, err := ParseRoot(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestLiveConcurrentApplyResolve hammers resolvers with interleaved
// Apply and Resolve from many goroutines: 8 resolving goroutines racing a
// delta stream. Under -race this proves the write barrier; functionally,
// every answer must be coherent — a root's leaf pick is always a version
// that existed at some applied epoch, never a torn in-between.
func TestLiveConcurrentApplyResolve(t *testing.T) {
	for _, backend := range []string{"session", "portfolio"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			u := liveUniverse(4)
			type liveResolver interface {
				Resolver
				Apply(*Delta) (Epoch, error)
			}
			var r liveResolver
			if backend == "session" {
				r = NewSessionResolver(u, SessionOptions{})
			} else {
				// Two members keep the hammer fast while still exercising
				// the broadcast barrier.
				r = mustPortfolio(t, u,
					BackendConfig{Name: "a", Options: SessionOptions{}},
					BackendConfig{Name: "b", Options: SessionOptions{}})
			}

			const goroutines = 8
			const resolvesPer = 30
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < resolvesPer; i++ {
						cluster := (g + i) % 4
						req := Request{Roots: []Root{{Pkg: fmt.Sprintf("root%d", cluster)}}}
						res, err := r.Resolve(context.Background(), req)
						if err != nil {
							errs <- fmt.Errorf("goroutine %d resolve %d: %w", g, i, err)
							return
						}
						leaf := fmt.Sprintf("leaf%d", cluster)
						if _, ok := res.Picks[leaf]; !ok {
							errs <- fmt.Errorf("goroutine %d resolve %d: %s missing from picks", g, i, leaf)
							return
						}
					}
				}()
			}
			var lastEpoch Epoch
			for step := 1; step <= 10; step++ {
				d := NewDelta()
				d.Add(fmt.Sprintf("leaf%d", step%4), fmt.Sprintf("1.%d", step))
				e, err := r.Apply(d)
				if err != nil {
					t.Fatalf("Apply step %d: %v", step, err)
				}
				if e != Epoch(step) {
					t.Fatalf("Apply step %d: epoch %d", step, e)
				}
				lastEpoch = e
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			// Quiesced: every cluster answers the final universe's newest leaf.
			if lastEpoch != 10 {
				t.Fatalf("final epoch = %d, want 10", lastEpoch)
			}
			for c := 0; c < 4; c++ {
				req := Request{Roots: []Root{{Pkg: fmt.Sprintf("root%d", c)}}}
				res, err := r.Resolve(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				want := "1.0"
				// Steps step%4 == c: the last such step wrote 1.<step>.
				for step := 10; step >= 1; step-- {
					if step%4 == c {
						want = fmt.Sprintf("1.%d", step)
						break
					}
				}
				if got := res.Picks[fmt.Sprintf("leaf%d", c)].String(); got != want {
					t.Errorf("cluster %d: leaf = %s, want %s", c, got, want)
				}
			}
		})
	}
}

// TestLiveUnsatFlip: a request shape cached as unsatisfiable must flip
// once a delta supplies the missing piece — the unsat cache entry's reach
// set includes the unknown dependency target's name.
func TestLiveUnsatFlip(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0", repo.Dep("missing", ":"))
	r := NewSessionResolver(u, SessionOptions{})

	req := Request{Roots: []Root{{Pkg: "app"}}}
	if _, err := r.Resolve(context.Background(), req); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("pre-delta err = %v, want ErrUnsatisfiable", err)
	}
	// Cached refutation: repeat is served without touching the solver.
	if _, err := r.Resolve(context.Background(), req); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("repeat err = %v, want ErrUnsatisfiable", err)
	}

	d := NewDelta()
	d.Add("missing", "1.0")
	if _, err := r.Apply(d); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	res, err := r.Resolve(context.Background(), req)
	if err != nil {
		t.Fatalf("post-delta err = %v, want success", err)
	}
	if got := res.Picks["missing"].String(); got != "1.0" {
		t.Fatalf("missing pick = %s, want 1.0", got)
	}
}
