package resolve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/paper-repo-growth/go-arxiv/internal/concretize"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/sat"
)

// BackendConfig names one portfolio member: a Session configuration whose
// solver knobs (branching polarity, restart schedule, objective-descent
// step) give it a distinct search trajectory. Members never disagree on
// answers — only on how fast they reach them on a given request shape.
type BackendConfig struct {
	Name    string
	Options SessionOptions
}

// DefaultPortfolio returns the stock member set: complementary heuristics
// — branching polarity, restart schedule, and descent strategy — so that
// whichever trajectory suits the request wins the race.
func DefaultPortfolio() []BackendConfig {
	return []BackendConfig{
		// The defaults: negative-first branching ("install nothing extra"
		// first), standard restarts, adaptive descent (linear on unseen
		// request shapes, binary search once a bound is banked).
		{Name: "baseline", Options: SessionOptions{}},
		// Positive-first branching commits to installs early — strong when
		// the optimum installs most of the reachable set.
		{Name: "positive", Options: SessionOptions{Solver: sat.Config{PositiveFirst: true}}},
		// Aggressive restarts plus wide linear descent steps: rushes the
		// incumbent down on objective-heavy requests where the first model
		// is already near-optimal.
		{Name: "dive", Options: SessionOptions{Solver: sat.Config{RestartBase: 40, Descent: sat.DescentLinear, DescentStep: 8}}},
		// Patient restarts for deep refutations (unsat proofs, tight
		// conflict webs) with binary-search descent, which bounds the
		// round count even when the incumbent starts far from the optimum.
		{Name: "steady", Options: SessionOptions{Solver: sat.Config{RestartBase: 400, Descent: sat.DescentBinary}}},
	}
}

// PortfolioResolver races differently-configured Sessions over the same
// universe on every request and returns the first definitive answer —
// an optimal resolution or a proof of unsatisfiability — canceling the
// remaining members through the solver interrupt. Each member's skeleton
// is encoded once at construction and its solver state (learnt clauses,
// caches) warms across requests, so the race's marginal cost is solver
// time, not re-encoding.
//
// Budget-limited outcomes are not definitive: if a member returns a
// non-optimal incumbent (or concretize.ErrBudget) while another later
// proves an optimum, the optimum wins; the incumbent is returned only
// when no member can do better.
//
// The members share one universe, which grows through Apply: the delta is
// applied once and every member's skeleton extends in place, under a
// write barrier that quiesces requests — a racing Resolve observes every
// member either wholly before or wholly after the delta, never a
// half-applied portfolio.
type PortfolioResolver struct {
	// mu quiesces the portfolio around Apply: Resolve holds it shared (the
	// members' own session locks serialize actual solving), Apply holds it
	// exclusively while broadcasting the delta across members.
	mu      sync.RWMutex
	members []portfolioMember
}

type portfolioMember struct {
	name string
	se   *concretize.Session
}

var _ Resolver = (*PortfolioResolver)(nil)

// NewPortfolioResolver builds a portfolio over the universe from the
// given configs (DefaultPortfolio when none are passed), encoding one
// Session skeleton per member. Config names must be unique and non-empty.
func NewPortfolioResolver(u *repo.Universe, configs ...BackendConfig) (*PortfolioResolver, error) {
	if len(configs) == 0 {
		configs = DefaultPortfolio()
	}
	seen := make(map[string]bool, len(configs))
	p := &PortfolioResolver{}
	for _, c := range configs {
		if c.Name == "" {
			return nil, fmt.Errorf("resolve: portfolio config with empty name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("resolve: duplicate portfolio config %q", c.Name)
		}
		seen[c.Name] = true
		p.members = append(p.members, portfolioMember{
			name: c.Name,
			se:   concretize.NewSession(u, c.Options),
		})
	}
	return p, nil
}

// Apply grows the shared universe by one append-only delta and broadcasts
// it across the members: the first member's Extend applies the delta to
// the universe, each subsequent member sees the universe one epoch ahead
// of its skeleton and extends in place (the epoch contract on
// concretize.Session.Extend). The broadcast runs under the portfolio's
// write barrier, so no request ever races a half-applied portfolio. A
// validation failure on the first member mutates nothing; an extension
// error on a later member is returned wrapped with the member's name (and
// leaves that member behind — construction-order determinism makes this
// reachable only through universe corruption).
func (p *PortfolioResolver) Apply(d *Delta) (Epoch, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var epoch Epoch
	for i, m := range p.members {
		e, err := m.se.Extend(d)
		if err != nil {
			if i == 0 {
				return e, err
			}
			return e, fmt.Errorf("resolve: member %s: %w", m.name, err)
		}
		epoch = e
	}
	return epoch, nil
}

// Members returns the member configuration names, in racing order.
func (p *PortfolioResolver) Members() []string {
	names := make([]string, len(p.members))
	for i, m := range p.members {
		names[i] = m.name
	}
	return names
}

// outcome is one member's answer to one request.
type outcome struct {
	name string
	res  *concretize.Resolution
	err  error
}

// definitive reports whether the outcome settles the request: an optimal
// resolution or a proven unsatisfiability. Budget-limited incumbents and
// cancellations are not definitive.
func (o outcome) definitive() bool {
	if o.err != nil {
		return errors.Is(o.err, concretize.ErrUnsatisfiable)
	}
	return o.res.Stats.Optimal
}

// Resolve implements Resolver: it fires the request into every member
// concurrently, returns the first definitive answer, and cancels the
// rest. All members are drained before returning, so a PortfolioResolver
// is quiescent between calls and safe for concurrent use (each member
// Session serializes its own solver).
func (p *PortfolioResolver) Resolve(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Shared-mode barrier against Apply: requests proceed concurrently with
	// each other, never interleaved with a half-broadcast delta.
	p.mu.RLock()
	defer p.mu.RUnlock()
	race, cancel := context.WithCancel(ctx)
	defer cancel()

	opts := concretize.Options{MaxConflicts: req.MaxConflicts, Objective: req.Objective}
	outcomes := make(chan outcome, len(p.members))
	for _, m := range p.members {
		m := m
		go func() {
			res, err := m.se.Resolve(race, req.Roots, opts)
			outcomes <- outcome{name: m.name, res: res, err: err}
		}()
	}

	var winner *outcome
	var fallback *outcome // best non-definitive incumbent (lowest cost)
	var firstErr error    // first non-cancellation error
	for remaining := len(p.members); remaining > 0; remaining-- {
		o := <-outcomes
		switch {
		case winner != nil:
			// Already settled; the rest are losers being drained.
		case o.definitive():
			o := o
			winner = &o
			cancel()
		case o.err == nil:
			if fallback == nil || o.res.Stats.Cost < fallback.res.Stats.Cost {
				o := o
				fallback = &o
			}
		case errors.Is(o.err, context.Canceled) || errors.Is(o.err, context.DeadlineExceeded):
			// Canceled loser — or the caller's own context firing, which
			// the post-drain ctx.Err() check reports.
		case firstErr == nil:
			firstErr = fmt.Errorf("resolve: member %s: %w", o.name, o.err)
		}
	}

	if winner != nil {
		if winner.err != nil {
			return nil, winner.err
		}
		return &Result{Picks: winner.res.Picks, Stats: winner.res.Stats, Config: winner.name}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("resolve: request canceled: %w", err)
	}
	if fallback != nil {
		return &Result{Picks: fallback.res.Picks, Stats: fallback.res.Stats, Config: fallback.name}, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, fmt.Errorf("resolve: portfolio has no members")
}
