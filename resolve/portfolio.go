package resolve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/paper-repo-growth/go-arxiv/internal/concretize"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/sat"
)

// BackendConfig names one portfolio member: a Session configuration whose
// solver knobs (branching polarity, restart schedule, objective-descent
// step) give it a distinct search trajectory. Members never disagree on
// answers — only on how fast they reach them on a given request shape.
type BackendConfig struct {
	Name    string
	Options SessionOptions
}

// DefaultPortfolio returns the stock member set: complementary heuristics
// — branching polarity, restart schedule, and descent strategy — so that
// whichever trajectory suits the request wins the race.
func DefaultPortfolio() []BackendConfig {
	return []BackendConfig{
		// The defaults: negative-first branching ("install nothing extra"
		// first), standard restarts, adaptive descent (linear on unseen
		// request shapes, binary search once a bound is banked).
		{Name: "baseline", Options: SessionOptions{}},
		// Positive-first branching commits to installs early — strong when
		// the optimum installs most of the reachable set.
		{Name: "positive", Options: SessionOptions{Solver: sat.Config{PositiveFirst: true}}},
		// Aggressive restarts plus wide linear descent steps: rushes the
		// incumbent down on objective-heavy requests where the first model
		// is already near-optimal.
		{Name: "dive", Options: SessionOptions{Solver: sat.Config{RestartBase: 40, Descent: sat.DescentLinear, DescentStep: 8}}},
		// Patient restarts for deep refutations (unsat proofs, tight
		// conflict webs) with binary-search descent, which bounds the
		// round count even when the incumbent starts far from the optimum.
		{Name: "steady", Options: SessionOptions{Solver: sat.Config{RestartBase: 400, Descent: sat.DescentBinary}}},
	}
}

// ErrNoActiveMembers is returned by PortfolioResolver.Resolve when every
// member has been quarantined by a failed Apply broadcast: the portfolio
// has fail-stopped and can only be rebuilt.
var ErrNoActiveMembers = errors.New("resolve: portfolio has no active members")

// MemberHealth reports one portfolio member's serving state. A quarantined
// member failed to extend during an Apply broadcast: its skeleton is behind
// the shared universe, so it is excluded from every subsequent Resolve race
// (a stale member could win with a pre-delta answer).
type MemberHealth struct {
	Name        string
	Quarantined bool
	Epoch       Epoch // universe epoch the member's skeleton reflects
	Err         error // the extension error that quarantined it (nil when healthy)
}

// PortfolioResolver races differently-configured Sessions over the same
// universe on every request and returns the first definitive answer —
// an optimal resolution or a proof of unsatisfiability — canceling the
// remaining members through the solver interrupt. Each member's skeleton
// is encoded once at construction and its solver state (learnt clauses,
// caches) warms across requests, so the race's marginal cost is solver
// time, not re-encoding.
//
// Budget-limited outcomes are not definitive: if a member returns a
// non-optimal incumbent (or concretize.ErrBudget) while another later
// proves an optimum, the optimum wins; the incumbent is returned only
// when no member can do better.
//
// The members share one universe, which grows through Apply: the delta is
// applied once and every member's skeleton extends in place, under a
// write barrier that quiesces requests — a racing Resolve observes every
// member either wholly before or wholly after the delta, never a
// half-applied portfolio. A member whose extension fails is quarantined
// rather than left racing at a stale epoch; see Apply.
type PortfolioResolver struct {
	u *repo.Universe

	// mu quiesces the portfolio around Apply: Resolve holds it shared (the
	// members' own session locks serialize actual solving), Apply holds it
	// exclusively while broadcasting the delta across members.
	//
	// goarxivlint:lock
	mu      sync.RWMutex
	members []portfolioMember

	// epochA mirrors the shared universe's epoch for lock-free reads.
	// Epoch() must not touch mu: Apply holds it exclusively for the whole
	// broadcast (one Extend per member), and the serving tier computes
	// coalescing keys from Epoch() on every request — reading it through
	// the barrier would queue every arrival behind an in-flight delta,
	// the same serialization bug Session.Epoch() once had.
	//
	// goarxivlint:lockfree
	epochA atomic.Uint64

	// testExtendHook, when set, injects a fault before a member's Extend
	// during Apply (test-only: the real later-member failure modes require
	// universe corruption, which fault-injection tests simulate here).
	testExtendHook func(member string) error
}

type portfolioMember struct {
	name string
	opts SessionOptions // construction options, kept for Rebuild
	se   *concretize.Session
	err  error // quarantine reason; nil while the member is healthy
}

var _ Resolver = (*PortfolioResolver)(nil)

// NewPortfolioResolver builds a portfolio over the universe from the
// given configs (DefaultPortfolio when none are passed), encoding one
// Session skeleton per member. Config names must be unique and non-empty.
func NewPortfolioResolver(u *repo.Universe, configs ...BackendConfig) (*PortfolioResolver, error) {
	if len(configs) == 0 {
		configs = DefaultPortfolio()
	}
	seen := make(map[string]bool, len(configs))
	p := &PortfolioResolver{u: u}
	for _, c := range configs {
		if c.Name == "" {
			return nil, fmt.Errorf("resolve: portfolio config with empty name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("resolve: duplicate portfolio config %q", c.Name)
		}
		seen[c.Name] = true
		p.members = append(p.members, portfolioMember{
			name: c.Name,
			opts: c.Options,
			se:   concretize.NewSession(u, c.Options),
		})
	}
	p.epochA.Store(uint64(u.Epoch()))
	return p, nil
}

// Apply grows the shared universe by one append-only delta and broadcasts
// it across the members. The delta is applied to the universe exactly once
// (a validation failure mutates nothing and touches no member); each
// member then extends its skeleton in place under the portfolio's write
// barrier, so no request ever races a half-applied portfolio.
//
// The broadcast is all-or-nothing from the caller's view: a member whose
// extension fails (reachable only through universe corruption — e.g. the
// universe mutated behind the portfolio's back) is quarantined — excluded
// from every subsequent Resolve race and reported through Health() — while
// the remaining members complete the broadcast at the new epoch. The
// returned error is a *MemberError (or errors.Join of several) naming each
// quarantined member; the returned epoch is the universe's new epoch,
// which every still-healthy member serves at. A portfolio whose members
// are all quarantined fail-stops: Resolve returns ErrNoActiveMembers.
//
// goarxivlint:blocking cancel=none
func (p *PortfolioResolver) Apply(d *Delta) (Epoch, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Apply the delta to the shared universe once. Validation failures
	// abort cleanly: nothing mutated, no member touched, no quarantine.
	epoch, err := p.u.Apply(d)
	if err != nil {
		return p.u.Epoch(), err
	}
	p.epochA.Store(uint64(epoch))
	// Broadcast: every healthy member extends its skeleton to the already
	// -applied delta (the sibling case of the Session.Extend epoch
	// contract). A failure quarantines the member; the loop continues so
	// the surviving members all reach the new epoch.
	var errs []error
	for i := range p.members {
		m := &p.members[i]
		if m.err != nil {
			continue // quarantined by an earlier broadcast
		}
		err := error(nil)
		if p.testExtendHook != nil {
			err = p.testExtendHook(m.name)
		}
		if err == nil {
			_, err = m.se.Extend(d)
		}
		if err != nil {
			m.err = err
			errs = append(errs, &MemberError{Member: m.name, Epoch: m.se.Epoch(), Err: err})
		}
	}
	return epoch, errors.Join(errs...)
}

// Members returns the member configuration names, in racing order;
// quarantined members are included (they remain configured, just not
// racing — see Health).
func (p *PortfolioResolver) Members() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, len(p.members))
	for i, m := range p.members {
		names[i] = m.name
	}
	return names
}

// Rebuild re-admits every quarantined member by replacing its stale
// session with a fresh one — same configuration, encoded from the current
// universe — and returns the names of the members it healed (nil when no
// member was quarantined). A quarantined member's skeleton is behind the
// shared universe and cannot be extended in place (the failed Apply
// broadcast that benched it already tried); re-encoding from scratch is
// the only way back into the race, and it restarts the member cold: learnt
// clauses, banked bounds, and cached answers are gone, correctness is not.
// Rebuild holds the write barrier, so it never races a broadcast and no
// request observes a half-rebuilt portfolio.
//
// goarxivlint:blocking cancel=none
func (p *PortfolioResolver) Rebuild() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var healed []string
	for i := range p.members {
		m := &p.members[i]
		if m.err == nil {
			continue
		}
		m.se = concretize.NewSession(p.u, m.opts)
		m.err = nil
		healed = append(healed, m.name)
	}
	return healed
}

// Health reports each member's serving state, in racing order: its name,
// the epoch its skeleton reflects, and — for quarantined members — the
// Apply-broadcast error that benched it.
func (p *PortfolioResolver) Health() []MemberHealth {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]MemberHealth, len(p.members))
	for i, m := range p.members {
		out[i] = MemberHealth{Name: m.name, Quarantined: m.err != nil, Epoch: m.se.Epoch(), Err: m.err}
	}
	return out
}

// Epoch returns the epoch of the shared universe, which every healthy
// member serves at (the write barrier keeps them in lockstep). It reads
// the atomic mirror, never mu: the serving tier calls Epoch() per request
// to key coalescing, and must not queue behind an Apply broadcast.
//
// goarxivlint:lockfree
func (p *PortfolioResolver) Epoch() Epoch {
	return Epoch(p.epochA.Load())
}

// outcome is one member's answer to one request.
type outcome struct {
	name  string
	epoch Epoch
	res   *concretize.Resolution
	err   error
}

// definitive reports whether the outcome settles the request: an optimal
// resolution or a proven unsatisfiability. Budget-limited incumbents and
// cancellations are not definitive.
func (o outcome) definitive() bool {
	if o.err != nil {
		return errors.Is(o.err, concretize.ErrUnsatisfiable)
	}
	return o.res.Stats.Optimal
}

// Resolve implements Resolver: it fires the request into every healthy
// member concurrently, returns the first definitive answer, and cancels
// the rest. All members are drained before returning, so a
// PortfolioResolver is quiescent between calls and safe for concurrent use
// (each member Session serializes its own solver). Every error produced by
// a member — a definitive unsatisfiability proof included — is wrapped in
// a *MemberError carrying the member's name and epoch, mirroring the
// attribution (Result.Config, Result.Stats) the success path carries.
//
// goarxivlint:blocking
func (p *PortfolioResolver) Resolve(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Shared-mode barrier against Apply: requests proceed concurrently with
	// each other, never interleaved with a half-broadcast delta.
	p.mu.RLock()
	defer p.mu.RUnlock()
	active := make([]*portfolioMember, 0, len(p.members))
	for i := range p.members {
		if p.members[i].err == nil {
			active = append(active, &p.members[i])
		}
	}
	if len(active) == 0 {
		if len(p.members) == 0 {
			return nil, fmt.Errorf("resolve: portfolio has no members")
		}
		return nil, ErrNoActiveMembers
	}
	race, cancel := context.WithCancel(ctx)
	defer cancel()

	opts := concretize.Options{MaxConflicts: req.MaxConflicts, Objective: req.Objective}
	outcomes := make(chan outcome, len(active))
	for _, m := range active {
		m := m
		go func() {
			res, err := m.se.Resolve(race, req.Roots, opts)
			var epoch Epoch
			if res != nil {
				epoch = res.Stats.Epoch
			} else {
				epoch = m.se.Epoch()
			}
			outcomes <- outcome{name: m.name, epoch: epoch, res: res, err: err}
		}()
	}

	var winner *outcome
	var fallback *outcome // best non-definitive incumbent (lowest cost)
	var firstErr error    // first non-cancellation error
	for remaining := len(active); remaining > 0; remaining-- {
		o := <-outcomes
		switch {
		case winner != nil:
			// Already settled; the rest are losers being drained.
		case o.definitive():
			o := o
			winner = &o
			cancel()
		case o.err == nil:
			if fallback == nil || o.res.Stats.Cost < fallback.res.Stats.Cost {
				o := o
				fallback = &o
			}
		case errors.Is(o.err, context.Canceled) || errors.Is(o.err, context.DeadlineExceeded):
			// Canceled loser — or the caller's own context firing, which
			// the post-drain ctx.Err() check reports.
		case firstErr == nil:
			firstErr = &MemberError{Member: o.name, Epoch: o.epoch, Err: o.err}
		}
	}

	if winner != nil {
		if winner.err != nil {
			// A definitive unsat proof carries the same attribution as a
			// definitive resolution: which member proved it, at what epoch.
			// Unwrap preserves errors.Is(ErrUnsatisfiable) and
			// errors.As(*UnsatError) for callers matching the taxonomy.
			return nil, &MemberError{Member: winner.name, Epoch: winner.epoch, Err: winner.err}
		}
		return &Result{Picks: winner.res.Picks, Stats: winner.res.Stats, Config: winner.name}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("resolve: request canceled: %w", err)
	}
	if fallback != nil {
		return &Result{Picks: fallback.res.Picks, Stats: fallback.res.Stats, Config: fallback.name}, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Unreachable in practice: a member only reports cancellation when the
	// race context fired, which the winner and ctx.Err() paths cover.
	return nil, fmt.Errorf("resolve: portfolio drained without an answer")
}
