package resolve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/concretize"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/sat"
)

// BackendConfig names one portfolio member: a Session configuration whose
// solver knobs (branching polarity, restart schedule, objective-descent
// step) give it a distinct search trajectory. Members never disagree on
// answers — only on how fast they reach them on a given request shape.
type BackendConfig struct {
	Name    string
	Options SessionOptions
}

// DefaultPortfolio returns the stock member set: complementary heuristics
// — branching polarity, restart schedule, and descent strategy — so that
// whichever trajectory suits the request wins the race.
func DefaultPortfolio() []BackendConfig {
	return []BackendConfig{
		// The defaults: negative-first branching ("install nothing extra"
		// first), standard restarts, adaptive descent (linear on unseen
		// request shapes, binary search once a bound is banked).
		{Name: "baseline", Options: SessionOptions{}},
		// Positive-first branching commits to installs early — strong when
		// the optimum installs most of the reachable set.
		{Name: "positive", Options: SessionOptions{Solver: sat.Config{PositiveFirst: true}}},
		// Aggressive restarts plus wide linear descent steps: rushes the
		// incumbent down on objective-heavy requests where the first model
		// is already near-optimal.
		{Name: "dive", Options: SessionOptions{Solver: sat.Config{RestartBase: 40, Descent: sat.DescentLinear, DescentStep: 8}}},
		// Patient restarts for deep refutations (unsat proofs, tight
		// conflict webs) with binary-search descent, which bounds the
		// round count even when the incumbent starts far from the optimum.
		{Name: "steady", Options: SessionOptions{Solver: sat.Config{RestartBase: 400, Descent: sat.DescentBinary}}},
	}
}

// ErrNoActiveMembers is returned by PortfolioResolver.Resolve when every
// member is benched — quarantined by a failed Apply broadcast or contained
// after a panic: the portfolio has fail-stopped and can only be rebuilt.
var ErrNoActiveMembers = errors.New("resolve: portfolio has no active members")

// MemberHealth reports one portfolio member's serving state. A quarantined
// member is excluded from every subsequent Resolve race: either its
// skeleton fell behind the shared universe during an Apply broadcast, or a
// contained panic benched it. CrashLoop marks a sticky bench — the member
// exhausted its rebuild budget inside the crashloop window and stays out
// until an explicit Rebuild.
type MemberHealth struct {
	Name        string
	Quarantined bool
	CrashLoop   bool
	Epoch       Epoch // universe epoch the member's skeleton reflects
	Err         error // the failure that benched it (nil when healthy)
}

// PortfolioResolver races differently-configured Sessions over the same
// universe on every request and returns the first definitive answer —
// an optimal resolution or a proof of unsatisfiability — canceling the
// remaining members through the solver interrupt. Each member's skeleton
// is encoded once at construction and its solver state (learnt clauses,
// caches) warms across requests, so the race's marginal cost is solver
// time, not re-encoding.
//
// Budget-limited outcomes are not definitive: if a member returns a
// non-optimal incumbent (or concretize.ErrBudget) while another later
// proves an optimum, the optimum wins; the incumbent is returned only
// when no member can do better.
//
// The members share one universe, which grows through Apply: the delta is
// applied once and every member's skeleton extends in place, under a
// write barrier that quiesces requests — a racing Resolve observes every
// member either wholly before or wholly after the delta, never a
// half-applied portfolio. A member whose extension fails is quarantined
// rather than left racing at a stale epoch; see Apply.
//
// Failure is contained, not fatal: a member that panics mid-solve (or
// mid-extension) is benched with its stack instead of crashing the
// process, auto-healed with a fresh session at a later Resolve entry, and
// — when it keeps crashing — sticky-benched by the crashloop detector so
// a corrupt configuration cannot consume the daemon in rebuilds.
type PortfolioResolver struct {
	u *repo.Universe

	// mu quiesces the portfolio around Apply: Resolve holds it shared (the
	// members' own session locks serialize actual solving), Apply holds it
	// exclusively while broadcasting the delta across members.
	//
	// goarxivlint:lock
	mu      sync.RWMutex
	members []*portfolioMember

	// epochA mirrors the shared universe's epoch for lock-free reads.
	// Epoch() must not touch mu: Apply holds it exclusively for the whole
	// broadcast (one Extend per member), and the serving tier computes
	// coalescing keys from Epoch() on every request — reading it through
	// the barrier would queue every arrival behind an in-flight delta,
	// the same serialization bug Session.Epoch() once had.
	//
	// goarxivlint:lockfree
	epochA atomic.Uint64

	// healNeeded flags that some member is panic-benched and waiting for
	// an auto-heal; Resolve checks it lock-free on entry and takes the
	// write barrier only when there is actual healing to do.
	//
	// goarxivlint:lockfree
	healNeeded atomic.Bool

	// Crashloop policy; zero values select the package defaults. Written
	// only through SetCrashLoopPolicy (write barrier), read under mu.
	crashMaxRebuilds int
	crashWindow      time.Duration
}

type portfolioMember struct {
	name string
	opts SessionOptions // construction options, kept for rebuilds
	se   *concretize.Session

	// bench is the member's serving state: nil while racing, else why it
	// is excluded. Stored atomically because the panic-containment path
	// runs under the shared side of the barrier (a race goroutine cannot
	// take the write lock its own Resolve holds shared); every other
	// writer holds mu exclusively.
	//
	// goarxivlint:lockfree
	bench atomic.Pointer[benchState]

	// rebuilds timestamps recent heal attempts — the crashloop sliding
	// window. Guarded by mu held exclusively.
	rebuilds []time.Time
}

var _ Resolver = (*PortfolioResolver)(nil)

// NewPortfolioResolver builds a portfolio over the universe from the
// given configs (DefaultPortfolio when none are passed), encoding one
// Session skeleton per member. Config names must be unique and non-empty.
func NewPortfolioResolver(u *repo.Universe, configs ...BackendConfig) (*PortfolioResolver, error) {
	if len(configs) == 0 {
		configs = DefaultPortfolio()
	}
	seen := make(map[string]bool, len(configs))
	p := &PortfolioResolver{u: u}
	for _, c := range configs {
		if c.Name == "" {
			return nil, fmt.Errorf("resolve: portfolio config with empty name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("resolve: duplicate portfolio config %q", c.Name)
		}
		seen[c.Name] = true
		p.members = append(p.members, &portfolioMember{
			name: c.Name,
			opts: c.Options,
			se:   concretize.NewSession(u, c.Options),
		})
	}
	p.epochA.Store(uint64(u.Epoch()))
	return p, nil
}

// SetCrashLoopPolicy tunes the crashloop detector: a member healed more
// than maxRebuilds times inside window is sticky-benched instead of
// rebuilt again. Zero (or negative) values select the defaults (3
// rebuilds in 30s). Takes the write barrier; call before or between
// serving, not per request.
//
// goarxivlint:blocking cancel=none
func (p *PortfolioResolver) SetCrashLoopPolicy(maxRebuilds int, window time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashMaxRebuilds = maxRebuilds
	p.crashWindow = window
}

// Apply grows the shared universe by one append-only delta and broadcasts
// it across the members. The delta is applied to the universe exactly once
// (a validation failure mutates nothing and touches no member); each
// member then extends its skeleton in place under the portfolio's write
// barrier, so no request ever races a half-applied portfolio.
//
// The broadcast is all-or-nothing from the caller's view: a member whose
// extension fails — or panics, which the broadcast contains — is
// quarantined: excluded from every subsequent Resolve race and reported
// through Health(), while the remaining members complete the broadcast at
// the new epoch. The returned error is a *MemberError (or errors.Join of
// several) naming each quarantined member; the returned epoch is the
// universe's new epoch, which every still-healthy member serves at. An
// error-quarantined member stays benched until an explicit Rebuild (the
// failure is unexplained, so re-admission is an operator decision); a
// panic-quarantined member auto-heals like a solve panic. A portfolio
// whose members are all benched fail-stops: Resolve returns
// ErrNoActiveMembers.
//
// goarxivlint:blocking cancel=none
func (p *PortfolioResolver) Apply(d *Delta) (Epoch, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Apply the delta to the shared universe once. Validation failures
	// abort cleanly: nothing mutated, no member touched, no quarantine.
	epoch, err := p.u.Apply(d)
	if err != nil {
		return p.u.Epoch(), err
	}
	p.epochA.Store(uint64(epoch))
	// Broadcast: every healthy member extends its skeleton to the already
	// -applied delta (the sibling case of the Session.Extend epoch
	// contract). A failure quarantines the member; the loop continues so
	// the surviving members all reach the new epoch.
	var errs []error
	for _, m := range p.members {
		if m.bench.Load() != nil {
			continue // benched by an earlier broadcast or a contained panic
		}
		if err := extendContained(m, d); err != nil {
			b := &benchState{err: err, panics: isContainedPanic(err)}
			m.bench.Store(b)
			if b.panics {
				p.healNeeded.Store(true)
			}
			errs = append(errs, &MemberError{Member: m.name, Epoch: m.se.Epoch(), Err: err})
		}
	}
	return epoch, errors.Join(errs...)
}

// extendContained extends one member's skeleton with panic containment: a
// panic mid-extension leaves the session in an unknown state, which the
// caller treats exactly like an extension error — bench now, fresh
// session later.
func extendContained(m *portfolioMember, d *Delta) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Op: "portfolio/" + m.name, Value: fmt.Sprint(rec), Stack: debug.Stack()}
		}
	}()
	_, err = m.se.Extend(d)
	return err
}

// Members returns the member configuration names, in racing order;
// benched members are included (they remain configured, just not racing —
// see Health).
func (p *PortfolioResolver) Members() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, len(p.members))
	for i, m := range p.members {
		names[i] = m.name
	}
	return names
}

// Rebuild re-admits every benched member by replacing its stale session
// with a fresh one — same configuration, encoded from the current
// universe — and returns the names of the members it healed (nil when no
// member was benched). A benched member's skeleton is behind the shared
// universe (or corrupted by a contained panic) and cannot be extended in
// place; re-encoding from scratch is the only way back into the race, and
// it restarts the member cold: learnt clauses, banked bounds, and cached
// answers are gone, correctness is not. Rebuild is the operator override:
// it resets a crashlooping member's sticky bench and rebuild window (the
// automatic heal path never does), and each heal attempt is still bounded
// by the crashloop policy, so even an operator loop converges to sticky.
// Rebuild holds the write barrier, so it never races a broadcast and no
// request observes a half-rebuilt portfolio.
//
// goarxivlint:blocking cancel=none
func (p *PortfolioResolver) Rebuild() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var healed []string
	for _, m := range p.members {
		b := m.bench.Load()
		if b == nil {
			continue
		}
		if b.sticky {
			// Operator intent: explicit Rebuild resets the crashloop
			// window and tries once more.
			m.rebuilds = m.rebuilds[:0]
		}
		if p.healMemberLocked(m, b) {
			healed = append(healed, m.name)
		}
	}
	return healed
}

// healPanicked rebuilds every panic-benched, non-sticky member. Called
// from Resolve entry when healNeeded is set; takes the write barrier.
//
// goarxivlint:blocking cancel=none
func (p *PortfolioResolver) healPanicked() {
	p.mu.Lock()
	defer p.mu.Unlock()
	pending := false
	for _, m := range p.members {
		b := m.bench.Load()
		if b == nil || !b.panics || b.sticky {
			continue
		}
		p.healMemberLocked(m, b)
		if nb := m.bench.Load(); nb != nil && nb.panics && !nb.sticky {
			pending = true
		}
	}
	// A benched member cannot reappear concurrently: every panic-bench
	// happens under the shared side of the barrier, which this exclusive
	// section excludes, so clearing the flag here cannot lose a bench.
	p.healNeeded.Store(pending)
}

// healMemberLocked attempts one contained rebuild of a benched member,
// counting the attempt against the crashloop window: more than the
// policy's budget of attempts inside the window benches the member sticky
// — it keeps its last failure in Health() (CrashLoop set) and stops
// consuming rebuilds until an explicit Rebuild. Returns whether the
// member returned to the race. Callers hold mu exclusively.
func (p *PortfolioResolver) healMemberLocked(m *portfolioMember, b *benchState) bool {
	maxRebuilds, window := crashPolicy(p.crashMaxRebuilds, p.crashWindow)
	now := time.Now()
	var over bool
	m.rebuilds, over = crashWindowTrim(m.rebuilds, now, window, maxRebuilds)
	if over {
		m.bench.Store(&benchState{
			err:    fmt.Errorf("resolve: member %s crashlooping (%d rebuilds in %v): %w", m.name, len(m.rebuilds), window, b.err),
			panics: b.panics,
			sticky: true,
		})
		return false
	}
	m.rebuilds = append(m.rebuilds, now)
	if err := p.rebuildSession(m); err != nil {
		m.bench.Store(&benchState{err: err, panics: true})
		return false
	}
	m.bench.Store(nil)
	return true
}

// rebuildSession replaces a benched member's session with a fresh one,
// containing construction panics: a configuration whose re-encoding
// panics must not take down the Resolve or Rebuild that triggered the
// heal — it stays benched and burns one crashloop attempt instead.
func (p *PortfolioResolver) rebuildSession(m *portfolioMember) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Op: "portfolio/rebuild/" + m.name, Value: fmt.Sprint(rec), Stack: debug.Stack()}
		}
	}()
	if err := fpPortfolioRebuild.Inject(m.name); err != nil {
		return err
	}
	m.se = concretize.NewSession(p.u, m.opts)
	return nil
}

// Health reports each member's serving state, in racing order: its name,
// the epoch its skeleton reflects, and — for benched members — the
// failure that benched it, with CrashLoop marking a sticky bench.
func (p *PortfolioResolver) Health() []MemberHealth {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]MemberHealth, len(p.members))
	for i, m := range p.members {
		out[i] = MemberHealth{Name: m.name, Epoch: m.se.Epoch()}
		if b := m.bench.Load(); b != nil {
			out[i].Quarantined = true
			out[i].CrashLoop = b.sticky
			out[i].Err = b.err
		}
	}
	return out
}

// Epoch returns the epoch of the shared universe, which every healthy
// member serves at (the write barrier keeps them in lockstep). It reads
// the atomic mirror, never mu: the serving tier calls Epoch() per request
// to key coalescing, and must not queue behind an Apply broadcast.
//
// goarxivlint:lockfree
func (p *PortfolioResolver) Epoch() Epoch {
	return Epoch(p.epochA.Load())
}

// outcome is one member's answer to one request.
type outcome struct {
	name  string
	epoch Epoch
	res   *concretize.Resolution
	err   error
}

// definitive reports whether the outcome settles the request: an optimal
// resolution or a proven unsatisfiability. Budget-limited incumbents and
// cancellations are not definitive.
func (o outcome) definitive() bool {
	if o.err != nil {
		return errors.Is(o.err, concretize.ErrUnsatisfiable)
	}
	return o.res.Stats.Optimal
}

// Resolve implements Resolver: it fires the request into every healthy
// member concurrently, returns the first definitive answer, and cancels
// the rest. All members are drained before returning, so a
// PortfolioResolver is quiescent between calls and safe for concurrent use
// (each member Session serializes its own solver). Every error produced by
// a member — a definitive unsatisfiability proof included — is wrapped in
// a *MemberError carrying the member's name and epoch, mirroring the
// attribution (Result.Config, Result.Stats) the success path carries.
//
// A member that panics mid-solve is contained: benched with its stack
// (the race falls through to the survivors), then rebuilt with a fresh
// session at a later Resolve entry, crashloop-bounded. The panic
// surfaces only if every other member also fails, as a *MemberError
// wrapping the *PanicError.
//
// goarxivlint:blocking
func (p *PortfolioResolver) Resolve(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.healNeeded.Load() {
		p.healPanicked()
	}
	// Shared-mode barrier against Apply: requests proceed concurrently with
	// each other, never interleaved with a half-broadcast delta.
	p.mu.RLock()
	defer p.mu.RUnlock()
	active := make([]*portfolioMember, 0, len(p.members))
	for _, m := range p.members {
		if m.bench.Load() == nil {
			active = append(active, m)
		}
	}
	if len(active) == 0 {
		if len(p.members) == 0 {
			return nil, fmt.Errorf("resolve: portfolio has no members")
		}
		return nil, ErrNoActiveMembers
	}
	race, cancel := context.WithCancel(ctx)
	defer cancel()

	opts := concretize.Options{MaxConflicts: req.MaxConflicts, Objective: req.Objective}
	outcomes := make(chan outcome, len(active))
	for _, m := range active {
		m := m
		go func() {
			outcomes <- p.raceMember(race, m, req, opts)
		}()
	}

	var winner *outcome
	var fallback *outcome // best non-definitive incumbent (lowest cost)
	var firstErr error    // first non-cancellation error
	for remaining := len(active); remaining > 0; remaining-- {
		o := <-outcomes
		switch {
		case winner != nil:
			// Already settled; the rest are losers being drained.
		case o.definitive():
			o := o
			winner = &o
			cancel()
		case o.err == nil:
			if fallback == nil || o.res.Stats.Cost < fallback.res.Stats.Cost {
				o := o
				fallback = &o
			}
		case errors.Is(o.err, context.Canceled) || errors.Is(o.err, context.DeadlineExceeded):
			// Canceled loser — or the caller's own context firing, which
			// the post-drain ctx.Err() check reports.
		case firstErr == nil:
			firstErr = &MemberError{Member: o.name, Epoch: o.epoch, Err: o.err}
		}
	}

	if winner != nil {
		if winner.err != nil {
			// A definitive unsat proof carries the same attribution as a
			// definitive resolution: which member proved it, at what epoch.
			// Unwrap preserves errors.Is(ErrUnsatisfiable) and
			// errors.As(*UnsatError) for callers matching the taxonomy.
			return nil, &MemberError{Member: winner.name, Epoch: winner.epoch, Err: winner.err}
		}
		return &Result{Picks: winner.res.Picks, Stats: winner.res.Stats, Config: winner.name}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("resolve: request canceled: %w", err)
	}
	if fallback != nil {
		return &Result{Picks: fallback.res.Picks, Stats: fallback.res.Stats, Config: fallback.name}, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Unreachable in practice: a member only reports cancellation when the
	// race context fired, which the winner and ctx.Err() paths cover.
	return nil, fmt.Errorf("resolve: portfolio drained without an answer")
}

// raceMember runs one member's leg of the race with panic containment: a
// panicking member is benched with its stack (atomically — the caller
// holds the barrier shared) and reports the contained panic as its
// outcome, so the race falls through to the survivors instead of crashing
// the process. The rebuild happens at a later Resolve entry, which can
// take the write barrier.
func (p *PortfolioResolver) raceMember(ctx context.Context, m *portfolioMember, req Request, opts concretize.Options) (o outcome) {
	defer func() {
		if rec := recover(); rec != nil {
			perr := &PanicError{Op: "portfolio/" + m.name, Value: fmt.Sprint(rec), Stack: debug.Stack()}
			m.bench.Store(&benchState{err: perr, panics: true})
			p.healNeeded.Store(true)
			o = outcome{name: m.name, epoch: m.se.Epoch(), err: perr}
		}
	}()
	if err := fpPortfolioSolve.Inject(m.name); err != nil {
		return outcome{name: m.name, epoch: m.se.Epoch(), err: err}
	}
	res, err := m.se.Resolve(ctx, req.Roots, opts)
	epoch := m.se.Epoch()
	if res != nil {
		epoch = res.Stats.Epoch
	}
	return outcome{name: m.name, epoch: epoch, res: res, err: err}
}
