package resolve

import (
	"errors"
	"fmt"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/faultpoint"
)

// Fault-injection sites (see internal/faultpoint for the naming
// convention). The solve sites label injections with the dynamic instance
// — the portfolio member name, the pool shard index — so schedules can
// target "member 'dive' panics" without a site per member.
var (
	fpPortfolioSolve   = faultpoint.New("resolve/portfolio/solve")
	fpPortfolioRebuild = faultpoint.New("resolve/portfolio/rebuild")
	fpPoolSolve        = faultpoint.New("resolve/pool/solve")
	fpPoolRebuild      = faultpoint.New("resolve/pool/rebuild")
)

// PanicError reports a panic contained at a resolver boundary: instead of
// crashing the process, the panicking member or shard is benched with this
// error (stack included) and healed through the rebuild paths. It is the
// daemon tier's signal that an answer failed for a recoverable internal
// reason — retry-worthy, unlike the taxonomy's definitive answers
// (unsat, unknown package, budget).
type PanicError struct {
	// Op names the boundary that contained the panic: "portfolio/<member>",
	// "pool/<shard>", "portfolio/rebuild/<member>", "serve/backend".
	Op string
	// Value is the panic value, stringified at capture.
	Value string
	// Stack is the panicking goroutine's stack at capture.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("resolve: panic contained at %s: %s", e.Op, e.Value)
}

// benchState is why a member or shard is out of service. nil (no state)
// means healthy and serving; the pointer is stored atomically so the
// panic-containment path — which runs under the shared side of the
// Apply barrier — can bench without the write lock.
type benchState struct {
	err    error // the benching failure
	panics bool  // benched by a contained panic: eligible for auto-heal
	sticky bool  // crashlooping: auto-heal skips it (explicit Rebuild overrides)
}

// Crashloop policy defaults: more than defaultCrashLoopRebuilds heal
// attempts inside defaultCrashLoopWindow benches the member or shard
// sticky. See PortfolioResolver.SetCrashLoopPolicy.
const (
	defaultCrashLoopRebuilds = 3
	defaultCrashLoopWindow   = 30 * time.Second
)

// crashPolicy normalizes configured crashloop knobs onto the defaults.
func crashPolicy(maxRebuilds int, window time.Duration) (int, time.Duration) {
	if maxRebuilds <= 0 {
		maxRebuilds = defaultCrashLoopRebuilds
	}
	if window <= 0 {
		window = defaultCrashLoopWindow
	}
	return maxRebuilds, window
}

// crashWindowTrim drops heal-attempt timestamps older than the window and
// reports whether the next attempt would exceed the budget.
func crashWindowTrim(attempts []time.Time, now time.Time, window time.Duration, maxRebuilds int) ([]time.Time, bool) {
	keep := attempts[:0]
	for _, t := range attempts {
		if now.Sub(t) < window {
			keep = append(keep, t)
		}
	}
	return keep, len(keep) >= maxRebuilds
}

// isContainedPanic reports whether err carries a contained panic.
func isContainedPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}
