package resolve

import (
	"context"
	"fmt"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// The BenchmarkPortfolio* benchmarks extend the repo's perf trajectory
// (BenchmarkConcretize*, BenchmarkSessionWarm*) to the serving surface:
// they measure full requests through the public Resolver backends over
// the same deterministic dense universe, so `make bench` tracks the
// serving path across PRs.

func benchRequests(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Roots: []Root{{Pkg: fmt.Sprintf("dense%d", i%8)}}}
	}
	return reqs
}

// BenchmarkPortfolioDenseCold measures construction plus one request:
// the portfolio's worst case (N skeleton encodes, no warm state).
func BenchmarkPortfolioDenseCold(b *testing.B) {
	u, root := repo.SynthDense(40, 8, 3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := NewPortfolioResolver(u)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Resolve(context.Background(), Request{Roots: []Root{{Pkg: root}}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortfolioWarmMiss measures steady-state serving with the
// solution cache bypassed by rotating roots: each request races warm
// members (cache disabled so the solvers actually run).
func BenchmarkPortfolioWarmMiss(b *testing.B) {
	u, _ := repo.SynthDense(40, 8, 3, 1)
	noCache := DefaultPortfolio()
	for i := range noCache {
		noCache[i].Options.CacheSize = -1
	}
	p, err := NewPortfolioResolver(u, noCache...)
	if err != nil {
		b.Fatal(err)
	}
	reqs := benchRequests(8)
	// Warm the members once.
	for _, r := range reqs {
		if _, err := p.Resolve(context.Background(), r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Resolve(context.Background(), reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortfolioWarmHit measures the repeat-request fast path: every
// member answers from its solution cache and the race is a cache sprint.
func BenchmarkPortfolioWarmHit(b *testing.B) {
	u, root := repo.SynthDense(40, 8, 3, 1)
	p, err := NewPortfolioResolver(u)
	if err != nil {
		b.Fatal(err)
	}
	req := Request{Roots: []Root{{Pkg: root}}}
	if _, err := p.Resolve(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Resolve(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionResolverWarmMiss is the single-backend baseline the
// portfolio numbers are read against.
func BenchmarkSessionResolverWarmMiss(b *testing.B) {
	u, _ := repo.SynthDense(40, 8, 3, 1)
	r := NewSessionResolver(u, SessionOptions{CacheSize: -1})
	reqs := benchRequests(8)
	for _, req := range reqs {
		if _, err := r.Resolve(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Resolve(context.Background(), reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}
