package resolve_test

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/resolve"
)

// Example mirrors the README quickstart: build a universe, stand up a
// portfolio resolver, and answer a deadline-bounded request.
func Example() {
	u := repo.New()
	u.Add("app", "2.0", repo.Dep("zlib", "1.2:"), repo.Dep("ssl", ":"))
	u.Add("app", "1.0", repo.Dep("zlib", ":"))
	u.Add("zlib", "1.3")
	u.Add("zlib", "1.2")
	u.Add("ssl", "3.0", repo.Confl("zlib", ":1.2"))
	u.Add("ssl", "1.1")

	r, err := resolve.NewPortfolioResolver(u)
	if err != nil {
		panic(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	root, _ := resolve.ParseRoot("app@2:")
	res, err := r.Resolve(ctx, resolve.Request{Roots: []resolve.Root{root}})
	if err != nil {
		panic(err)
	}

	pkgs := make([]string, 0, len(res.Picks))
	for pkg := range res.Picks {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		fmt.Printf("%s@%s\n", pkg, res.Picks[pkg])
	}
	// Output:
	// app@2.0
	// ssl@3.0
	// zlib@1.3
}
