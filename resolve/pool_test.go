package resolve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/concretize"
	"github.com/paper-repo-growth/go-arxiv/internal/faultpoint"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

func poolRequest(spec string) Request {
	r, err := ParseRoot(spec)
	if err != nil {
		panic(err)
	}
	return Request{Roots: []Root{r}}
}

// TestPoolShapeAffinity: repeats of one request shape land on one shard —
// the second arrival is served from that shard's solution cache, and no
// other shard ever solves.
func TestPoolShapeAffinity(t *testing.T) {
	u, root := repo.SynthRegistry(300, 5)
	p := NewPoolResolver(u, 4, SessionOptions{Lazy: true})
	if p.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", p.NumShards())
	}

	req := poolRequest(root)
	var config string
	for i := 0; i < 3; i++ {
		res, err := p.Resolve(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !res.Stats.Optimal {
			t.Fatalf("request %d: not optimal", i)
		}
		if i == 0 {
			config = res.Config
		} else if res.Config != config {
			t.Fatalf("request %d served by %s, first by %s — affinity broken", i, res.Config, config)
		}
		if wantHit := i > 0; res.Stats.SolutionCacheHit != wantHit {
			t.Fatalf("request %d: cache hit %v, want %v", i, res.Stats.SolutionCacheHit, wantHit)
		}
	}

	st := p.Stats()
	if st.Hits != 2 || st.Steals != 0 || st.Waits != 0 {
		t.Fatalf("stats hits/steals/waits = %d/%d/%d, want 2/0/0", st.Hits, st.Steals, st.Waits)
	}
	solving := 0
	for i, sh := range st.Shard {
		if sh.Served > 0 {
			solving++
			if sh.Served != 3 || sh.CacheHits != 2 {
				t.Fatalf("shard %d served/hits = %d/%d, want 3/2", i, sh.Served, sh.CacheHits)
			}
			if sh.Encoding.MaterializedPackages == 0 {
				t.Fatalf("serving shard %d materialized nothing", i)
			}
		} else if sh.Encoding.MaterializedPackages != 0 {
			t.Fatalf("idle shard %d materialized %d packages", i, sh.Encoding.MaterializedPackages)
		}
	}
	if solving != 1 {
		t.Fatalf("%d shards served one shape, want 1", solving)
	}
}

// TestPoolRouting: the routing ladder, white-box — cached shard (home
// first) beats idle home beats idle steal beats busy home.
func TestPoolRouting(t *testing.T) {
	u, root := repo.SynthRegistry(120, 3)
	p := NewPoolResolver(u, 3, SessionOptions{Lazy: true})
	req := poolRequest(root)
	key := req.Key()
	home := shapeShard(key, 3)

	// All idle, nothing cached: home solves.
	if got, stolen, cached, ok := p.route(home, key); got != home || stolen || cached || !ok {
		t.Fatalf("idle route = (%d,%v,%v,%v), want home %d", got, stolen, cached, ok, home)
	}

	// Home busy, others idle: steal an idle shard.
	p.shards[home].inflight.Add(1)
	got, stolen, cached, ok := p.route(home, key)
	if got == home || !stolen || cached || !ok {
		t.Fatalf("busy-home route = (%d,%v,%v,%v), want a steal", got, stolen, cached, ok)
	}

	// Everything busy: queue on home.
	for i := range p.shards {
		if i != home {
			p.shards[i].inflight.Add(1)
		}
	}
	if got, stolen, _, ok := p.route(home, key); got != home || stolen || !ok {
		t.Fatalf("all-busy route = (%d,%v,%v), want the home queue", got, stolen, ok)
	}
	for i := range p.shards {
		p.shards[i].inflight.Add(-1)
	}

	// A non-home shard holds the answer: routed there even when busy.
	other := (home + 1) % 3
	if _, err := p.shards[other].se.Resolve(context.Background(), req.Roots, concretizeOptions(req)); err != nil {
		t.Fatalf("prime other shard: %v", err)
	}
	p.shards[other].inflight.Add(1)
	if got, stolen, cached, ok := p.route(home, key); got != other || !stolen || !cached || !ok {
		t.Fatalf("cached-elsewhere route = (%d,%v,%v,%v), want shard %d cached", got, stolen, cached, ok, other)
	}
	p.shards[other].inflight.Add(-1)

	// Home holds it too: home wins regardless.
	if _, err := p.shards[home].se.Resolve(context.Background(), req.Roots, concretizeOptions(req)); err != nil {
		t.Fatalf("prime home shard: %v", err)
	}
	if got, stolen, cached, ok := p.route(home, key); got != home || stolen || !cached || !ok {
		t.Fatalf("cached-home route = (%d,%v,%v,%v), want home cached", got, stolen, cached, ok)
	}

	// A broken home falls back to a healthy shard at every tier.
	p.shards[home].broken.Store(&benchState{err: fmt.Errorf("injected")})
	if got, _, _, ok := p.route(home, key); got == home || !ok {
		t.Fatalf("broken-home route = (%d,%v), want a healthy fallback", got, ok)
	}
	for i := range p.shards {
		p.shards[i].broken.Store(&benchState{err: fmt.Errorf("injected")})
	}
	if _, _, _, ok := p.route(home, key); ok {
		t.Fatal("all-broken route reported ok")
	}
	for i := range p.shards {
		p.shards[i].broken.Store(nil)
	}
}

// TestPoolApplyBroadcast: a delta reaches every shard under the write
// barrier — each shard session serves at the new epoch and sees the
// delta's answer.
func TestPoolApplyBroadcast(t *testing.T) {
	u, root := repo.SynthDiamond(3, 4)
	p := NewPoolResolver(u, 3, SessionOptions{Lazy: true})

	// Warm every shard on the pre-delta universe directly.
	req := poolRequest(root)
	for i := range p.shards {
		if _, err := p.shards[i].se.Resolve(context.Background(), req.Roots, concretizeOptions(req)); err != nil {
			t.Fatalf("warm shard %d: %v", i, err)
		}
	}

	d := NewDelta()
	d.Add("app", "99.0", repo.Dep("mid0", ":"))
	epoch, err := p.Apply(d)
	if err != nil || epoch != 1 {
		t.Fatalf("Apply = (%d, %v), want (1, nil)", epoch, err)
	}
	if p.Epoch() != 1 {
		t.Fatalf("pool epoch %d, want 1", p.Epoch())
	}
	for i := range p.shards {
		res, err := p.shards[i].se.Resolve(context.Background(), req.Roots, concretizeOptions(req))
		if err != nil {
			t.Fatalf("shard %d post-delta: %v", i, err)
		}
		if got := res.Picks["app"].String(); got != "99.0" {
			t.Fatalf("shard %d picked app %s, want the delta's 99.0", i, got)
		}
		if res.Stats.Epoch != 1 {
			t.Fatalf("shard %d answered at epoch %d, want 1", i, res.Stats.Epoch)
		}
	}
	if st := p.Stats(); st.Rebuilds != 0 {
		t.Fatalf("clean broadcast counted %d rebuilds", st.Rebuilds)
	}
}

// TestPoolApplyRebuildsFailedShard: the self-heal contract — a shard whose
// extension fails is replaced by a fresh session over the grown universe,
// Apply reports success, and the pool keeps full serving capacity.
func TestPoolApplyRebuildsFailedShard(t *testing.T) {
	u, root := repo.SynthRegistry(200, 4)
	p := NewPoolResolver(u, 3, SessionOptions{Lazy: true})
	req := poolRequest(root)
	if _, err := p.Resolve(context.Background(), req); err != nil {
		t.Fatalf("warm: %v", err)
	}

	// Shards extend in index order during the broadcast: skip shard 0,
	// fault shard 1, and the schedule exhausts (auto-disarming) before
	// shard 2.
	armFault(t, "concretize/extend", faultpoint.Skip(1), faultpoint.Error(1, nil))
	d := NewDelta()
	d.Add("reg150", "9.0")
	epoch, err := p.Apply(d)
	if err != nil || epoch != 1 {
		t.Fatalf("Apply = (%d, %v), want (1, nil) — rebuilds self-heal", epoch, err)
	}
	st := p.Stats()
	if st.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", st.Rebuilds)
	}
	// The rebuilt shard is fresh: lazy, nothing materialized, new epoch.
	enc := st.Shard[1].Encoding
	if !enc.Lazy || enc.MaterializedPackages != 0 {
		t.Fatalf("rebuilt shard not fresh: %+v", enc)
	}
	if got := p.shards[1].se.Epoch(); got != 1 {
		t.Fatalf("rebuilt shard at epoch %d, want 1", got)
	}
	// Full capacity: every shard answers, including the rebuilt one.
	for i := range p.shards {
		res, err := p.shards[i].se.Resolve(context.Background(), req.Roots, concretizeOptions(req))
		if err != nil || !res.Stats.Optimal {
			t.Fatalf("shard %d after rebuild: %v", i, err)
		}
	}
}

// TestPoolHammer: 8 clients over mixed request shapes race a stream of
// Applies; the write barrier, routing atomics, cache probes, and shard
// rebuilds (every third delta faults one shard) must interleave cleanly.
func TestPoolHammer(t *testing.T) {
	const workers = 8
	u, _ := repo.SynthRegistry(400, 4)
	p := NewPoolResolver(u, 4, SessionOptions{Lazy: true})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				spec := fmt.Sprintf("reg%d", rng.Intn(400))
				if rng.Intn(3) == 0 {
					spec = fmt.Sprintf("%s@:%d", spec, 1+rng.Intn(5))
				}
				res, err := p.Resolve(context.Background(), poolRequest(spec))
				switch {
				case err != nil && !errors.Is(err, ErrUnsatisfiable):
					t.Errorf("worker %d: %v", w, err)
					return
				case err == nil && !res.Stats.Optimal:
					t.Errorf("worker %d: non-optimal without a budget", w)
					return
				}
			}
		}()
	}

	t.Cleanup(faultpoint.DisarmAll)
	for i := 0; i < 20; i++ {
		if i%3 == 2 {
			// Fault shard i%4 during this broadcast: shards extend in index
			// order, and the exhausted schedule auto-disarms afterwards.
			if err := faultpoint.Arm("concretize/extend", faultpoint.Any(faultpoint.Skip(i%4), faultpoint.Error(1, nil))); err != nil {
				t.Fatal(err)
			}
		}
		d := NewDelta()
		d.Add(fmt.Sprintf("reg%d", (i*53)%400), fmt.Sprintf("%d.0", 100+i))
		if _, err := p.Apply(d); err != nil {
			t.Errorf("Apply %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()

	st := p.Stats()
	if st.Rebuilds == 0 {
		t.Error("fault-injected hammer saw no rebuilds")
	}
	if p.Epoch() != 20 {
		t.Errorf("epoch %d, want 20", p.Epoch())
	}
}

// TestPortfolioRebuild: quarantined members return to the race — rebuilt
// from the current universe with their own configuration, serving at the
// current epoch.
func TestPortfolioRebuild(t *testing.T) {
	u, root := repo.SynthDiamond(3, 4)
	p := mustPortfolio(t, u)
	// Members extend in racing order (baseline, positive, dive, steady):
	// fault the second and fourth, then the exhausted schedule auto-disarms.
	armFault(t, "concretize/extend",
		faultpoint.Skip(1), faultpoint.Error(1, nil),
		faultpoint.Skip(1), faultpoint.Error(1, nil))
	if _, err := p.Apply(diamondDelta()); err == nil {
		t.Fatal("faulted broadcast returned nil error")
	}

	healed := p.Rebuild()
	if len(healed) != 2 || healed[0] != "positive" || healed[1] != "steady" {
		t.Fatalf("Rebuild healed %v, want [positive steady]", healed)
	}
	if again := p.Rebuild(); again != nil {
		t.Fatalf("second Rebuild healed %v, want nil", again)
	}
	for _, h := range p.Health() {
		if h.Quarantined || h.Err != nil {
			t.Fatalf("member %s still benched after Rebuild: %+v", h.Name, h)
		}
		if h.Epoch != 1 {
			t.Fatalf("member %s at epoch %d, want 1", h.Name, h.Epoch)
		}
	}
	res, err := p.Resolve(context.Background(), poolRequest(root))
	if err != nil || !res.Stats.Optimal {
		t.Fatalf("post-rebuild resolve: %v", err)
	}
	if got := res.Picks["app"].String(); got != "99.0" {
		t.Fatalf("post-rebuild picked app %s, want the delta's 99.0", got)
	}
}

// concretizeOptions mirrors PoolResolver.Resolve's lowering for direct
// shard-session calls in white-box tests.
func concretizeOptions(req Request) concretize.Options {
	return concretize.Options{MaxConflicts: req.MaxConflicts, Objective: req.Objective}
}
