package resolve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// TestVirtualRootTable: the serving surface accepts virtual names as
// request roots in both forms and surfaces unknown targets as the typed
// *UnknownPackageError — previously an unknown root produced only a
// stringly error from deep inside the encoder.
func TestVirtualRootTable(t *testing.T) {
	u := repo.New()
	u.Add("app", "1.0", repo.Dep("mpi", ":"))
	u.Add("ompi", "4.0", repo.Prov("mpi", "3.0"), repo.Dep("hwloc", ":"))
	u.Add("mpich", "1.5", repo.Prov("mpi", "1.0"))
	u.Add("hwloc", "2.9")
	r := NewSessionResolver(u, SessionOptions{})

	cases := []struct {
		spec        string
		wantErr     bool
		wantVirtual bool // UnknownPackageError.Virtual
		wantPkg     string
		wantPick    string // a package that must appear in the picks
	}{
		{spec: "app", wantPick: "app"},
		{spec: "mpi", wantPick: "mpich"},           // bare virtual: provider installed
		{spec: "virtual:mpi@2:", wantPick: "ompi"}, // namespaced + provider-range filter
		{spec: "ghost", wantErr: true, wantPkg: "ghost"},
		{spec: "virtual:ghost", wantErr: true, wantVirtual: true, wantPkg: "ghost"},
		{spec: "virtual:app", wantErr: true, wantVirtual: true, wantPkg: "app"}, // package, not virtual
	}
	for _, tc := range cases {
		root, err := ParseRoot(tc.spec)
		if err != nil {
			t.Fatalf("ParseRoot(%q): %v", tc.spec, err)
		}
		res, err := r.Resolve(context.Background(), Request{Roots: []Root{root}})
		if tc.wantErr {
			var ue *UnknownPackageError
			if !errors.As(err, &ue) {
				t.Errorf("%s: err = %v, want *UnknownPackageError", tc.spec, err)
				continue
			}
			if ue.Pkg != tc.wantPkg || ue.Virtual != tc.wantVirtual {
				t.Errorf("%s: got {Pkg:%q Virtual:%v}, want {Pkg:%q Virtual:%v}",
					tc.spec, ue.Pkg, ue.Virtual, tc.wantPkg, tc.wantVirtual)
			}
			if errors.Is(err, ErrUnsatisfiable) {
				t.Errorf("%s: unknown root must not match ErrUnsatisfiable", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: Resolve: %v", tc.spec, err)
			continue
		}
		if _, ok := res.Picks[tc.wantPick]; !ok {
			t.Errorf("%s: picks %v missing %s", tc.spec, res.Picks, tc.wantPick)
		}
	}
}

// TestPortfolioVirtualDifferential is the portfolio arm of the richer-
// universe oracle: over seeded SynthVirtualDiamond and
// SynthConditionalChain universes, a full portfolio race and a single warm
// session must agree on satisfiability and optimal cost for every request
// — provider ties and trigger flips may change picks between backends, but
// never the optimum.
func TestPortfolioVirtualDifferential(t *testing.T) {
	nUniverses := 20
	if testing.Short() {
		nUniverses = 5
	}
	rng := rand.New(rand.NewSource(16180))
	for i := 0; i < nUniverses; i++ {
		var u *repo.Universe
		var vocab []string
		versions := 1 + rng.Intn(3)
		if i%2 == 0 {
			virtuals, providers := 1+rng.Intn(3), 1+rng.Intn(3)
			u, _ = repo.SynthVirtualDiamond(virtuals, providers, versions)
			vocab = []string{"app", "vbase"}
			for v := 0; v < virtuals; v++ {
				vocab = append(vocab, fmt.Sprintf("virt%d", v), fmt.Sprintf("virtual:virt%d", v))
			}
			for p := 0; p < providers; p++ {
				vocab = append(vocab, fmt.Sprintf("prov0_%d", p))
			}
		} else {
			length := 2 + rng.Intn(4)
			u, _ = repo.SynthConditionalChain(length, versions)
			vocab = []string{"cc0", "ctrl", "ccx"}
			for l := 1; l < length; l++ {
				vocab = append(vocab, fmt.Sprintf("cc%d", l))
			}
		}
		port, err := NewPortfolioResolver(u)
		if err != nil {
			t.Fatalf("portfolio: %v", err)
		}
		single := NewSessionResolver(u, SessionOptions{})
		t.Run(fmt.Sprintf("u%02d", i), func(t *testing.T) {
			for reqN := 0; reqN < 8; reqN++ {
				n := 1 + rng.Intn(2)
				var roots []Root
				for j := 0; j < n; j++ {
					name := vocab[rng.Intn(len(vocab))]
					spec := name
					if rng.Intn(2) == 0 {
						k := 1 + rng.Intn(versions+1)
						if rng.Intn(2) == 0 {
							spec = fmt.Sprintf("%s@:%d", name, k)
						} else {
							spec = fmt.Sprintf("%s@%d:", name, k)
						}
					}
					root, err := ParseRoot(spec)
					if err != nil {
						t.Fatalf("ParseRoot(%q): %v", spec, err)
					}
					roots = append(roots, root)
				}
				req := Request{Roots: roots}
				pRes, pErr := port.Resolve(context.Background(), req)
				sRes, sErr := single.Resolve(context.Background(), req)
				if (pErr == nil) != (sErr == nil) {
					t.Fatalf("roots %v: portfolio err %v, session err %v", roots, pErr, sErr)
				}
				if pErr != nil {
					if !errors.Is(pErr, ErrUnsatisfiable) || !errors.Is(sErr, ErrUnsatisfiable) {
						t.Fatalf("roots %v: non-unsat errors: %v / %v", roots, pErr, sErr)
					}
					continue
				}
				if pRes.Stats.Cost != sRes.Stats.Cost {
					t.Fatalf("roots %v: cost %d (portfolio %s) vs %d (session)",
						roots, pRes.Stats.Cost, pRes.Config, sRes.Stats.Cost)
				}
			}
		})
	}
}
