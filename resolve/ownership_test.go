package resolve

// Differential test of the Result.Picks ownership contract: every path
// that can hand back an answer — a fresh session solve, a session
// solution-cache hit, and a portfolio race — must return a Picks map the
// caller owns outright. Mutating it must never bleed into a later answer
// for the same request. (The serving tier's coalesced-follower leg lives
// in serve's TestCoalescedPicksOwnership.)

import (
	"context"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

func TestResultPicksOwnership(t *testing.T) {
	newReq := func(root string) Request {
		return Request{Roots: []Root{{Pkg: root}}, Objective: NewestVersion()}
	}
	backends := []struct {
		name string
		mk   func(t *testing.T) (Resolver, Request)
	}{
		{"session-solve", func(t *testing.T) (Resolver, Request) {
			u, root := repo.SynthDiamond(3, 4)
			return NewSessionResolver(u, SessionOptions{}), newReq(root)
		}},
		{"session-cache-hit", func(t *testing.T) (Resolver, Request) {
			u, root := repo.SynthDiamond(3, 4)
			r := NewSessionResolver(u, SessionOptions{})
			// Prime the solution cache so every request below is a hit.
			if _, err := r.Resolve(context.Background(), newReq(root)); err != nil {
				t.Fatal(err)
			}
			return r, newReq(root)
		}},
		{"portfolio", func(t *testing.T) (Resolver, Request) {
			u, root := repo.SynthDiamond(3, 4)
			return mustPortfolio(t, u), newReq(root)
		}},
	}
	for _, b := range backends {
		b := b
		t.Run(b.name, func(t *testing.T) {
			r, req := b.mk(t)
			first, err := r.Resolve(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[string]string, len(first.Picks))
			for pkg, v := range first.Picks {
				want[pkg] = v.String()
			}

			// Poison the returned map every way a careless caller could.
			for pkg := range first.Picks {
				first.Picks[pkg] = version.MustParse("66.6")
			}
			first.Picks["injected"] = version.MustParse("1.0")

			second, err := r.Resolve(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if len(second.Picks) != len(want) {
				t.Fatalf("second answer has %d picks, want %d: %v", len(second.Picks), len(want), second.Picks)
			}
			for pkg, vs := range want {
				if second.Picks[pkg].String() != vs {
					t.Fatalf("pick %s = %s after caller mutation, want %s", pkg, second.Picks[pkg], vs)
				}
			}
			if _, ok := second.Picks["injected"]; ok {
				t.Fatal("caller-injected key leaked into a later answer")
			}
			// And the two answers must not share storage at all.
			second.Picks["probe"] = version.MustParse("1.0")
			if _, ok := first.Picks["probe"]; ok {
				t.Fatal("consecutive answers share one Picks map")
			}
		})
	}
}
