package resolve

// Pinned tests for the panic-containment and crashloop layer: an injected
// panic during a portfolio member's solve is contained (benched, raced
// around) and healed by a rebuild at the next Resolve entry; a member that
// panics on every rebuild ends sticky-benched with the panic visible in
// Health(); the pool heals a panicking shard the same way.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/faultpoint"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// TestPortfolioSolvePanicQuarantineAndHeal: the acceptance scenario — an
// injected panic during one member's solve is contained (the race falls
// through to the survivors), the member is quarantined with the panic in
// Health(), and the next Resolve entry rebuilds it back into the race.
func TestPortfolioSolvePanicQuarantineAndHeal(t *testing.T) {
	u, root := repo.SynthDiamond(3, 4)
	p := mustPortfolio(t, u)
	req := Request{Roots: []Root{{Pkg: root}}, Objective: NewestVersion()}

	armFault(t, "resolve/portfolio/solve", faultpoint.Panic(1, "injected solve panic"))

	// The panicking member is raced around: the request still succeeds.
	res, err := p.Resolve(context.Background(), req)
	if err != nil {
		t.Fatalf("resolve with one panicking member: %v", err)
	}
	if !res.Stats.Optimal {
		t.Fatal("survivors returned a non-optimal answer")
	}

	// Exactly one member is benched, with the contained panic (and its
	// stack) in Health.
	benched := 0
	for _, h := range p.Health() {
		if !h.Quarantined {
			continue
		}
		benched++
		var pe *PanicError
		if !errors.As(h.Err, &pe) {
			t.Fatalf("benched member error %T, want *PanicError: %v", h.Err, h.Err)
		}
		if !strings.Contains(pe.Value, "injected solve panic") {
			t.Fatalf("contained panic value = %q", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("contained panic lost its stack")
		}
		if h.CrashLoop {
			t.Fatal("single panic marked as crashloop")
		}
	}
	if benched != 1 {
		t.Fatalf("benched members = %d, want 1", benched)
	}

	// The next Resolve entry auto-heals: fresh session, back in the race.
	if _, err := p.Resolve(context.Background(), req); err != nil {
		t.Fatalf("resolve after heal: %v", err)
	}
	for _, h := range p.Health() {
		if h.Quarantined {
			t.Fatalf("member %s still benched after auto-heal: %v", h.Name, h.Err)
		}
	}
}

// TestPortfolioCrashLoopSticky: a member that panics on every rebuild
// exhausts the crashloop budget and ends sticky-benched — CrashLoop set,
// the panic preserved in Health(), no further rebuild attempts — until an
// explicit Rebuild resets the window.
func TestPortfolioCrashLoopSticky(t *testing.T) {
	u, root := repo.SynthDiamond(3, 4)
	p := mustPortfolio(t, u)
	p.SetCrashLoopPolicy(2, time.Hour)
	req := Request{Roots: []Root{{Pkg: root}}, Objective: NewestVersion()}

	t.Cleanup(faultpoint.DisarmAll)
	// "dive" panics once mid-solve (benching it), then panics on every
	// rebuild attempt.
	if err := faultpoint.Arm("resolve/portfolio/solve",
		faultpoint.On("dive", faultpoint.Panic(1, "injected solve panic"))); err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Arm("resolve/portfolio/rebuild",
		faultpoint.On("dive", faultpoint.Panic(0, "injected rebuild panic"))); err != nil {
		t.Fatal(err)
	}

	// Each Resolve entry burns one heal attempt; with a budget of 2 the
	// member must be sticky within a handful of requests.
	sticky := false
	for i := 0; i < 6 && !sticky; i++ {
		if _, err := p.Resolve(context.Background(), req); err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
		for _, h := range p.Health() {
			if h.Name == "dive" && h.CrashLoop {
				sticky = true
			}
		}
	}
	if !sticky {
		t.Fatal("crashlooping member never went sticky")
	}
	for _, h := range p.Health() {
		if h.Name != "dive" {
			if h.Quarantined {
				t.Fatalf("healthy member %s benched: %v", h.Name, h.Err)
			}
			continue
		}
		if !h.Quarantined || !h.CrashLoop {
			t.Fatalf("crashlooping member health = %+v", h)
		}
		var pe *PanicError
		if !errors.As(h.Err, &pe) {
			t.Fatalf("crashloop bench lost the panic: %v", h.Err)
		}
		if !strings.Contains(h.Err.Error(), "crashlooping") {
			t.Fatalf("crashloop bench error = %v", h.Err)
		}
	}
	// Sticky means sticky: further Resolves must not attempt more rebuilds.
	before := faultpoint.Hits("resolve/portfolio/rebuild")
	if _, err := p.Resolve(context.Background(), req); err != nil {
		t.Fatalf("resolve with sticky member: %v", err)
	}
	if after := faultpoint.Hits("resolve/portfolio/rebuild"); after != before {
		t.Fatalf("sticky member still rebuilding: %d -> %d attempts", before, after)
	}

	// Explicit Rebuild is the operator override: with the fault gone it
	// resets the window and heals the member.
	faultpoint.DisarmAll()
	if healed := p.Rebuild(); len(healed) != 1 || healed[0] != "dive" {
		t.Fatalf("Rebuild healed %v, want [dive]", healed)
	}
	for _, h := range p.Health() {
		if h.Quarantined {
			t.Fatalf("member %s benched after operator rebuild: %v", h.Name, h.Err)
		}
	}
	if _, err := p.Resolve(context.Background(), req); err != nil {
		t.Fatalf("resolve after operator rebuild: %v", err)
	}
}

// TestPoolSolvePanicHeal: a pool shard that panics mid-solve fails that
// request with the contained *PanicError, is excluded from routing, and is
// replaced by a fresh session at the next Resolve entry — capacity
// recovers without an Apply.
func TestPoolSolvePanicHeal(t *testing.T) {
	u, root := repo.SynthRegistry(120, 3)
	p := NewPoolResolver(u, 3, SessionOptions{Lazy: true})
	req := poolRequest(root)

	armFault(t, "resolve/pool/solve", faultpoint.Panic(1, "injected shard panic"))

	_, err := p.Resolve(context.Background(), req)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking shard returned %T, want *PanicError: %v", err, err)
	}
	if st := p.Stats(); st.Panics != 1 || st.Broken != 1 {
		t.Fatalf("stats panics/broken = %d/%d, want 1/1", st.Panics, st.Broken)
	}

	// Next entry heals the shard; the request succeeds.
	res, err := p.Resolve(context.Background(), req)
	if err != nil || !res.Stats.Optimal {
		t.Fatalf("resolve after heal: %v", err)
	}
	st := p.Stats()
	if st.Broken != 0 {
		t.Fatalf("broken shards after heal = %d, want 0", st.Broken)
	}
	if st.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", st.Rebuilds)
	}
	for i, sh := range st.Shard {
		if sh.Broken || sh.CrashLoop {
			t.Fatalf("shard %d still broken: %+v", i, sh)
		}
	}
}

// TestPoolCrashLoopSticky: a shard that panics on every rebuild goes
// sticky; the pool keeps serving on the remaining shards and reports the
// capacity loss, and an operator Rebuild restores it.
func TestPoolCrashLoopSticky(t *testing.T) {
	u, root := repo.SynthRegistry(120, 3)
	p := NewPoolResolver(u, 3, SessionOptions{Lazy: true})
	p.SetCrashLoopPolicy(2, time.Hour)
	req := poolRequest(root)

	t.Cleanup(faultpoint.DisarmAll)
	if err := faultpoint.Arm("resolve/pool/solve", faultpoint.Any(faultpoint.Panic(1, "injected shard panic"))); err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Arm("resolve/pool/rebuild", faultpoint.Any(faultpoint.Panic(0, "injected rebuild panic"))); err != nil {
		t.Fatal(err)
	}

	// First request eats the solve panic; subsequent entries burn rebuild
	// attempts until the shard goes sticky.
	_, err := p.Resolve(context.Background(), req)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want contained panic, got %v", err)
	}
	sticky := false
	for i := 0; i < 6 && !sticky; i++ {
		if _, err := p.Resolve(context.Background(), req); err != nil {
			t.Fatalf("resolve %d on surviving shards: %v", i, err)
		}
		for _, sh := range p.Stats().Shard {
			if sh.CrashLoop {
				sticky = true
			}
		}
	}
	if !sticky {
		t.Fatal("crashlooping shard never went sticky")
	}

	faultpoint.DisarmAll()
	healed := p.Rebuild()
	if len(healed) != 1 {
		t.Fatalf("Rebuild healed %v, want one shard", healed)
	}
	if st := p.Stats(); st.Broken != 0 {
		t.Fatalf("broken after operator rebuild = %d", st.Broken)
	}
	if _, err := p.Resolve(context.Background(), req); err != nil {
		t.Fatalf("resolve after operator rebuild: %v", err)
	}
}
