package resolve

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

func mustPortfolio(t testing.TB, u *repo.Universe, configs ...BackendConfig) *PortfolioResolver {
	t.Helper()
	p, err := NewPortfolioResolver(u, configs...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSessionResolverBasics(t *testing.T) {
	u, root := repo.SynthDiamond(3, 4)
	r := NewSessionResolver(u, SessionOptions{})
	res, err := r.Resolve(context.Background(), Request{Roots: []Root{{Pkg: root}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "session" || !res.Stats.Optimal {
		t.Fatalf("result: %+v", res)
	}
	// Everything at the newest version is the diamond's unique optimum.
	for pkg, v := range res.Picks {
		if v.String() != "4.0" {
			t.Fatalf("pick %s = %s, want 4.0", pkg, v)
		}
	}
	// Second call hits the session's solution cache.
	res2, err := r.Resolve(context.Background(), Request{Roots: []Root{{Pkg: root}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.SolutionCacheHit || r.CacheLen() == 0 {
		t.Fatalf("warm repeat: hit=%v cacheLen=%d", res2.Stats.SolutionCacheHit, r.CacheLen())
	}
}

func TestPortfolioConfigValidation(t *testing.T) {
	u, _ := repo.SynthDiamond(2, 2)
	if _, err := NewPortfolioResolver(u, BackendConfig{Name: ""}); err == nil {
		t.Fatal("empty name must be rejected")
	}
	_, err := NewPortfolioResolver(u, BackendConfig{Name: "a"}, BackendConfig{Name: "a"})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate name: err = %v", err)
	}
	p := mustPortfolio(t, u)
	want := []string{"baseline", "positive", "dive", "steady"}
	if !reflect.DeepEqual(p.Members(), want) {
		t.Fatalf("Members = %v, want %v", p.Members(), want)
	}
}

// TestPortfolioDifferential is the acceptance harness: the portfolio must
// return cost-identical answers to a single-Session oracle across the
// seeded SynthDense (unique optimum: pick equality) and
// SynthDenseConflicts (tied optima: cost equality + unsat agreement)
// families, regardless of which member wins each race.
func TestPortfolioDifferential(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 15; seed++ {
		u, root := repo.SynthDense(22, 6, 3, seed)
		oracle := NewSessionResolver(u, SessionOptions{})
		p := mustPortfolio(t, u)
		req := Request{Roots: []Root{{Pkg: root}}}
		want, err := oracle.Resolve(ctx, req)
		if err != nil {
			t.Fatalf("dense seed %d: oracle: %v", seed, err)
		}
		got, err := p.Resolve(ctx, req)
		if err != nil {
			t.Fatalf("dense seed %d: portfolio: %v", seed, err)
		}
		if got.Stats.Cost != want.Stats.Cost {
			t.Fatalf("dense seed %d: cost %d (via %s), oracle %d", seed, got.Stats.Cost, got.Config, want.Stats.Cost)
		}
		if !reflect.DeepEqual(got.Picks, want.Picks) {
			t.Fatalf("dense seed %d: picks diverge (via %s):\n%v\n%v", seed, got.Config, got.Picks, want.Picks)
		}
	}
	for seed := int64(0); seed < 15; seed++ {
		u, root := repo.SynthDenseConflicts(22, 6, 3, 2, seed)
		oracle := NewSessionResolver(u, SessionOptions{})
		p := mustPortfolio(t, u)
		req := Request{Roots: []Root{{Pkg: root}}}
		want, wantErr := oracle.Resolve(ctx, req)
		got, gotErr := p.Resolve(ctx, req)
		if wantErr != nil {
			if !errors.Is(wantErr, ErrUnsatisfiable) || !errors.Is(gotErr, ErrUnsatisfiable) {
				t.Fatalf("conflicts seed %d: oracle err %v, portfolio err %v", seed, wantErr, gotErr)
			}
			continue
		}
		if gotErr != nil {
			t.Fatalf("conflicts seed %d: portfolio: %v", seed, gotErr)
		}
		if got.Stats.Cost != want.Stats.Cost {
			t.Fatalf("conflicts seed %d: cost %d (via %s), oracle %d", seed, got.Stats.Cost, got.Config, want.Stats.Cost)
		}
	}
}

// TestPortfolioObjectiveDifferential repeats the race under a
// MinimalChange objective: member heuristics must not bend the pluggable
// objective either.
func TestPortfolioObjectiveDifferential(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 8; seed++ {
		u, root := repo.SynthDense(18, 5, 3, seed)
		oracle := NewSessionResolver(u, SessionOptions{})
		base, err := oracle.Resolve(ctx, Request{Roots: []Root{{Pkg: root}}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		req := Request{
			Roots:     []Root{{Pkg: root}},
			Objective: MinimalChange(repo.ProfileOf(base.Picks)),
		}
		want, err := oracle.Resolve(ctx, req)
		if err != nil {
			t.Fatalf("seed %d: oracle minchange: %v", seed, err)
		}
		got, err := mustPortfolio(t, u).Resolve(ctx, req)
		if err != nil {
			t.Fatalf("seed %d: portfolio minchange: %v", seed, err)
		}
		if got.Stats.Cost != want.Stats.Cost || !reflect.DeepEqual(got.Picks, want.Picks) {
			t.Fatalf("seed %d: minchange diverges (via %s):\n%v cost %d\n%v cost %d",
				seed, got.Config, got.Picks, got.Stats.Cost, want.Picks, want.Stats.Cost)
		}
	}
}

func TestPortfolioCancellation(t *testing.T) {
	// Cancel a request racing on a multi-minute refutation: the portfolio
	// must return promptly with the context's error and stay serviceable.
	u, root := repo.SynthPigeonhole(11)
	p := mustPortfolio(t, u)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Resolve(ctx, Request{Roots: []Root{{Pkg: root}}})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	canceledAt := time.Now()
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("portfolio Resolve did not return after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if lag := time.Since(canceledAt); lag > 200*time.Millisecond {
		t.Errorf("portfolio took %v to honor cancellation across members", lag)
	}

	// Every member must still serve: a satisfiable request over the same
	// universe succeeds (and quickly, thanks to the phase reset).
	res, err := p.Resolve(context.Background(), Request{Roots: []Root{{Pkg: "pigeon0"}}})
	if err != nil {
		t.Fatalf("post-cancel resolve: %v", err)
	}
	if !res.Stats.Optimal || len(res.Picks) != 1 {
		t.Fatalf("post-cancel result: %+v", res)
	}
}

func TestPortfolioDeadline(t *testing.T) {
	u, root := repo.SynthPigeonhole(11)
	p := mustPortfolio(t, u)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Resolve(ctx, Request{Roots: []Root{{Pkg: root}}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("deadline-bounded portfolio resolve took %v", d)
	}
}

func TestPortfolioLoserCancellationDoesNotStarveWinner(t *testing.T) {
	// A universe where the answer is definitive and instant for every
	// member: the race settles, losers are canceled, and repeated
	// requests keep working — exercising winner-side cache fills and
	// loser-side interrupts together under the race detector.
	u, root := repo.SynthDense(20, 5, 3, 42)
	p := mustPortfolio(t, u)
	req := Request{Roots: []Root{{Pkg: root}}}
	var want *Result
	for i := 0; i < 25; i++ {
		got, err := p.Resolve(context.Background(), req)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if want == nil {
			want = got
			continue
		}
		if got.Stats.Cost != want.Stats.Cost || !reflect.DeepEqual(got.Picks, want.Picks) {
			t.Fatalf("iteration %d: drifted (via %s):\n%v\n%v", i, got.Config, got.Picks, want.Picks)
		}
	}
}

func TestPortfolioConcurrentRequests(t *testing.T) {
	// 8 goroutines × mixed requests against one portfolio: exercises
	// concurrent races sharing member Sessions (each serializes its own
	// solver; caches are concurrent).
	u, root := repo.SynthDenseConflicts(20, 5, 3, 2, 7)
	p := mustPortfolio(t, u)
	oracle := NewSessionResolver(u, SessionOptions{})
	roots := [][]Root{
		{{Pkg: root}},
		{{Pkg: "dense3"}},
		{{Pkg: "dense7"}, {Pkg: "dense11"}},
		{{Pkg: "dense1"}, {Pkg: root}},
	}
	type answer struct {
		cost  int64
		unsat bool
	}
	want := make([]answer, len(roots))
	for i, rs := range roots {
		res, err := oracle.Resolve(context.Background(), Request{Roots: rs})
		if err != nil {
			if !errors.Is(err, ErrUnsatisfiable) {
				t.Fatal(err)
			}
			want[i] = answer{unsat: true}
			continue
		}
		want[i] = answer{cost: res.Stats.Cost}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				k := (g + i) % len(roots)
				res, err := p.Resolve(context.Background(), Request{Roots: roots[k]})
				if want[k].unsat {
					if !errors.Is(err, ErrUnsatisfiable) {
						t.Errorf("goroutine %d: req %d err = %v, want unsat", g, k, err)
					}
					continue
				}
				if err != nil {
					t.Errorf("goroutine %d: req %d: %v", g, k, err)
					continue
				}
				if res.Stats.Cost != want[k].cost {
					t.Errorf("goroutine %d: req %d cost %d, want %d", g, k, res.Stats.Cost, want[k].cost)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPortfolioBudgetFallback(t *testing.T) {
	// With a conflict budget too small to prove anything on a hard
	// refutation, no member is definitive and the typed budget error
	// surfaces.
	u, root := repo.SynthPigeonhole(9)
	p := mustPortfolio(t, u)
	_, err := p.Resolve(context.Background(), Request{Roots: []Root{{Pkg: root}}, MaxConflicts: 20})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestTypedErrorsSurface(t *testing.T) {
	u, root := repo.SynthUnsatWeb(3, 2)
	for _, r := range []Resolver{
		NewSessionResolver(u, SessionOptions{}),
		mustPortfolio(t, u),
	} {
		_, err := r.Resolve(context.Background(), Request{Roots: []Root{{Pkg: root}}})
		var unsat *UnsatError
		if !errors.As(err, &unsat) || !errors.Is(err, ErrUnsatisfiable) {
			t.Fatalf("err = %v, want *UnsatError", err)
		}
		if len(unsat.Roots) != 1 || unsat.Roots[0].Pkg != root {
			t.Fatalf("UnsatError.Roots = %v", unsat.Roots)
		}
	}
}

func TestParseRootRoundTrip(t *testing.T) {
	r, err := ParseRoot("zlib@1.2:1.4")
	if err != nil {
		t.Fatal(err)
	}
	if r.Pkg != "zlib" || r.String() != "zlib@1.2:1.4" {
		t.Fatalf("root = %+v", r)
	}
	if !r.Range.Satisfies(version.MustParse("1.3")) {
		t.Fatal("range lost in round trip")
	}
}
