// Package resolve is the public serving surface of the concretizer: the
// top of the version -> repo -> sat -> concretize -> resolve stack. It
// answers "which concrete (package, version) set satisfies these roots,
// best, under this objective?" through one small interface — Resolver —
// behind which callers choose a backend. Roots may name concrete packages
// or virtual interfaces ("virtual:mpi@2:", or a bare virtual name): a
// virtual root is satisfied by any provider whose provided version lies in
// the range, with the chosen provider weighed at root rank by the
// objective. The backends:
//
//   - SessionResolver fronts a single long-lived concretize.Session: one
//     warm solver whose learnt clauses, activity, phases, and solution
//     cache persist across requests.
//   - PortfolioResolver races several differently-configured Sessions per
//     request and returns the first definitive answer, canceling the
//     losers through the solver's interrupt. Configurations differ only
//     in search heuristics — branching polarity, restart schedule, and
//     the objective-descent strategy (sat.Config.Descent: adaptive,
//     linear stepping, or binary search between the incumbent and the
//     proven lower bound) — so every member returns cost-identical
//     answers; racing changes latency, never results. Rebuild returns
//     quarantined members to the race with fresh sessions.
//   - PoolResolver shards requests across N identically-configured
//     Sessions for throughput: shape-affine routing (hash of Request.Key)
//     with cache-aware work stealing, so distinct request shapes solve in
//     parallel and repeats land on the shard already warm for them. With
//     SessionOptions.Lazy set, each shard materializes solver clauses only
//     for the subgraphs its requests reach — the registry-scale
//     configuration, where a pool over a catalog of thousands of packages
//     carries formulas proportional to the working set, not the catalog.
//
// Warm requests are cheap twice over: beyond the solution cache, each
// Session banks per-request-shape facts — the lowered objective and the
// proven lower bound on its optimal cost — so a repeat request usually
// proves optimality without a single refutation round, and descent
// tightens one in-place pseudo-Boolean bound instead of allocating
// constraints per round.
//
// Requests are context-aware end to end: canceling the request context
// (or exceeding its deadline) interrupts in-flight solves promptly and
// leaves every backend reusable, which is what makes deadline-bounded
// serving and loser-cancellation safe.
//
// Universes are live: both backends implement Apply(repo.Delta), which
// grows the shared universe by one epoch and extends every member
// session's encoded skeleton in place under a write barrier — no rebuild,
// and no in-flight request ever observes a half-applied delta. Cached
// answers whose requests a delta cannot touch survive it;
// Result.Stats.Epoch reports the epoch each answer was computed at.
//
// Objectives are pluggable per request (NewestVersion by default,
// MinimalChange against an installed profile, or custom weights via
// concretize.ObjectiveFunc); failures are typed (*concretize.UnsatError,
// concretize.ErrBudget, the context's error on cancellation).
package resolve

import (
	"context"
	"fmt"

	"github.com/paper-repo-growth/go-arxiv/internal/concretize"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
)

// Re-exported request vocabulary, so serving-tier callers assemble
// requests without importing the concretizer directly.
type (
	// Root is one requested package with a version constraint.
	Root = concretize.Root
	// Objective ranks satisfying resolutions; see concretize.Objective.
	Objective = concretize.Objective
	// Stats reports search effort for one request.
	Stats = concretize.Stats
	// SessionOptions tunes one backend Session (cache sizes and the
	// sat.Config solver knobs a portfolio varies).
	SessionOptions = concretize.SessionOptions
	// ObjectiveFunc adapts a custom weight function into an Objective.
	ObjectiveFunc = concretize.ObjectiveFunc
	// ObjectiveRequest is the read-only context an Objective prices.
	ObjectiveRequest = concretize.ObjectiveRequest
	// PkgCost is one package's contribution to an objective.
	PkgCost = concretize.PkgCost
	// UnsatError reports a proven-unsatisfiable request, carrying its roots.
	UnsatError = concretize.UnsatError
	// UnknownPackageError reports a request root naming a target the
	// universe carries in neither namespace: not a concrete package and
	// not a virtual with a provider (or, for an explicit "virtual:" root,
	// not a virtual). It is a request error, distinct from
	// unsatisfiability.
	UnknownPackageError = concretize.UnknownPackageError
	// Delta is an append-only batch of universe growth (new packages,
	// versions, provides edges); build one with NewDelta and repo.Delta.Add,
	// then hand it to a resolver's Apply.
	Delta = repo.Delta
	// Epoch counts the deltas applied to a universe; Result.Stats.Epoch
	// reports the epoch an answer was computed at.
	Epoch = repo.Epoch
	// EncodingStats is a session's encoder-coverage snapshot: how much of
	// the bound universe the solver formula actually carries. Under
	// SessionOptions.Lazy the materialized counts track the union of
	// subgraphs requests have reached, not the universe.
	EncodingStats = concretize.EncodingStats
)

// NewDelta returns an empty delta ready for Add calls.
func NewDelta() *Delta { return repo.NewDelta() }

// MemberError attributes a portfolio member's failure: which configuration
// produced the error and at what universe epoch. The definitive-unsat
// winner path, the broadcast-quarantine path, and the first-error fallback
// all wrap through it, so callers get uniform attribution; Unwrap keeps
// errors.Is(ErrUnsatisfiable) and errors.As(*UnsatError) matching the
// underlying taxonomy.
type MemberError struct {
	Member string
	Epoch  Epoch
	Err    error
}

func (e *MemberError) Error() string {
	return fmt.Sprintf("resolve: member %s (epoch %d): %v", e.Member, e.Epoch, e.Err)
}

func (e *MemberError) Unwrap() error { return e.Err }

// Typed failure taxonomy, re-exported so serving-tier callers match
// errors without importing the concretizer.
var (
	// ErrUnsatisfiable matches every *UnsatError via errors.Is.
	ErrUnsatisfiable = concretize.ErrUnsatisfiable
	// ErrBudget matches conflict-budget exhaustion before any model.
	ErrBudget = concretize.ErrBudget
)

// NewestVersion is the default objective: prefer newest versions, then
// fewer installed packages, roots first.
func NewestVersion() Objective { return concretize.NewestVersion{} }

// MinimalChange returns an objective minimizing churn against an
// installed profile; see concretize.MinimalChange.
func MinimalChange(installed repo.Profile) Objective { return concretize.MinimalChange(installed) }

// ParseRoot parses a spec-like request string ("zlib", "zlib@1.2",
// "zlib@1.2:1.4", or the virtual namespace form "virtual:mpi@2:") into a
// Root.
func ParseRoot(s string) (Root, error) { return concretize.ParseRoot(s) }

// Request is one resolution request.
type Request struct {
	// Roots are the targets (with version constraints) that must be
	// satisfied: concrete packages, or virtual names resolved to any
	// provider whose provided version lies in the range. Order and
	// duplicates are irrelevant.
	Roots []Root

	// Objective ranks satisfying resolutions; nil selects NewestVersion.
	Objective Objective

	// MaxConflicts bounds solver effort per backend solve; <= 0 means
	// unbounded. Prefer a context deadline for wall-clock bounds.
	MaxConflicts int64
}

// Key returns the request's canonical shape key: the objective's identity
// plus the canonicalized (sorted, deduplicated) roots. Two requests with
// equal keys are answer-identical against the same universe epoch — the
// property the Session solution cache relies on internally, exported here
// so serving tiers can coalesce identical in-flight requests to one solve.
// MaxConflicts is deliberately excluded: budget is an effort cap, not part
// of the request's meaning (serving tiers that let clients pick budgets
// should qualify their coalescing key with it).
func (req Request) Key() string {
	return concretize.ShapeKey(req.Objective, req.Roots)
}

// Result is a concrete resolution: the picks, the effort spent producing
// them, and which backend configuration produced them.
type Result struct {
	// Picks maps each installed package to its chosen version. The map is
	// owned by the caller.
	Picks map[string]version.Version

	// Stats reports the winning backend's search effort.
	Stats Stats

	// Config names the backend configuration that produced the answer
	// ("session" for a SessionResolver; the winning member's name for a
	// PortfolioResolver).
	Config string
}

// Resolver answers resolution requests. Implementations are safe for
// concurrent use and honor ctx cancellation and deadlines promptly
// without poisoning internal state.
type Resolver interface {
	// Resolve blocks for up to a full solve; cancel through ctx.
	//
	// goarxivlint:blocking
	Resolve(ctx context.Context, req Request) (*Result, error)
}

// SessionResolver serves every request from one warm concretize.Session.
type SessionResolver struct {
	name string
	se   *concretize.Session
}

var _ Resolver = (*SessionResolver)(nil)

// NewSessionResolver builds a resolver over one Session bound to the
// universe (encoding its skeleton once). The universe must not be mutated
// behind the resolver's back: growth arrives through Apply, which keeps
// the universe, the encoded skeleton, and the caches in lockstep.
func NewSessionResolver(u *repo.Universe, opts SessionOptions) *SessionResolver {
	return &SessionResolver{name: "session", se: concretize.NewSession(u, opts)}
}

// Apply grows the resolver's universe by one append-only delta and extends
// the warm session's skeleton in place (concretize.Session.Extend): new
// clauses for the delta's candidates, widened constraints for touched
// names, and invalidation scoped to the cache entries whose reachable set
// the delta intersects — answers for untouched request shapes keep being
// served from cache. It returns the new epoch; on a validation error
// nothing is mutated. Apply serializes against in-flight Resolves on the
// session lock, so a racing request observes the universe either wholly
// before or wholly after the delta, never in between.
//
// goarxivlint:blocking cancel=none
func (r *SessionResolver) Apply(d *Delta) (Epoch, error) {
	return r.se.Extend(d)
}

// Resolve implements Resolver.
//
// goarxivlint:blocking
func (r *SessionResolver) Resolve(ctx context.Context, req Request) (*Result, error) {
	res, err := r.se.Resolve(ctx, req.Roots, concretize.Options{
		MaxConflicts: req.MaxConflicts,
		Objective:    req.Objective,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Picks: res.Picks, Stats: res.Stats, Config: r.name}, nil
}

// CacheLen exposes the underlying Session's solution-cache size
// (observability for serving tiers).
func (r *SessionResolver) CacheLen() int { return r.se.CacheLen() }

// Epoch returns the universe epoch the resolver's session currently
// serves at (advanced by Apply). Serving tiers qualify coalescing keys
// with it so requests straddling a delta never share an answer.
func (r *SessionResolver) Epoch() Epoch { return r.se.Epoch() }

// EncodingStats returns the session's encoder-coverage counters (lock-free;
// see concretize.Session.EncodingStats). Stats endpoints surface it so
// operators can watch a lazy session's materialized subgraph grow against
// the universe it serves.
func (r *SessionResolver) EncodingStats() EncodingStats { return r.se.EncodingStats() }
