package resolve

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/paper-repo-growth/go-arxiv/internal/concretize"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// PoolResolver shards requests across N identically-configured warm
// Sessions over one shared universe. Where a PortfolioResolver spends N
// solvers on every request to win a latency race, a pool spends one solver
// per request and wins throughput: distinct request shapes solve in
// parallel on distinct shards, and each shard accumulates warm state —
// learnt clauses, saved phases, banked bounds, cached answers, and (under
// SessionOptions.Lazy) a materialized subgraph — for the slice of the
// request space that hashes to it.
//
// Routing is shape-affine with cache-aware stealing. A request's home
// shard is hash(Request.Key()) mod N, so repeats of a shape land on the
// session that already solved it. Before solving, the router probes every
// shard's solution cache (a lock-free peek): any shard that already holds
// the answer serves it regardless of affinity. A cold request whose home
// shard is mid-solve steals an idle shard instead of queuing — trading
// shard warmth for latency — and queues on its home only when every shard
// is busy. The in-flight counters driving those choices are advisory:
// a racing arrival can turn a "steal" into a short queue, which costs
// latency, never correctness.
//
// The universe grows through Apply under the same write barrier the
// portfolio uses, with a stronger liveness contract: a shard whose in-place
// extension fails is rebuilt as a fresh session over the already-grown
// universe (cheap under Lazy: the rebuild encodes nothing until requests
// re-reach their subgraphs) rather than quarantined, so a pool never loses
// serving capacity — it loses one shard's warmth and counts the event in
// PoolStats.Rebuilds.
type PoolResolver struct {
	u    *repo.Universe
	opts SessionOptions

	// mu is the Apply write barrier: Resolve holds it shared (each shard's
	// session lock serializes actual solving), Apply holds it exclusively
	// while broadcasting the delta — or rebuilding a shard — so no request
	// ever observes a half-applied pool.
	//
	// goarxivlint:lock
	mu     sync.RWMutex
	shards []*poolShard

	// epochA mirrors the shared universe's epoch for lock-free reads, so
	// serving tiers can key coalescing on Epoch() without queuing behind an
	// in-flight Apply broadcast.
	//
	// goarxivlint:lockfree
	epochA atomic.Uint64

	// Routing counters; see PoolStats.
	//
	// goarxivlint:lockfree
	hits     atomic.Uint64
	steals   atomic.Uint64
	waits    atomic.Uint64
	rebuilds atomic.Uint64

	// testExtendHook, when set, injects a fault before a shard's Extend
	// during Apply (test-only, mirroring the portfolio's hook: real
	// extension failures require universe corruption).
	testExtendHook func(shard int) error
}

// poolShard is one warm session plus its routing state.
type poolShard struct {
	se *concretize.Session

	// inflight counts requests currently solving (or queued) on this
	// shard; the router reads it lock-free to prefer idle shards.
	//
	// goarxivlint:lockfree
	inflight atomic.Int64
	// served counts requests this shard answered; cacheHits counts the
	// subset answered from its solution cache. Their ratio is the shard's
	// hit rate, exported through PoolStats for the stats endpoint.
	//
	// goarxivlint:lockfree
	served    atomic.Uint64
	cacheHits atomic.Uint64
}

var _ Resolver = (*PoolResolver)(nil)

// NewPoolResolver builds a pool of n identically-configured sessions over
// the universe; n <= 0 selects GOMAXPROCS capped at 8. With opts.Lazy set,
// construction is O(1) per shard regardless of universe size — the
// configuration that makes registry-scale pools practical.
func NewPoolResolver(u *repo.Universe, n int, opts SessionOptions) *PoolResolver {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
	}
	p := &PoolResolver{u: u, opts: opts}
	for i := 0; i < n; i++ {
		p.shards = append(p.shards, &poolShard{se: concretize.NewSession(u, opts)})
	}
	p.epochA.Store(uint64(u.Epoch()))
	return p
}

// NumShards returns the pool width.
func (p *PoolResolver) NumShards() int { return len(p.shards) }

// Apply grows the shared universe by one append-only delta and broadcasts
// it across the shards under the write barrier. The delta is applied to
// the universe exactly once (a validation failure mutates nothing and
// touches no shard). A shard whose in-place extension fails self-heals: it
// is replaced by a fresh session over the already-grown universe — losing
// its warmth, never its capacity — and the event is counted in
// PoolStats.Rebuilds. Apply therefore fails only on delta validation, and
// every shard serves at the returned epoch afterwards.
//
// goarxivlint:blocking cancel=none
func (p *PoolResolver) Apply(d *Delta) (Epoch, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	epoch, err := p.u.Apply(d)
	if err != nil {
		return p.u.Epoch(), err
	}
	p.epochA.Store(uint64(epoch))
	for i, s := range p.shards {
		err := error(nil)
		if p.testExtendHook != nil {
			err = p.testExtendHook(i)
		}
		if err == nil {
			_, err = s.se.Extend(d)
		}
		if err != nil {
			// Self-heal: a fresh session binds the post-delta universe, so
			// it is already at the new epoch and must not replay the delta.
			p.shards[i] = &poolShard{se: concretize.NewSession(p.u, p.opts)}
			p.rebuilds.Add(1)
		}
	}
	return epoch, nil
}

// Epoch returns the epoch of the shared universe, which every shard serves
// at. It reads the atomic mirror, never mu, so per-request coalescing keys
// never queue behind an Apply broadcast.
//
// goarxivlint:lockfree
func (p *PoolResolver) Epoch() Epoch {
	return Epoch(p.epochA.Load())
}

// shapeShard maps a request-shape key onto a home shard (FNV-1a).
func shapeShard(key string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}

// route picks the shard to serve a request with the given shape key:
// any shard already holding the answer (home first), else the idle home,
// else an idle shard to steal, else the busy home. Returns whether the
// choice left the home shard (a steal) and whether the target's cache
// held the answer at probe time. Callers hold p.mu shared.
func (p *PoolResolver) route(home int, key string) (shard int, stolen, cached bool) {
	if p.shards[home].se.HasCached(key) {
		return home, false, true
	}
	for i, s := range p.shards {
		if i != home && s.se.HasCached(key) {
			return i, true, true
		}
	}
	if p.shards[home].inflight.Load() == 0 {
		return home, false, false
	}
	for i, s := range p.shards {
		if i != home && s.inflight.Load() == 0 {
			return i, true, false
		}
	}
	return home, false, false
}

// Resolve implements Resolver: it routes the request to one shard —
// shape-affine, cache-aware, stealing idle capacity — and solves there.
// Result.Config names the serving shard ("pool/3").
//
// goarxivlint:blocking
func (p *PoolResolver) Resolve(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(p.shards) == 0 {
		return nil, fmt.Errorf("resolve: pool has no shards")
	}
	key := req.Key()
	// Shared-mode barrier against Apply: requests proceed concurrently
	// with each other, never interleaved with a half-broadcast delta.
	p.mu.RLock()
	defer p.mu.RUnlock()
	home := shapeShard(key, len(p.shards))
	idx, stolen, cached := p.route(home, key)
	s := p.shards[idx]
	if cached {
		p.hits.Add(1)
	} else if s.inflight.Load() > 0 {
		p.waits.Add(1)
	}
	if stolen {
		p.steals.Add(1)
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	res, err := s.se.Resolve(ctx, req.Roots, concretize.Options{
		MaxConflicts: req.MaxConflicts,
		Objective:    req.Objective,
	})
	if err != nil {
		return nil, err
	}
	s.served.Add(1)
	if res.Stats.SolutionCacheHit {
		s.cacheHits.Add(1)
	}
	return &Result{Picks: res.Picks, Stats: res.Stats, Config: fmt.Sprintf("pool/%d", idx)}, nil
}

// ShardStats reports one shard's serving state: how much it has answered,
// how much of that came from its solution cache, and how much of the
// universe its solver formula actually carries (the lazy-encoder coverage
// counters).
type ShardStats struct {
	// Served counts successfully answered requests; CacheHits the subset
	// served from this shard's solution cache.
	Served    uint64
	CacheHits uint64
	// Inflight is the number of requests solving or queued on this shard
	// at snapshot time.
	Inflight int64
	// Encoding is the shard session's encoder-coverage snapshot.
	Encoding EncodingStats
}

// PoolStats is a point-in-time snapshot of the pool's routing behavior.
type PoolStats struct {
	// Shards is the pool width.
	Shards int
	// Hits counts requests routed to a shard that already held the answer
	// (home or stolen); Steals requests served off their home shard;
	// Waits requests that queued behind an in-flight solve; Rebuilds
	// shards replaced after a failed Apply extension.
	Hits     uint64
	Steals   uint64
	Waits    uint64
	Rebuilds uint64
	// Shard holds per-shard counters, in shard order.
	Shard []ShardStats
}

// Stats snapshots the pool's routing and per-shard counters. It holds the
// barrier shared only long enough to read atomics — never a session lock —
// so stats endpoints can poll it on every scrape.
func (p *PoolResolver) Stats() PoolStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := PoolStats{
		Shards:   len(p.shards),
		Hits:     p.hits.Load(),
		Steals:   p.steals.Load(),
		Waits:    p.waits.Load(),
		Rebuilds: p.rebuilds.Load(),
	}
	for _, s := range p.shards {
		st.Shard = append(st.Shard, ShardStats{
			Served:    s.served.Load(),
			CacheHits: s.cacheHits.Load(),
			Inflight:  s.inflight.Load(),
			Encoding:  s.se.EncodingStats(),
		})
	}
	return st
}

// CacheLen returns the total number of memoized resolutions across the
// pool's shards (observability for serving tiers).
func (p *PoolResolver) CacheLen() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, s := range p.shards {
		n += s.se.CacheLen()
	}
	return n
}
