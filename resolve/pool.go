package resolve

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/concretize"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
)

// PoolResolver shards requests across N identically-configured warm
// Sessions over one shared universe. Where a PortfolioResolver spends N
// solvers on every request to win a latency race, a pool spends one solver
// per request and wins throughput: distinct request shapes solve in
// parallel on distinct shards, and each shard accumulates warm state —
// learnt clauses, saved phases, banked bounds, cached answers, and (under
// SessionOptions.Lazy) a materialized subgraph — for the slice of the
// request space that hashes to it.
//
// Routing is shape-affine with cache-aware stealing. A request's home
// shard is hash(Request.Key()) mod N, so repeats of a shape land on the
// session that already solved it. Before solving, the router probes every
// shard's solution cache (a lock-free peek): any shard that already holds
// the answer serves it regardless of affinity. A cold request whose home
// shard is mid-solve steals an idle shard instead of queuing — trading
// shard warmth for latency — and queues on its home only when every shard
// is busy. The in-flight counters driving those choices are advisory:
// a racing arrival can turn a "steal" into a short queue, which costs
// latency, never correctness.
//
// The universe grows through Apply under the same write barrier the
// portfolio uses, with a stronger liveness contract: a shard whose in-place
// extension fails is rebuilt as a fresh session over the already-grown
// universe (cheap under Lazy: the rebuild encodes nothing until requests
// re-reach their subgraphs) rather than quarantined, so a pool never loses
// serving capacity — it loses one shard's warmth and counts the event in
// PoolStats.Rebuilds.
//
// Failure is contained the same way the portfolio contains it: a shard
// that panics mid-solve is marked broken (excluded from routing, the
// request fails with the contained *PanicError), healed with a fresh
// session at the next Apply or Resolve entry, and sticky-benched by the
// crashloop detector when it keeps crashing.
type PoolResolver struct {
	u    *repo.Universe
	opts SessionOptions

	// mu is the Apply write barrier: Resolve holds it shared (each shard's
	// session lock serializes actual solving), Apply holds it exclusively
	// while broadcasting the delta — or rebuilding a shard — so no request
	// ever observes a half-applied pool.
	//
	// goarxivlint:lock
	mu     sync.RWMutex
	shards []*poolShard

	// epochA mirrors the shared universe's epoch for lock-free reads, so
	// serving tiers can key coalescing on Epoch() without queuing behind an
	// in-flight Apply broadcast.
	//
	// goarxivlint:lockfree
	epochA atomic.Uint64

	// healNeeded flags that some shard broke under the shared side of the
	// barrier (a solve panic) and waits for a heal; Resolve checks it
	// lock-free on entry.
	//
	// goarxivlint:lockfree
	healNeeded atomic.Bool

	// Routing counters; see PoolStats.
	//
	// goarxivlint:lockfree
	hits     atomic.Uint64
	steals   atomic.Uint64
	waits    atomic.Uint64
	rebuilds atomic.Uint64
	panics   atomic.Uint64

	// Crashloop policy; zero values select the package defaults. Written
	// only through SetCrashLoopPolicy (write barrier), read under mu.
	crashMaxRebuilds int
	crashWindow      time.Duration
}

// poolShard is one warm session plus its routing state.
type poolShard struct {
	se *concretize.Session

	// inflight counts requests currently solving (or queued) on this
	// shard; the router reads it lock-free to prefer idle shards.
	//
	// goarxivlint:lockfree
	inflight atomic.Int64
	// served counts requests this shard answered; cacheHits counts the
	// subset answered from its solution cache. Their ratio is the shard's
	// hit rate, exported through PoolStats for the stats endpoint.
	//
	// goarxivlint:lockfree
	served    atomic.Uint64
	cacheHits atomic.Uint64

	// broken, when non-nil, excludes the shard from routing until a heal
	// replaces it. Stored atomically because the panic-containment path
	// runs under the shared side of the barrier; every other writer holds
	// mu exclusively.
	//
	// goarxivlint:lockfree
	broken atomic.Pointer[benchState]

	// rebuilds timestamps recent heal attempts — the crashloop sliding
	// window, inherited across shard replacements. Guarded by mu held
	// exclusively.
	rebuilds []time.Time
}

var _ Resolver = (*PoolResolver)(nil)

// NewPoolResolver builds a pool of n identically-configured sessions over
// the universe; n <= 0 selects GOMAXPROCS capped at 8. With opts.Lazy set,
// construction is O(1) per shard regardless of universe size — the
// configuration that makes registry-scale pools practical.
func NewPoolResolver(u *repo.Universe, n int, opts SessionOptions) *PoolResolver {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
	}
	p := &PoolResolver{u: u, opts: opts}
	for i := 0; i < n; i++ {
		p.shards = append(p.shards, &poolShard{se: concretize.NewSession(u, opts)})
	}
	p.epochA.Store(uint64(u.Epoch()))
	return p
}

// NumShards returns the pool width.
func (p *PoolResolver) NumShards() int { return len(p.shards) }

// SetCrashLoopPolicy tunes the crashloop detector: a shard healed more
// than maxRebuilds times inside window is sticky-benched (capacity loss!)
// instead of rebuilt again. Zero (or negative) values select the defaults
// (3 rebuilds in 30s). Takes the write barrier; call before or between
// serving, not per request.
//
// goarxivlint:blocking cancel=none
func (p *PoolResolver) SetCrashLoopPolicy(maxRebuilds int, window time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashMaxRebuilds = maxRebuilds
	p.crashWindow = window
}

// Apply grows the shared universe by one append-only delta and broadcasts
// it across the shards under the write barrier. The delta is applied to
// the universe exactly once (a validation failure mutates nothing and
// touches no shard). A shard whose in-place extension fails — or panics,
// which the broadcast contains — self-heals: it is replaced by a fresh
// session over the already-grown universe, losing its warmth, never its
// capacity, and the event is counted in PoolStats.Rebuilds. Apply
// therefore fails only on delta validation, and every non-sticky shard
// serves at the returned epoch afterwards (a crashlooping shard stays
// benched; see SetCrashLoopPolicy and Rebuild).
//
// goarxivlint:blocking cancel=none
func (p *PoolResolver) Apply(d *Delta) (Epoch, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	epoch, err := p.u.Apply(d)
	if err != nil {
		return p.u.Epoch(), err
	}
	p.epochA.Store(uint64(epoch))
	for _, s := range p.shards {
		if s.broken.Load() != nil {
			// Already broken (a contained solve panic): the heal below
			// re-encodes from the post-delta universe, so the delta need
			// not be replayed into a session about to be discarded.
			continue
		}
		if err := p.extendShard(s, d); err != nil {
			s.broken.Store(&benchState{err: err, panics: isContainedPanic(err)})
		}
	}
	p.healBrokenLocked()
	return epoch, nil
}

// extendShard extends one shard's skeleton with panic containment,
// mirroring the portfolio's broadcast.
func (p *PoolResolver) extendShard(s *poolShard, d *Delta) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Op: "pool/extend", Value: fmt.Sprint(rec), Stack: debug.Stack()}
		}
	}()
	_, err = s.se.Extend(d)
	return err
}

// Rebuild force-heals every broken shard — the operator override, also
// resetting sticky (crashlooping) shards' windows the automatic paths
// respect — and returns the healed shard names ("pool/2"). Nil when
// nothing was broken.
//
// goarxivlint:blocking cancel=none
func (p *PoolResolver) Rebuild() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var healed []string
	for i, s := range p.shards {
		b := s.broken.Load()
		if b == nil {
			continue
		}
		if b.sticky {
			s.rebuilds = s.rebuilds[:0]
		}
		if p.healShardLocked(i, b) {
			healed = append(healed, fmt.Sprintf("pool/%d", i))
		}
	}
	return healed
}

// healBroken is the Resolve-entry heal: takes the write barrier and
// rebuilds every broken, non-sticky shard.
//
// goarxivlint:blocking cancel=none
func (p *PoolResolver) healBroken() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.healBrokenLocked()
}

// healBrokenLocked rebuilds every broken, non-sticky shard, crashloop-
// bounded. Callers hold mu exclusively.
func (p *PoolResolver) healBrokenLocked() {
	pending := false
	for i, s := range p.shards {
		b := s.broken.Load()
		if b == nil || b.sticky {
			continue
		}
		p.healShardLocked(i, b)
		if nb := p.shards[i].broken.Load(); nb != nil && !nb.sticky {
			pending = true
		}
	}
	p.healNeeded.Store(pending)
}

// healShardLocked attempts one contained rebuild of a broken shard,
// counting the attempt against the crashloop window: over budget, the
// shard goes sticky — a real capacity loss, reported through Stats, that
// only an explicit Rebuild undoes. The replacement shard inherits the
// window so a crashloop cannot reset itself by being rebuilt. Callers
// hold mu exclusively.
func (p *PoolResolver) healShardLocked(i int, b *benchState) bool {
	s := p.shards[i]
	maxRebuilds, window := crashPolicy(p.crashMaxRebuilds, p.crashWindow)
	now := time.Now()
	var over bool
	s.rebuilds, over = crashWindowTrim(s.rebuilds, now, window, maxRebuilds)
	if over {
		s.broken.Store(&benchState{
			err:    fmt.Errorf("resolve: pool shard %d crashlooping (%d rebuilds in %v): %w", i, len(s.rebuilds), window, b.err),
			panics: b.panics,
			sticky: true,
		})
		return false
	}
	s.rebuilds = append(s.rebuilds, now)
	fresh := &poolShard{rebuilds: s.rebuilds}
	if err := p.rebuildShardSession(i, fresh); err != nil {
		s.broken.Store(&benchState{err: err, panics: true})
		return false
	}
	p.shards[i] = fresh
	p.rebuilds.Add(1)
	return true
}

// rebuildShardSession encodes the replacement session with panic
// containment: a rebuild that panics burns one crashloop attempt instead
// of taking down the Apply or Resolve that triggered the heal.
func (p *PoolResolver) rebuildShardSession(i int, fresh *poolShard) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Op: "pool/rebuild/" + strconv.Itoa(i), Value: fmt.Sprint(rec), Stack: debug.Stack()}
		}
	}()
	if err := fpPoolRebuild.Inject(strconv.Itoa(i)); err != nil {
		return err
	}
	fresh.se = concretize.NewSession(p.u, p.opts)
	return nil
}

// Epoch returns the epoch of the shared universe, which every shard serves
// at. It reads the atomic mirror, never mu, so per-request coalescing keys
// never queue behind an Apply broadcast.
//
// goarxivlint:lockfree
func (p *PoolResolver) Epoch() Epoch {
	return Epoch(p.epochA.Load())
}

// shapeShard maps a request-shape key onto a home shard (FNV-1a).
func shapeShard(key string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}

// route picks the shard to serve a request with the given shape key:
// any healthy shard already holding the answer (home first), else the
// idle home, else an idle shard to steal, else the busy home — falling
// back to any healthy shard when the home is broken, and reporting
// ok=false when every shard is broken. Returns whether the choice left
// the home shard (a steal) and whether the target's cache held the answer
// at probe time. Callers hold p.mu shared.
func (p *PoolResolver) route(home int, key string) (shard int, stolen, cached, ok bool) {
	healthy := func(i int) bool { return p.shards[i].broken.Load() == nil }
	if healthy(home) && p.shards[home].se.HasCached(key) {
		return home, false, true, true
	}
	for i, s := range p.shards {
		if i != home && healthy(i) && s.se.HasCached(key) {
			return i, true, true, true
		}
	}
	if healthy(home) && p.shards[home].inflight.Load() == 0 {
		return home, false, false, true
	}
	for i, s := range p.shards {
		if i != home && healthy(i) && s.inflight.Load() == 0 {
			return i, true, false, true
		}
	}
	if healthy(home) {
		return home, false, false, true
	}
	for i := range p.shards {
		if healthy(i) {
			return i, true, false, true
		}
	}
	return 0, false, false, false
}

// Resolve implements Resolver: it routes the request to one shard —
// shape-affine, cache-aware, stealing idle capacity — and solves there.
// Result.Config names the serving shard ("pool/3"). A shard that panics
// mid-solve is contained: the request fails with the *PanicError, the
// shard is excluded from routing and healed (fresh session) at the next
// Apply or Resolve entry. With every shard broken — only reachable
// through sticky crashloop benches — Resolve fail-stops with
// ErrNoActiveMembers.
//
// goarxivlint:blocking
func (p *PoolResolver) Resolve(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(p.shards) == 0 {
		return nil, fmt.Errorf("resolve: pool has no shards")
	}
	if p.healNeeded.Load() {
		p.healBroken()
	}
	key := req.Key()
	// Shared-mode barrier against Apply: requests proceed concurrently
	// with each other, never interleaved with a half-broadcast delta.
	p.mu.RLock()
	defer p.mu.RUnlock()
	home := shapeShard(key, len(p.shards))
	idx, stolen, cached, ok := p.route(home, key)
	if !ok {
		return nil, ErrNoActiveMembers
	}
	s := p.shards[idx]
	if cached {
		p.hits.Add(1)
	} else if s.inflight.Load() > 0 {
		p.waits.Add(1)
	}
	if stolen {
		p.steals.Add(1)
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	res, err := p.solveShard(ctx, idx, s, req)
	if err != nil {
		return nil, err
	}
	s.served.Add(1)
	if res.Stats.SolutionCacheHit {
		s.cacheHits.Add(1)
	}
	return &Result{Picks: res.Picks, Stats: res.Stats, Config: fmt.Sprintf("pool/%d", idx)}, nil
}

// solveShard runs one shard's solve with panic containment: a panicking
// shard is marked broken — excluded from routing, healed at the next
// Apply or Resolve entry — and the request fails with the contained
// *PanicError rather than crashing the daemon.
func (p *PoolResolver) solveShard(ctx context.Context, idx int, s *poolShard, req Request) (res *concretize.Resolution, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			perr := &PanicError{Op: "pool/" + strconv.Itoa(idx), Value: fmt.Sprint(rec), Stack: debug.Stack()}
			s.broken.Store(&benchState{err: perr, panics: true})
			p.panics.Add(1)
			p.healNeeded.Store(true)
			res, err = nil, perr
		}
	}()
	if err := fpPoolSolve.Inject(strconv.Itoa(idx)); err != nil {
		return nil, err
	}
	return s.se.Resolve(ctx, req.Roots, concretize.Options{
		MaxConflicts: req.MaxConflicts,
		Objective:    req.Objective,
	})
}

// ShardStats reports one shard's serving state: how much it has answered,
// how much of that came from its solution cache, and how much of the
// universe its solver formula actually carries (the lazy-encoder coverage
// counters).
type ShardStats struct {
	// Served counts successfully answered requests; CacheHits the subset
	// served from this shard's solution cache.
	Served    uint64
	CacheHits uint64
	// Inflight is the number of requests solving or queued on this shard
	// at snapshot time.
	Inflight int64
	// Broken marks a shard excluded from routing (contained panic or
	// failed rebuild); CrashLoop marks the sticky subset that exhausted
	// the rebuild budget.
	Broken    bool
	CrashLoop bool
	// Encoding is the shard session's encoder-coverage snapshot.
	Encoding EncodingStats
}

// PoolStats is a point-in-time snapshot of the pool's routing behavior.
type PoolStats struct {
	// Shards is the pool width.
	Shards int
	// Hits counts requests routed to a shard that already held the answer
	// (home or stolen); Steals requests served off their home shard;
	// Waits requests that queued behind an in-flight solve; Rebuilds
	// shards replaced after a failed Apply extension or a contained
	// panic; Panics panics contained at the solve boundary; Broken shards
	// currently out of routing.
	Hits     uint64
	Steals   uint64
	Waits    uint64
	Rebuilds uint64
	Panics   uint64
	Broken   int
	// Shard holds per-shard counters, in shard order.
	Shard []ShardStats
}

// Stats snapshots the pool's routing and per-shard counters. It holds the
// barrier shared only long enough to read atomics — never a session lock —
// so stats endpoints can poll it on every scrape.
func (p *PoolResolver) Stats() PoolStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := PoolStats{
		Shards:   len(p.shards),
		Hits:     p.hits.Load(),
		Steals:   p.steals.Load(),
		Waits:    p.waits.Load(),
		Rebuilds: p.rebuilds.Load(),
		Panics:   p.panics.Load(),
	}
	for _, s := range p.shards {
		ss := ShardStats{
			Served:    s.served.Load(),
			CacheHits: s.cacheHits.Load(),
			Inflight:  s.inflight.Load(),
			Encoding:  s.se.EncodingStats(),
		}
		if b := s.broken.Load(); b != nil {
			ss.Broken = true
			ss.CrashLoop = b.sticky
			st.Broken++
		}
		st.Shard = append(st.Shard, ss)
	}
	return st
}

// CacheLen returns the total number of memoized resolutions across the
// pool's shards (observability for serving tiers).
func (p *PoolResolver) CacheLen() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, s := range p.shards {
		n += s.se.CacheLen()
	}
	return n
}
