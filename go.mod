module github.com/paper-repo-growth/go-arxiv

go 1.24
