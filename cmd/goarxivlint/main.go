// Command goarxivlint runs the project's analyzer suite (see
// internal/analysis) over the named packages — default ./... — and exits
// nonzero if any analyzer reports a finding. It is the blocking lint gate
// behind `make lint`.
//
// Usage:
//
//	goarxivlint [packages]
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/paper-repo-growth/go-arxiv/internal/analysis"
	"github.com/paper-repo-growth/go-arxiv/internal/analysis/ctxthread"
	"github.com/paper-repo-growth/go-arxiv/internal/analysis/errtaxonomy"
	"github.com/paper-repo-growth/go-arxiv/internal/analysis/lockheldcall"
	"github.com/paper-repo-growth/go-arxiv/internal/analysis/slicereturn"
)

// suite is the full analyzer set goarxivlint enforces.
var suite = []*analysis.Analyzer{
	lockheldcall.Analyzer,
	errtaxonomy.Analyzer,
	slicereturn.Analyzer,
	ctxthread.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goarxivlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(prog, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goarxivlint: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
