package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/faultpoint"
	"github.com/paper-repo-growth/go-arxiv/resolve"
	"github.com/paper-repo-growth/go-arxiv/serve"
)

// runDoctor self-checks the stack: each synthetic family resolves through
// each backend with a verified optimal answer, the daemon's HTTP surface
// round-trips a resolve/apply/stats cycle, and duplicate in-flight
// requests coalesce. Exit status is the diagnosis.
func runDoctor(args []string) error {
	fs := flag.NewFlagSet("doctor", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}

	failures := 0
	check := func(name string, err error) {
		if err != nil {
			failures++
			fmt.Printf("FAIL  %-34s %v\n", name, err)
			return
		}
		fmt.Printf("ok    %s\n", name)
	}

	for _, family := range []string{"dense", "diamond", "chain", "virtual", "conditional", "registry"} {
		for _, backend := range []string{"session", "portfolio", "pool"} {
			check(family+"/"+backend, checkResolve(family, backend))
		}
	}
	check("daemon/http-roundtrip", checkDaemon())
	check("daemon/coalescing", checkCoalescing())
	check("lazy/coverage", checkLazyCoverage())
	check("pool/routing", checkPoolRouting())
	check("daemon/degraded-mode", checkDegradedMode())
	check("portfolio/crashloop", checkCrashLoop())

	if failures > 0 {
		return fmt.Errorf("%d check(s) failed", failures)
	}
	fmt.Println("all checks passed")
	return nil
}

// checkResolve resolves a family's root twice (cold, then warm) and
// demands optimal answers and a warm cache hit.
func checkResolve(family, backend string) error {
	u, root, err := buildUniverse(family, 8, 4)
	if err != nil {
		return err
	}
	b, err := buildBackend(backend, u, false, 0)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := resolve.Request{Roots: []resolve.Root{{Pkg: root}}}
	res, err := b.Resolve(ctx, req)
	if err != nil {
		return err
	}
	if !res.Stats.Optimal || len(res.Picks) == 0 {
		return fmt.Errorf("cold answer not optimal (%d picks)", len(res.Picks))
	}
	res2, err := b.Resolve(ctx, req)
	if err != nil {
		return err
	}
	if res2.Stats.Cost != res.Stats.Cost {
		return fmt.Errorf("warm cost %d != cold cost %d", res2.Stats.Cost, res.Stats.Cost)
	}
	return nil
}

// checkDaemon runs a resolve -> apply -> resolve -> stats cycle over the
// real HTTP surface.
// checkLazyCoverage serves a registry-family universe through a lazy
// session and demands (a) the answer is optimal, (b) the solver carries
// only the reached subgraph — the encoder counters /v1/stats exposes must
// show materialized packages strictly below the universe size.
func checkLazyCoverage() error {
	u, root, _ := buildUniverse("registry", 2000, 12)
	b, _ := buildBackend("session", u, true, 0)
	ts := httptest.NewServer(serve.New(b, serve.Options{}))
	defer ts.Close()

	var rr serve.ResolveResponse
	if err := postJSON(ts.URL+"/v1/resolve", serve.ResolveRequest{Roots: []string{root}}, &rr); err != nil {
		return err
	}
	if !rr.Optimal || len(rr.Picks) == 0 {
		return fmt.Errorf("resolve: %d picks, optimal=%v", len(rr.Picks), rr.Optimal)
	}
	var st serve.ServerStats
	if err := getJSON(ts.URL+"/v1/stats", &st); err != nil {
		return err
	}
	enc := st.Encoding
	switch {
	case enc == nil:
		return fmt.Errorf("stats: no encoding counters from session backend")
	case !enc.Lazy:
		return fmt.Errorf("stats: backend not lazy")
	case enc.UniversePackages != 2000:
		return fmt.Errorf("stats: universe %d packages, want 2000", enc.UniversePackages)
	case enc.MaterializedPackages == 0 || enc.MaterializedPackages >= enc.UniversePackages/2:
		return fmt.Errorf("stats: materialized %d of %d packages — not lazy enough",
			enc.MaterializedPackages, enc.UniversePackages)
	case enc.SolverVars == 0:
		return fmt.Errorf("stats: zero solver vars after a resolve")
	}
	return nil
}

// checkPoolRouting serves duplicate requests through a lazy pool and
// demands shape-affine routing: the repeat must hit the warm shard's
// cache, and /v1/stats must expose the per-shard counters.
func checkPoolRouting() error {
	u, root, _ := buildUniverse("registry", 1000, 8)
	b, _ := buildBackend("pool", u, true, 4)
	ts := httptest.NewServer(serve.New(b, serve.Options{}))
	defer ts.Close()

	req := serve.ResolveRequest{Roots: []string{root}}
	for i := 0; i < 2; i++ {
		var rr serve.ResolveResponse
		if err := postJSON(ts.URL+"/v1/resolve", req, &rr); err != nil {
			return err
		}
		if !rr.Optimal {
			return fmt.Errorf("request %d: not optimal", i)
		}
	}
	var st serve.ServerStats
	if err := getJSON(ts.URL+"/v1/stats", &st); err != nil {
		return err
	}
	pool := st.Pool
	switch {
	case pool == nil:
		return fmt.Errorf("stats: no pool counters from pool backend")
	case pool.Shards != 4:
		return fmt.Errorf("stats: %d shards, want 4", pool.Shards)
	case pool.Hits < 1:
		return fmt.Errorf("stats: repeat request missed the warm shard (hits=%d)", pool.Hits)
	}
	served, hits := uint64(0), uint64(0)
	for _, sh := range pool.Shard {
		served += sh.Served
		hits += sh.CacheHits
	}
	if served != 2 || hits < 1 {
		return fmt.Errorf("stats: shard counters served=%d cache_hits=%d, want 2/>=1", served, hits)
	}
	return nil
}

// checkDegradedMode verifies the stale-answer degraded path end to end:
// with the backend failing (an armed faultpoint at the serving boundary),
// a previously-answered shape must still get a 200 — marked degraded and
// stamped with the epoch it was computed at — and once the fault clears,
// answers must be fresh again with the degraded counter recording the
// episode.
func checkDegradedMode() error {
	defer faultpoint.DisarmAll()
	u, root, _ := buildUniverse("diamond", 4, 3)
	b, _ := buildBackend("session", u, false, 0)
	ts := httptest.NewServer(serve.New(b, serve.Options{MaxRetries: -1}))
	defer ts.Close()

	req := serve.ResolveRequest{Roots: []string{root}}
	var warm serve.ResolveResponse
	if err := postJSON(ts.URL+"/v1/resolve", req, &warm); err != nil {
		return fmt.Errorf("warm resolve: %w", err)
	}
	if warm.Degraded {
		return fmt.Errorf("warm resolve already degraded")
	}
	// Advance the universe so the stale answer's epoch is genuinely old.
	var ar serve.ApplyResponse
	delta := serve.ApplyRequest{Adds: []serve.VersionAddRequest{{Pkg: "base", Version: "99.0"}}}
	if err := postJSON(ts.URL+"/v1/apply", delta, &ar); err != nil {
		return fmt.Errorf("apply: %w", err)
	}
	if err := faultpoint.Arm("serve/backend/resolve",
		faultpoint.Any(faultpoint.Error(0, nil))); err != nil {
		return err
	}
	var stale serve.ResolveResponse
	if err := postJSON(ts.URL+"/v1/resolve", req, &stale); err != nil {
		return fmt.Errorf("faulted resolve: %w", err)
	}
	if !stale.Degraded || stale.Epoch != warm.Epoch {
		return fmt.Errorf("faulted resolve: degraded=%v epoch=%d, want stale answer at epoch %d",
			stale.Degraded, stale.Epoch, warm.Epoch)
	}
	faultpoint.DisarmAll()
	var fresh serve.ResolveResponse
	if err := postJSON(ts.URL+"/v1/resolve", req, &fresh); err != nil {
		return fmt.Errorf("recovered resolve: %w", err)
	}
	if fresh.Degraded || fresh.Epoch != ar.Epoch {
		return fmt.Errorf("recovered resolve: degraded=%v epoch=%d, want fresh epoch %d",
			fresh.Degraded, fresh.Epoch, ar.Epoch)
	}
	var st serve.ServerStats
	if err := getJSON(ts.URL+"/v1/stats", &st); err != nil {
		return err
	}
	if st.Degraded < 1 {
		return fmt.Errorf("stats: degraded counter = %d, want >= 1", st.Degraded)
	}
	return nil
}

// checkCrashLoop drives one portfolio member into a panic loop (solve and
// rebuild both panicking via faultpoints) under a tight crashloop policy
// and demands (a) every request still succeeds off the survivors, (b) the
// member lands in the sticky CrashLoop state instead of rebuild-thrashing,
// and (c) an explicit operator Rebuild restores it once the fault clears.
func checkCrashLoop() error {
	defer faultpoint.DisarmAll()
	u, root, _ := buildUniverse("diamond", 4, 3)
	p, err := resolve.NewPortfolioResolver(u)
	if err != nil {
		return err
	}
	p.SetCrashLoopPolicy(2, time.Hour)
	if err := faultpoint.Arm("resolve/portfolio/solve",
		faultpoint.On("dive", faultpoint.Panic(0, "doctor crashloop solve"))); err != nil {
		return err
	}
	if err := faultpoint.Arm("resolve/portfolio/rebuild",
		faultpoint.On("dive", faultpoint.Panic(0, "doctor crashloop rebuild"))); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := resolve.Request{Roots: []resolve.Root{{Pkg: root}}}
	sticky := false
	for i := 0; i < 8 && !sticky; i++ {
		if _, err := p.Resolve(ctx, req); err != nil {
			return fmt.Errorf("resolve %d should have survived on healthy members: %w", i, err)
		}
		for _, h := range p.Health() {
			if h.Name == "dive" && h.CrashLoop {
				sticky = true
			}
		}
	}
	if !sticky {
		return fmt.Errorf("dive never went sticky after repeated contained panics")
	}
	faultpoint.DisarmAll()
	healed := p.Rebuild()
	if len(healed) != 1 || healed[0] != "dive" {
		return fmt.Errorf("rebuild healed %v, want [dive]", healed)
	}
	for _, h := range p.Health() {
		if h.Quarantined {
			return fmt.Errorf("member %s still benched after rebuild: %v", h.Name, h.Err)
		}
	}
	return nil
}

func checkDaemon() error {
	u, root, _ := buildUniverse("diamond", 4, 3)
	b, _ := buildBackend("session", u, false, 0)
	ts := httptest.NewServer(serve.New(b, serve.Options{}))
	defer ts.Close()

	var rr serve.ResolveResponse
	if err := postJSON(ts.URL+"/v1/resolve", serve.ResolveRequest{Roots: []string{root}}, &rr); err != nil {
		return err
	}
	if len(rr.Picks) == 0 || !rr.Optimal {
		return fmt.Errorf("resolve: %d picks, optimal=%v", len(rr.Picks), rr.Optimal)
	}
	var ar serve.ApplyResponse
	delta := serve.ApplyRequest{Adds: []serve.VersionAddRequest{{Pkg: "base", Version: "99.0"}}}
	if err := postJSON(ts.URL+"/v1/apply", delta, &ar); err != nil {
		return err
	}
	if ar.Epoch != 1 {
		return fmt.Errorf("apply: epoch %d, want 1", ar.Epoch)
	}
	var st serve.ServerStats
	if err := getJSON(ts.URL+"/v1/stats", &st); err != nil {
		return err
	}
	if st.Requests < 1 || st.Epoch != 1 || st.Applies != 1 {
		return fmt.Errorf("stats: requests=%d epoch=%d applies=%d", st.Requests, st.Epoch, st.Applies)
	}
	return nil
}

// checkCoalescing fires waves of duplicate concurrent requests on a
// cache-disabled backend and demands the coalesce counter caught
// duplicates. A single wave can legitimately miss (the leader may publish
// before any follower's request arrives — coalescing collapses *overlap*,
// and overlap is timing), so the check runs waves over pooled connections
// until duplicates collide; the exact-count contract is pinned
// deterministically in serve's -race tests.
func checkCoalescing() error {
	u, root, _ := buildUniverse("dense", 64, 8)
	b := resolve.NewSessionResolver(u, resolve.SessionOptions{CacheSize: -1})
	ts := httptest.NewServer(serve.New(b, serve.Options{}))
	defer ts.Close()

	const n = 16
	for wave := 0; wave < 50; wave++ {
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				var rr serve.ResolveResponse
				errs[i] = postJSON(ts.URL+"/v1/resolve", serve.ResolveRequest{Roots: []string{root}}, &rr)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		var st serve.ServerStats
		if err := getJSON(ts.URL+"/v1/stats", &st); err != nil {
			return err
		}
		if st.Coalesced >= 1 {
			return nil
		}
	}
	return fmt.Errorf("no coalescing across 50 waves of %d duplicate requests", n)
}

func postJSON(url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er serve.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		return fmt.Errorf("POST %s: %d %s (%s)", url, resp.StatusCode, er.Kind, er.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
