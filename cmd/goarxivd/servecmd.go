package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/paper-repo-growth/go-arxiv/serve"
)

// runServe starts the daemon over a synthetic universe and blocks until
// SIGINT/SIGTERM, then drains connections gracefully.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	family := fs.String("family", "dense", "synthetic universe family (dense|diamond|chain|virtual|conditional|registry)")
	pkgs := fs.Int("pkgs", 40, "family size (packages / width / length / virtuals)")
	vers := fs.Int("vers", 8, "versions per package")
	backend := fs.String("backend", "portfolio", "resolver backend (session|portfolio|pool)")
	lazy := fs.Bool("lazy", false, "materialize clauses on first reach instead of encoding the whole universe up front (registry-scale)")
	shards := fs.Int("shards", 0, "pool backend width (0: GOMAXPROCS capped at 8)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrent backend solves (0: GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "max queued leaders before 429 (0: 4x max-inflight)")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request timeout")
	maxTimeout := fs.Duration("max-timeout", 60*time.Second, "cap on client-requested timeouts")
	if err := fs.Parse(args); err != nil {
		return err
	}

	u, root, err := buildUniverse(*family, *pkgs, *vers)
	if err != nil {
		return err
	}
	b, err := buildBackend(*backend, u, *lazy, *shards)
	if err != nil {
		return err
	}
	s := serve.New(b, serve.Options{
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})

	hs := &http.Server{Addr: *addr, Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	hint := *addr
	if len(hint) > 0 && hint[0] == ':' {
		hint = "localhost" + hint
	}
	fmt.Printf("goarxivd: serving %s/%s (%d pkgs, %d versions) on %s — try:\n", *family, *backend, *pkgs, *vers, *addr)
	fmt.Printf("  curl -s -X POST %s/v1/resolve -d '{\"roots\":[%q]}'\n", hint, root)
	fmt.Printf("  curl -s %s/v1/stats\n", hint)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("goarxivd: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
