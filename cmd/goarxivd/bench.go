package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"github.com/paper-repo-growth/go-arxiv/serve"
)

// runBench storms an in-process daemon with a duplicate-heavy request mix
// — the traffic shape the coalescer exists for — and reports throughput,
// latency percentiles, and how much of the load collapsed onto shared
// solves or the solution cache.
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	n := fs.Int("n", 2000, "total requests")
	c := fs.Int("c", 32, "concurrent clients")
	shapes := fs.Int("shapes", 4, "distinct request shapes (lower = more duplicate traffic)")
	family := fs.String("family", "dense", "synthetic universe family")
	pkgs := fs.Int("pkgs", 40, "family size")
	vers := fs.Int("vers", 8, "versions per package")
	backend := fs.String("backend", "session", "resolver backend (session|portfolio|pool)")
	lazy := fs.Bool("lazy", false, "materialize clauses on first reach (registry-scale)")
	shards := fs.Int("shards", 0, "pool backend width (0: GOMAXPROCS capped at 8)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	u, root, err := buildUniverse(*family, *pkgs, *vers)
	if err != nil {
		return err
	}
	b, err := buildBackend(*backend, u, *lazy, *shards)
	if err != nil {
		return err
	}
	s := serve.New(b, serve.Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Shape i requests the root constrained to versions <= vers-i, so each
	// shape has a distinct answer but all stay satisfiable.
	reqs := make([]serve.ResolveRequest, *shapes)
	for i := range reqs {
		max := *vers - i%*vers
		reqs[i] = serve.ResolveRequest{Roots: []string{fmt.Sprintf("%s@:%d", root, max)}}
	}

	lats := make([]time.Duration, *n)
	var idx sync.Mutex
	next := 0
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				idx.Lock()
				i := next
				next++
				idx.Unlock()
				if i >= *n {
					return
				}
				req := reqs[rng.Intn(len(reqs))]
				t0 := time.Now()
				var rr serve.ResolveResponse
				if err := postJSON(ts.URL+"/v1/resolve", req, &rr); err != nil {
					fmt.Printf("request %d: %v\n", i, err)
				}
				lats[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
	st := s.Stats()
	fmt.Printf("requests      %d in %v (%.0f req/s, %d clients, %d shapes)\n",
		*n, elapsed.Round(time.Millisecond), float64(*n)/elapsed.Seconds(), *c, *shapes)
	fmt.Printf("latency       p50 %v  p90 %v  p99 %v\n", at(0.50), at(0.90), at(0.99))
	fmt.Printf("backend       %d solves, %d coalesced (%.1f%%), %d cache hits (%.1f%%), %d shed\n",
		st.Solves, st.Coalesced, pct(st.Coalesced, st.Requests), st.CacheHits, pct(st.CacheHits, st.Requests), st.Shed)
	return nil
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
