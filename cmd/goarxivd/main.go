// Command goarxivd is the go-arxiv serving daemon and its ops toolbox.
//
// Subcommands:
//
//	serve   start the HTTP daemon over a synthetic universe
//	bench   storm an in-process daemon and report latency/coalescing
//	doctor  run self-checks across the synthetic families and the daemon
//
// Run `goarxivd <subcommand> -h` for flags.
package main

import (
	"fmt"
	"os"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/resolve"
	"github.com/paper-repo-growth/go-arxiv/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "bench":
		err = runBench(os.Args[2:])
	case "doctor":
		err = runDoctor(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "goarxivd: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "goarxivd %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `goarxivd — go-arxiv serving daemon

usage:
  goarxivd serve  [-addr :8080] [-family dense] [-pkgs 40] [-vers 8] [-backend portfolio] [-lazy] [-shards 0] ...
  goarxivd bench  [-n 2000] [-c 32] [-shapes 4] [-lazy] ...
  goarxivd doctor

`)
}

// buildUniverse constructs one of the deterministic synthetic families,
// returning the universe and its canonical root package.
func buildUniverse(family string, pkgs, vers int) (*repo.Universe, string, error) {
	switch family {
	case "dense":
		u, root := repo.SynthDense(pkgs, vers, 3, 42)
		return u, root, nil
	case "diamond":
		u, root := repo.SynthDiamond(pkgs, vers)
		return u, root, nil
	case "chain":
		u, root := repo.SynthChain(pkgs, vers)
		return u, root, nil
	case "virtual":
		u, root := repo.SynthVirtualDiamond(pkgs, 2, vers)
		return u, root, nil
	case "conditional":
		u, root := repo.SynthConditionalChain(pkgs, vers)
		return u, root, nil
	case "registry":
		u, root := repo.SynthRegistry(pkgs, vers)
		return u, root, nil
	default:
		return nil, "", fmt.Errorf("unknown family %q (dense|diamond|chain|virtual|conditional|registry)", family)
	}
}

// buildBackend wires a resolve backend over the universe. lazy selects
// first-reach clause materialization (the registry-scale configuration);
// shards sizes the pool backend (0: GOMAXPROCS capped at 8).
func buildBackend(kind string, u *repo.Universe, lazy bool, shards int) (serve.Backend, error) {
	switch kind {
	case "session":
		return resolve.NewSessionResolver(u, resolve.SessionOptions{Lazy: lazy}), nil
	case "portfolio":
		configs := resolve.DefaultPortfolio()
		for i := range configs {
			configs[i].Options.Lazy = lazy
		}
		return resolve.NewPortfolioResolver(u, configs...)
	case "pool":
		return resolve.NewPoolResolver(u, shards, resolve.SessionOptions{Lazy: lazy}), nil
	default:
		return nil, fmt.Errorf("unknown backend %q (session|portfolio|pool)", kind)
	}
}
