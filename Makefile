GO ?= go
BENCHTIME ?= 0.3s
PR ?= pr6
PREV_PR ?= pr5
BENCH_JSON ?= BENCH_$(PR).json
# The perf-trajectory suite: cold concretization, warm Session paths, and
# the serving-tier portfolio. `make bench` runs it and records the numbers
# in $(BENCH_JSON) so performance is tracked across PRs.
BENCH_PATTERN ?= BenchmarkConcretize|BenchmarkSessionWarm|BenchmarkPortfolio|BenchmarkSessionResolver|BenchmarkSessionChurn|BenchmarkSessionExtend

.PHONY: all build vet fmt test race bench benchdiff fuzz-smoke

all: fmt build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; echo "gofmt: files need formatting"; exit 1; }

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench='$(BENCH_PATTERN)' -benchtime=$(BENCHTIME) -benchmem \
		./internal/concretize/ ./resolve/ | tee .bench_raw.txt
	./scripts/benchjson.sh $(PR) < .bench_raw.txt > $(BENCH_JSON)
	@rm -f .bench_raw.txt
	@echo "wrote $(BENCH_JSON)"

# Per-benchmark ns/op and allocs/op deltas against the previous PR's
# committed trajectory file; exits non-zero when anything regressed >20%.
benchdiff:
	./scripts/benchdiff.sh BENCH_$(PREV_PR).json $(BENCH_JSON)

fuzz-smoke:
	$(GO) test -run=NONE -fuzz='^FuzzParse$$' -fuzztime=20s ./internal/version/
	$(GO) test -run=NONE -fuzz='^FuzzParseRange$$' -fuzztime=20s ./internal/version/
	$(GO) test -run=NONE -fuzz='^FuzzParseRoot$$' -fuzztime=20s ./internal/concretize/
