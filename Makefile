GO ?= go
BENCHTIME ?= 0.3s
PR ?= pr10
PREV_PR ?= pr9
BENCH_JSON ?= BENCH_$(PR).json
# The perf-trajectory suite: cold concretization, warm Session paths, the
# portfolio, the HTTP daemon pipeline, and the registry-scale lazy suite
# (which also reports solver_vars and heap_bytes). `make bench` runs it and
# records the numbers in $(BENCH_JSON) so performance is tracked across PRs.
BENCH_PATTERN ?= BenchmarkConcretize|BenchmarkSessionWarm|BenchmarkPortfolio|BenchmarkSessionResolver|BenchmarkSessionChurn|BenchmarkSessionExtend|BenchmarkDaemon|BenchmarkRegistry

.PHONY: all build vet fmt lint satcheck test race bench benchdiff fuzz-smoke serve-smoke chaos checkbin

all: fmt build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; echo "gofmt: files need formatting"; exit 1; }

# Project-specific static analysis: the goarxivlint suite (lockheldcall,
# errtaxonomy, slicereturn, ctxthread) over the whole module, test variants
# included. Blocking in CI; see internal/analysis/README.md.
lint: vet
	$(GO) run ./cmd/goarxivlint ./...

# The checked solver build: the sat/concretize/resolve/serve suites with
# deep solver-state audits (internal/sat/invariants.go) at every mutating
# entry point.
satcheck:
	$(GO) test -tags satcheck ./internal/... ./resolve/... ./serve/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench='$(BENCH_PATTERN)' -benchtime=$(BENCHTIME) -benchmem \
		./internal/concretize/ ./resolve/ ./serve/ | tee .bench_raw.txt
	./scripts/benchjson.sh $(PR) < .bench_raw.txt > $(BENCH_JSON)
	@rm -f .bench_raw.txt
	@echo "wrote $(BENCH_JSON)"

# Per-benchmark ns/op and allocs/op deltas against the previous PR's
# committed trajectory file; exits non-zero when anything regressed >20%.
benchdiff:
	./scripts/benchdiff.sh BENCH_$(PREV_PR).json $(BENCH_JSON)

# The serving-tier gate: the full serve suite under -race (coalesce storm,
# shed latency, apply roundtrip, follower deadlines) plus the daemon
# doctor's end-to-end self-checks against a live in-process daemon.
serve-smoke:
	$(GO) test -race -count=1 ./serve/
	$(GO) run ./cmd/goarxivd doctor

# The chaos gate: randomized fault schedules (injected errors, latency,
# panics at the faultpoint sites) against live daemons under -race, with a
# fixed seed matrix and a fault-free oracle; see serve/chaos_test.go.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./serve/

# Repository hygiene: fail when any committed file is an executable binary
# (test binaries, compiled tools); see scripts/checkbin.sh.
checkbin:
	./scripts/checkbin.sh

fuzz-smoke:
	$(GO) test -run=NONE -fuzz='^FuzzParse$$' -fuzztime=20s ./internal/version/
	$(GO) test -run=NONE -fuzz='^FuzzParseRange$$' -fuzztime=20s ./internal/version/
	$(GO) test -run=NONE -fuzz='^FuzzParseRoot$$' -fuzztime=20s ./internal/concretize/
