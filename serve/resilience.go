package serve

// The daemon's resilience layer: panic containment at the backend
// boundary, bounded retry with jittered backoff for transient failures,
// and the stale-answer degraded mode (see lkg.go). The failure taxonomy
// the layer keys on:
//
//   - Definitive answers (unsat, unknown package, budget exhaustion) are
//     never retried and never degraded: the backend answered; the answer
//     is "no".
//   - Caller outcomes (deadline, cancellation) are never retried — the
//     caller is gone — and never degraded past the shed path.
//   - Transient failures (a contained panic, a fully-benched backend, an
//     unexplained member failure, an injected fault) are retried within
//     the request's deadline budget, then degraded if a fresh-enough
//     last-known-good answer exists, then surfaced.

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/faultpoint"
	"github.com/paper-repo-growth/go-arxiv/resolve"
)

// Fault-injection sites at the serving boundary: the backend call a leader
// solve issues, and the Apply broadcast. See internal/faultpoint.
var (
	fpBackendResolve = faultpoint.New("serve/backend/resolve")
	fpBackendApply   = faultpoint.New("serve/backend/apply")
)

// rebuilder is implemented by backends whose benched capacity can be
// force-healed (resolve.PortfolioResolver, resolve.PoolResolver). The
// retry loop invokes it when the backend reports no active members, and
// POST /v1/rebuild exposes it to operators.
type rebuilder interface {
	Rebuild() []string
}

// transient reports whether a resolve failure is worth retrying: the
// backend failed for an internal, plausibly self-healing reason rather
// than answering. Contained panics and a fully-benched backend are
// transient (the retry path rebuilds); so is any remaining member failure
// that does not wrap a definitive answer, and a raw injected fault (which
// simulates exactly this class). Definitive answers and caller outcomes
// are not.
func transient(err error) bool {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return false
	case errors.Is(err, resolve.ErrUnsatisfiable), errors.Is(err, resolve.ErrBudget):
		return false
	}
	var unknown *resolve.UnknownPackageError
	if errors.As(err, &unknown) {
		return false
	}
	var pe *resolve.PanicError
	if errors.As(err, &pe) {
		return true
	}
	if errors.Is(err, resolve.ErrNoActiveMembers) {
		return true
	}
	if errors.Is(err, faultpoint.ErrInjected) {
		return true
	}
	var me *resolve.MemberError
	return errors.As(err, &me)
}

// degradable reports whether a failure may be answered from the
// last-known-good cache: shed requests (the backend is healthy but has no
// capacity for this caller) and transient failures (the backend is
// unhealthy). Definitive answers must never degrade — a stale "yes" would
// contradict a fresh "no".
func degradable(err error) bool {
	return errors.Is(err, errShedQueue) || errors.Is(err, errShedWait) || transient(err)
}

// retryDelay is the jittered exponential backoff for one retry attempt:
// base*2^attempt, +-50%. Jitter keeps a failure wave of coalesced leaders
// from re-converging on the backend in lockstep.
func retryDelay(base time.Duration, attempt int) time.Duration {
	d := base << attempt
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(2*half))
}
