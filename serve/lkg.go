package serve

// The last-known-good cache behind degraded mode: the most recent optimal
// answer per request shape, bounded LRU. When the backend cannot answer —
// every member benched, admission shedding, retries exhausted — the daemon
// serves the cached answer instead of a 5xx, stamped degraded and carrying
// the epoch it was computed at, provided that epoch is within the
// configured staleness bound of the current universe.
//
// The staleness contract is conservative by construction: an entry's epoch
// is the epoch its resolve reported (Stats.Epoch), so the answer was
// exactly right at that epoch. Deltas are append-only, which means a stale
// answer is still a *consistent* resolution of the universe as of its
// epoch — it may miss newer versions, it cannot name things that never
// existed. Callers see exactly how stale through the response epoch.

import (
	"container/list"
	"sync"

	"github.com/paper-repo-growth/go-arxiv/resolve"
)

// lkgCache is a bounded LRU of last-known-good results keyed by request
// shape (resolve.Request.Key). Safe for concurrent use.
type lkgCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	byKey map[string]*list.Element
}

type lkgEntry struct {
	key string
	res *resolve.Result
}

func newLKGCache(capacity int) *lkgCache {
	return &lkgCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// put records the latest good answer for a shape, evicting the least
// recently used entry past capacity. The result must not be mutated after
// insertion (the serving path hands copies to callers).
func (c *lkgCache) put(key string, res *resolve.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lkgEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lkgEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*lkgEntry).key)
	}
}

// get returns the cached answer for a shape (nil when absent), refreshing
// its recency.
func (c *lkgCache) get(key string) *resolve.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*lkgEntry).res
}

// len reports the number of cached shapes.
func (c *lkgCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
