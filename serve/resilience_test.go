package serve

// Tests for the daemon resilience layer: retry with backoff on transient
// backend failures, panic containment at the serving boundary, the
// stale-answer degraded mode with its epoch bound, Retry-After on shed
// responses, and the /v1/rebuild operator override. Faults are injected
// through the serve/backend/* faultpoints — the same sites the chaos
// harness drives.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"strconv"
	"testing"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/faultpoint"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/resolve"
)

// armServeFault arms one faultpoint site with one anonymous rule and
// registers a full disarm at test end (schedules are process-global).
func armServeFault(t *testing.T, site string, steps ...faultpoint.Step) {
	t.Helper()
	t.Cleanup(faultpoint.DisarmAll)
	if err := faultpoint.Arm(site, faultpoint.Any(steps...)); err != nil {
		t.Fatal(err)
	}
}

// TestServeRetryRecovers: a transient backend failure is retried within
// the deadline and the request still succeeds — the caller never sees the
// blip.
func TestServeRetryRecovers(t *testing.T) {
	b := &stubBackend{picks: stubPicks()}
	s := New(b, Options{MaxRetries: 3, RetryBackoff: time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	armServeFault(t, "serve/backend/resolve", faultpoint.Error(2, nil))

	status, ok, _, err := postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}})
	if err != nil || status != http.StatusOK {
		t.Fatalf("resolve with transient faults = %d, %v", status, err)
	}
	if ok.Degraded {
		t.Fatal("retried answer marked degraded")
	}
	if got := s.metrics.retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if got := b.solves.Load(); got != 1 {
		t.Fatalf("backend solves = %d, want 1 (faults fired before the backend)", got)
	}
}

// TestServeBackendPanicContained: a panic escaping the backend is captured
// as a 500 with kind "panic" — the daemon keeps serving, and the next
// request succeeds.
func TestServeBackendPanicContained(t *testing.T) {
	b := &stubBackend{picks: stubPicks()}
	s := New(b, Options{MaxRetries: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	armServeFault(t, "serve/backend/resolve", faultpoint.Panic(1, "injected backend panic"))

	status, _, bad, err := postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusInternalServerError || bad.Kind != "panic" {
		t.Fatalf("panicking backend = %d kind %q, want 500 panic", status, bad.Kind)
	}
	if got := s.metrics.panics.Load(); got != 1 {
		t.Fatalf("contained panics = %d, want 1", got)
	}

	// Containment means the process (and the mux) survived.
	status, ok, _, err := postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}})
	if err != nil || status != http.StatusOK || ok.Degraded {
		t.Fatalf("resolve after contained panic = %d degraded=%v, %v", status, ok.Degraded, err)
	}
}

// TestServeDegradedStaleAnswer: when the backend cannot answer, the
// last-known-good resolution for the shape is served — degraded-stamped,
// carrying the epoch it was computed at — until the universe moves past
// the staleness bound, at which point the failure surfaces.
func TestServeDegradedStaleAnswer(t *testing.T) {
	b := &stubBackend{picks: stubPicks()}
	s := New(b, Options{MaxRetries: -1, MaxStaleEpochs: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Warm the shape: an optimal answer at epoch 0 lands in the LKG cache.
	status, warm, _, err := postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}})
	if err != nil || status != http.StatusOK || warm.Degraded {
		t.Fatalf("warm resolve = %d, %v", status, err)
	}
	if st := s.Stats(); st.StaleCacheLen != 1 {
		t.Fatalf("stale cache len = %d, want 1", st.StaleCacheLen)
	}

	// Backend down (every attempt faults): the stale answer serves.
	armServeFault(t, "serve/backend/resolve", faultpoint.Error(0, nil))
	status, ok, _, err := postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}})
	if err != nil || status != http.StatusOK {
		t.Fatalf("degraded resolve = %d, %v", status, err)
	}
	if !ok.Degraded {
		t.Fatal("stale answer not stamped degraded")
	}
	if ok.Epoch != 0 {
		t.Fatalf("degraded answer epoch = %d, want the computed-at epoch 0", ok.Epoch)
	}
	if ok.Picks["pkg"] != "1.0" {
		t.Fatalf("degraded picks = %v", ok.Picks)
	}
	if got := s.metrics.degraded.Load(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}
	// While a fault schedule is armed, /v1/stats says so.
	if st := s.Stats(); !slices.Contains(st.Faultpoints, "serve/backend/resolve") {
		t.Fatalf("armed faultpoint missing from stats: %v", st.Faultpoints)
	}

	// An unknown shape has no LKG entry: the failure surfaces.
	status, _, bad, err := postResolve(ts.URL, ResolveRequest{Roots: []string{"never-seen"}})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusInternalServerError || bad.Kind != "internal" {
		t.Fatalf("uncached shape under faults = %d kind %q, want 500 internal", status, bad.Kind)
	}

	// The universe moves past the staleness bound: degraded mode refuses.
	for i := 0; i < 3; i++ {
		if _, err := s.backend.Apply(resolve.NewDelta()); err != nil {
			t.Fatal(err)
		}
	}
	status, _, _, err = postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("over-stale degraded resolve = %d, want the failure to surface", status)
	}

	// Faults gone: fresh answers, fresh epoch, degraded flag clear.
	faultpoint.DisarmAll()
	status, ok, _, err = postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}})
	if err != nil || status != http.StatusOK || ok.Degraded {
		t.Fatalf("post-recovery resolve = %d degraded=%v, %v", status, ok.Degraded, err)
	}
	if ok.Epoch != 3 {
		t.Fatalf("post-recovery epoch = %d, want 3", ok.Epoch)
	}
}

// TestServeShedRetryAfter: shed responses carry a Retry-After header
// derived from the admission controller's wait estimate.
func TestServeShedRetryAfter(t *testing.T) {
	b := &stubBackend{block: make(chan struct{}), picks: stubPicks()}
	s := New(b, Options{MaxInflight: 1, MaxQueue: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer close(b.block)

	// Occupy the only lane.
	go postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}, TimeoutMS: 30000})
	waitFor(t, func() bool { return b.solves.Load() == 1 })

	// A different shape cannot coalesce and cannot queue: shed with 429
	// and a Retry-After hint.
	buf, _ := json.Marshal(ResolveRequest{Roots: []string{"other"}})
	resp, err := http.Post(ts.URL+"/v1/resolve", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", ra)
	}
}

// TestServeRebuildEndpoint: POST /v1/rebuild force-heals a backend whose
// members were benched by a faulted broadcast, and reports 501 for
// backends with no benched-capacity concept.
func TestServeRebuildEndpoint(t *testing.T) {
	u, root := repo.SynthDiamond(3, 4)
	p, err := resolve.NewPortfolioResolver(u)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Options{MaxRetries: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Bench every member: the broadcast faults on each extension.
	armServeFault(t, "concretize/extend", faultpoint.Error(0, nil))
	d := ApplyRequest{Adds: []VersionAddRequest{{Pkg: "app", Version: "99.0", Deps: []DeclRequest{{Pkg: "mid0"}}}}}
	buf, _ := json.Marshal(d)
	resp, err := http.Post(ts.URL+"/v1/apply", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("faulted apply = %d, want 422", resp.StatusCode)
	}
	faultpoint.DisarmAll()

	// Every member benched: resolving fail-stops (no LKG for this shape).
	status, _, bad, err := postResolve(ts.URL, ResolveRequest{Roots: []string{root}})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable || bad.Kind != "no_members" {
		t.Fatalf("all-benched resolve = %d kind %q, want 503 no_members", status, bad.Kind)
	}

	// The operator override heals all four members.
	resp, err = http.Post(ts.URL+"/v1/rebuild", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rb RebuildResponse
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(rb.Healed) != 4 {
		t.Fatalf("rebuild = %d healed %v, want 200 with 4 members", resp.StatusCode, rb.Healed)
	}

	// Capacity is back: the delta's answer serves at epoch 1.
	status, ok, _, err := postResolve(ts.URL, ResolveRequest{Roots: []string{root}})
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-rebuild resolve = %d, %v", status, err)
	}
	if ok.Degraded || ok.Epoch != 1 || ok.Picks["app"] != "99.0" {
		t.Fatalf("post-rebuild answer = %+v, want fresh epoch-1 resolution", ok)
	}

	// A bare-session backend has nothing to rebuild: 501.
	s2 := New(resolve.NewSessionResolver(u, resolve.SessionOptions{}), Options{})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp, err = http.Post(ts2.URL+"/v1/rebuild", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("session-backend rebuild = %d, want 501", resp.StatusCode)
	}
}

// TestServeRetryRebuildsBenchedBackend: the retry path self-heals — when
// every member is benched, the first failing request triggers a rebuild
// and its own retry then succeeds, no operator involved.
func TestServeRetryRebuildsBenchedBackend(t *testing.T) {
	u, root := repo.SynthDiamond(3, 4)
	p, err := resolve.NewPortfolioResolver(u)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Options{MaxRetries: 2, RetryBackoff: time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Bench every member via a fully-faulted broadcast.
	armServeFault(t, "concretize/extend", faultpoint.Error(0, nil))
	if _, err := p.Apply(diamondDeltaServe()); err == nil {
		t.Fatal("faulted broadcast returned nil error")
	}
	faultpoint.DisarmAll()

	status, ok, _, err := postResolve(ts.URL, ResolveRequest{Roots: []string{root}})
	if err != nil || status != http.StatusOK {
		t.Fatalf("resolve against fully-benched backend = %d, %v (want retry+rebuild to recover)", status, err)
	}
	if ok.Degraded {
		t.Fatal("recovered answer marked degraded")
	}
	if ok.Epoch != 1 || ok.Picks["app"] != "99.0" {
		t.Fatalf("recovered answer = %+v, want post-delta epoch-1 resolution", ok)
	}
	if s.metrics.rebuilds.Load() == 0 {
		t.Fatal("retry path recorded no rebuild")
	}
}

// diamondDeltaServe mirrors the resolve package's test delta for the
// diamond universe.
func diamondDeltaServe() *resolve.Delta {
	d := resolve.NewDelta()
	d.Add("app", "99.0", repo.Dep("mid0", ":"))
	return d
}
