// Package serve is the daemon tier over the resolve API: an HTTP JSON
// surface (POST /v1/resolve, POST /v1/apply, GET /v1/stats, GET /healthz)
// fronting a per-universe resolve.Resolver, built for the traffic shape
// that dominates at scale — duplicate requests for the same resolution.
//
// Three mechanisms carry the load:
//
//   - Singleflight coalescing: identical in-flight requests — same
//     canonical shape key (objective + canonicalized roots, see
//     resolve.Request.Key), same conflict budget, same universe epoch —
//     collapse onto one leader solve. Followers block on the leader and
//     share its Result, each receiving its own Picks copy (the ownership
//     contract: a caller may mutate what it is handed) with
//     Stats.Coalesced stamped. Keying by epoch means requests straddling
//     an Apply never share an answer.
//
//   - Admission control and load shedding: leader solves pass through a
//     bounded in-flight semaphore. When the semaphore is contended, a
//     request whose deadline cannot outlast the estimated queue wait
//     (EWMA of solve latency scaled by queue depth) is rejected
//     immediately with 503, and a request beyond the hard queue bound
//     with 429 — a shed request spends microseconds, not its deadline.
//     Followers bypass admission entirely: they consume no solver.
//
//   - Deadlines end to end: every request runs under a per-request
//     timeout (client-chosen, server-clamped) mapped onto the resolver's
//     context machinery, so an expired request interrupts its solve
//     promptly and the backend stays warm and reusable.
//
// Errors map typed: unknown roots 400, proven-unsat 422 (with roots and
// the proving portfolio member), budget exhaustion and shed 503/429,
// deadline 504. GET /v1/stats exposes the process-wide registry: request
// and coalesce counters, backend cache/memo hits, shed and timeout
// counts, p50/p90/p99 latency, and portfolio member health.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/faultpoint"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
	"github.com/paper-repo-growth/go-arxiv/resolve"
)

// Backend is what the daemon serves: the resolve API plus the two
// observability hooks the serving tier keys on. Both resolve backends
// (SessionResolver, PortfolioResolver) implement it.
type Backend interface {
	resolve.Resolver
	// Apply grows the backend's universe by one delta; it may block on the
	// write barrier for the duration of an in-flight broadcast.
	//
	// goarxivlint:blocking cancel=none
	Apply(*resolve.Delta) (resolve.Epoch, error)
	// Epoch is the universe epoch the backend currently serves at; it
	// qualifies the coalescing key.
	Epoch() resolve.Epoch
}

// healthReporter is implemented by backends with per-member state
// (resolve.PortfolioResolver); /v1/stats surfaces it when present.
type healthReporter interface {
	Health() []resolve.MemberHealth
}

// encodingReporter is implemented by backends fronting one session
// (resolve.SessionResolver); /v1/stats surfaces the encoder-coverage
// counters when present — the live view of a lazy session's materialized
// subgraph against the universe it serves.
type encodingReporter interface {
	EncodingStats() resolve.EncodingStats
}

// poolReporter is implemented by sharded backends (resolve.PoolResolver);
// /v1/stats surfaces routing counters and per-shard hit rates when
// present.
type poolReporter interface {
	Stats() resolve.PoolStats
}

// Options tunes a Server. The zero value selects sane defaults.
type Options struct {
	// MaxInflight bounds concurrent backend solves (leader requests past
	// admission). Zero selects GOMAXPROCS.
	MaxInflight int

	// MaxQueue bounds leaders waiting for an in-flight slot; arrivals
	// beyond it are shed with 429. Zero selects 4*MaxInflight; negative
	// disables queueing entirely (full semaphore sheds immediately).
	MaxQueue int

	// DefaultTimeout applies when a request names none. Zero selects 10s.
	DefaultTimeout time.Duration

	// MaxTimeout caps client-requested timeouts. Zero selects 60s.
	MaxTimeout time.Duration

	// MaxRetries bounds how many times a leader solve is retried after a
	// transient backend failure (contained panic, fully-benched backend,
	// unexplained member error) before the failure surfaces. Zero selects
	// 2; negative disables retries.
	MaxRetries int

	// RetryBackoff is the base of the jittered exponential backoff between
	// retries (base, 2*base, 4*base, ..., each +-50%). Zero selects 5ms.
	// Every sleep is budgeted against the request deadline: a retry whose
	// backoff plus expected solve would overrun it surfaces the failure
	// instead.
	RetryBackoff time.Duration

	// MaxStaleEpochs bounds degraded mode: a last-known-good answer is
	// served only when the epoch it was computed at is within this many
	// epochs of the current universe. Zero selects 64; negative disables
	// degraded mode entirely.
	MaxStaleEpochs int

	// StaleCacheSize bounds the last-known-good cache (request shapes,
	// LRU). Zero selects 1024; negative disables the cache (and with it
	// degraded mode).
	StaleCacheSize int
}

// Server is the HTTP daemon over one backend. Create with New, expose via
// Handler (it is an http.Handler), shut down by shutting down the
// enclosing http.Server — the Server itself holds no connections.
type Server struct {
	backend Backend
	opts    Options
	mux     *http.ServeMux

	flights  group
	sem      chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
	metrics  metrics

	// lkg is the last-known-good answer cache behind degraded mode; nil
	// when disabled (Options.StaleCacheSize < 0).
	lkg *lkgCache
}

// New builds a Server over the backend.
func New(b Backend, opts Options) *Server {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue == 0 {
		opts.MaxQueue = 4 * opts.MaxInflight
	}
	if opts.MaxQueue < 0 {
		opts.MaxQueue = 0
	}
	if opts.DefaultTimeout <= 0 {
		opts.DefaultTimeout = 10 * time.Second
	}
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = 60 * time.Second
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 5 * time.Millisecond
	}
	if opts.MaxStaleEpochs == 0 {
		opts.MaxStaleEpochs = 64
	}
	if opts.StaleCacheSize == 0 {
		opts.StaleCacheSize = 1024
	}
	s := &Server{
		backend: b,
		opts:    opts,
		sem:     make(chan struct{}, opts.MaxInflight),
	}
	if opts.StaleCacheSize > 0 {
		s.lkg = newLKGCache(opts.StaleCacheSize)
	}
	// Count followers the moment they attach: an in-flight storm is then
	// visible in /v1/stats while the leader is still solving.
	s.flights.onJoin = func() { s.metrics.coalesced.Add(1) }
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/resolve", s.handleResolve)
	mux.HandleFunc("POST /v1/apply", s.handleApply)
	mux.HandleFunc("POST /v1/rebuild", s.handleRebuild)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// timeout clamps a request's deadline choice into the server's window.
func (s *Server) timeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		return s.opts.DefaultTimeout
	}
	return min(d, s.opts.MaxTimeout)
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var wr ResolveRequest
	if err := decodeJSON(r, &wr); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad_request"})
		return
	}
	req, err := wr.toRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad_request"})
		return
	}
	s.metrics.requests.Add(1)
	start := time.Now()
	res, degraded, err := s.resolve(r.Context(), req, s.timeout(wr.TimeoutMS))
	s.metrics.observeLatency(time.Since(start))
	if err != nil {
		status, resp := errorStatus(err)
		switch resp.Kind {
		case "shed":
			s.metrics.shed.Add(1)
			// Tell the client when capacity is expected: the estimated
			// queue wait at current depth, rounded up to whole seconds.
			w.Header().Set("Retry-After", retryAfterSeconds(s.estimatedWait(s.queued.Load())))
		case "timeout":
			s.metrics.timeouts.Add(1)
		case "unsat":
			s.metrics.unsat.Add(1)
		default:
			s.metrics.failures.Add(1)
		}
		writeError(w, status, resp)
		return
	}
	picks := make(map[string]string, len(res.Picks))
	for pkg, v := range res.Picks {
		picks[pkg] = v.String()
	}
	writeJSON(w, http.StatusOK, ResolveResponse{
		Picks:     picks,
		Cost:      res.Stats.Cost,
		Optimal:   res.Stats.Optimal,
		Config:    res.Config,
		Epoch:     uint64(res.Stats.Epoch),
		Degraded:  degraded,
		Coalesced: res.Stats.Coalesced,
		Stats: StatsResponse{
			Packages:         res.Stats.Packages,
			SolveCalls:       res.Stats.SolveCalls,
			Improvements:     res.Stats.Improvements,
			Conflicts:        res.Stats.Conflicts,
			Decisions:        res.Stats.Decisions,
			Propagations:     res.Stats.Propagations,
			SolutionCacheHit: res.Stats.SolutionCacheHit,
			BoundMemoHit:     res.Stats.BoundMemoHit,
			Coalesced:        res.Stats.Coalesced,
		},
	})
}

// resolve is the serving pipeline for one request: coalesce onto an
// in-flight identical solve when one exists, otherwise lead — pass
// admission, run the backend under the request deadline with retries —
// and hand every caller its own copy of the shared result. When the
// pipeline fails for a degradable reason (shed, or transient after the
// retry budget), a fresh-enough last-known-good answer for the shape is
// served instead, reported through the degraded flag.
func (s *Server) resolve(ctx context.Context, req resolve.Request, timeout time.Duration) (_ *resolve.Result, degraded bool, _ error) {
	// The follower's wait (and the fast-path shed check) run under the
	// caller's context; the leader's solve runs detached below so a
	// disconnecting leader client cannot kill the answer its followers
	// are waiting on.
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// The coalescing key: request shape + budget + epoch. Epoch makes the
	// key self-invalidating across Apply — post-delta arrivals start a
	// fresh flight rather than share a pre-delta answer.
	key := fmt.Sprintf("%s\x1e%d\x1e%d", req.Key(), req.MaxConflicts, s.backend.Epoch())
	res, err, coalesced := s.flights.do(ctx, key, func() (*resolve.Result, error) {
		release, err := s.admit(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		// Detach from the leader client's cancellation but keep the
		// timeout: followers share this solve, so only the deadline —
		// which every sharer also enforces on its own wait — may stop it.
		sctx, scancel := context.WithTimeout(context.WithoutCancel(ctx), timeout)
		defer scancel()
		return s.solveBackend(sctx, req)
	})
	if err != nil {
		if stale := s.staleAnswer(req, err); stale != nil {
			return stale, true, nil
		}
		return nil, false, err
	}
	// Every caller — leader included — gets its own copy; the flight's
	// result stays pristine for concurrent followers (ownership contract:
	// Result.Picks is caller-owned and mutable).
	out := copyResult(res)
	out.Stats.Coalesced = coalesced
	return out, false, nil
}

// solveBackend is one leader's backend conversation: the contained call,
// retried on transient failures with jittered backoff, every sleep
// budgeted against the deadline (a retry that cannot finish in time
// surfaces the failure instead of burning the caller's budget). A
// fully-benched backend is rebuilt before the retry — the self-heal that
// turns "every member crashed" back into capacity.
func (s *Server) solveBackend(ctx context.Context, req resolve.Request) (*resolve.Result, error) {
	for attempt := 0; ; attempt++ {
		r, err := s.callBackend(ctx, req)
		if err == nil {
			if r.Stats.SolutionCacheHit {
				s.metrics.cacheHits.Add(1)
			}
			if r.Stats.BoundMemoHit {
				s.metrics.memoHits.Add(1)
			}
			// Every optimal answer refreshes the shape's last-known-good
			// entry; its Stats.Epoch states the epoch it was right at.
			if s.lkg != nil && r.Stats.Optimal {
				s.lkg.put(req.Key(), r)
			}
			return r, nil
		}
		if attempt >= s.opts.MaxRetries || !transient(err) || ctx.Err() != nil {
			return nil, err
		}
		if errors.Is(err, resolve.ErrNoActiveMembers) {
			if rb, ok := s.backend.(rebuilder); ok {
				rb.Rebuild()
				s.metrics.rebuilds.Add(1)
			}
		}
		delay := retryDelay(s.opts.RetryBackoff, attempt)
		if dl, ok := ctx.Deadline(); ok {
			// The retry must fit its backoff plus an expected solve.
			if time.Until(dl) < delay+time.Duration(s.metrics.ewmaNs.Load()) {
				return nil, err
			}
		}
		s.metrics.retries.Add(1)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, err
		}
	}
}

// callBackend issues one backend Resolve with panic containment: a panic
// escaping the backend (beyond the resolver's own containment) is
// captured as a *resolve.PanicError instead of unwinding through the HTTP
// handler and killing the flight's followers.
func (s *Server) callBackend(ctx context.Context, req resolve.Request) (r *resolve.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.panics.Add(1)
			r, err = nil, &resolve.PanicError{Op: "serve/backend", Value: fmt.Sprint(rec), Stack: debug.Stack()}
		}
	}()
	if err := fpBackendResolve.Inject(""); err != nil {
		return nil, err
	}
	t0 := time.Now()
	r, err = s.backend.Resolve(ctx, req)
	s.metrics.observeSolve(time.Since(t0))
	return r, err
}

// staleAnswer is degraded mode: when a request failed for a degradable
// reason, serve the shape's last-known-good answer — provided the epoch
// it was computed at is within the staleness bound of the current
// universe. The caller receives its own copy, stamped with the served
// (stale) epoch; the degraded flag rides the response.
func (s *Server) staleAnswer(req resolve.Request, cause error) *resolve.Result {
	if s.lkg == nil || s.opts.MaxStaleEpochs < 0 || !degradable(cause) {
		return nil
	}
	entry := s.lkg.get(req.Key())
	if entry == nil {
		return nil
	}
	cur := uint64(s.backend.Epoch())
	if cur-uint64(entry.Stats.Epoch) > uint64(s.opts.MaxStaleEpochs) {
		return nil
	}
	s.metrics.degraded.Add(1)
	return copyResult(entry)
}

// retryAfterSeconds renders a wait estimate as a Retry-After value,
// rounded up to whole seconds (the header's granularity; a sub-second
// estimate still advises 1s, never "now").
func retryAfterSeconds(wait time.Duration) string {
	return strconv.FormatInt(int64(wait/time.Second)+1, 10)
}

// copyResult clones a result deeply enough for caller ownership: a fresh
// Picks map, value-copied Stats.
func copyResult(r *resolve.Result) *resolve.Result {
	out := &resolve.Result{Stats: r.Stats, Config: r.Config}
	out.Picks = make(map[string]version.Version, len(r.Picks))
	for pkg, v := range r.Picks {
		out.Picks[pkg] = v
	}
	return out
}

// admit gates one leader solve on the in-flight semaphore. The fast paths
// never block: a free slot is taken immediately; a contended semaphore
// sheds the request at once when the hard queue bound is hit (429) or the
// estimated wait exceeds the request's deadline (503). Otherwise the
// request queues until a slot frees or its deadline fires (also a shed:
// the queue never got to it).
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	grab := func() func() {
		s.inflight.Add(1)
		return func() {
			s.inflight.Add(-1)
			<-s.sem
		}
	}
	select {
	case s.sem <- struct{}{}:
		return grab(), nil
	default:
	}
	q := s.queued.Load()
	if q >= int64(s.opts.MaxQueue) {
		return nil, errShedQueue
	}
	if dl, ok := ctx.Deadline(); ok {
		if wait := s.estimatedWait(q); time.Until(dl) < wait {
			return nil, fmt.Errorf("%w (estimated %v)", errShedWait, wait)
		}
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return grab(), nil
	case <-ctx.Done():
		return nil, fmt.Errorf("%w (deadline fired while queued)", errShedWait)
	}
}

// estimatedWait predicts how long the (q+1)'th queued leader waits for a
// slot: every queued request ahead plus one in-flight wave, served at the
// EWMA solve latency across MaxInflight lanes.
func (s *Server) estimatedWait(q int64) time.Duration {
	ewma := s.metrics.ewmaNs.Load()
	lanes := int64(s.opts.MaxInflight)
	return time.Duration(ewma + ewma*q/lanes)
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	var ar ApplyRequest
	if err := decodeJSON(r, &ar); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad_request"})
		return
	}
	d, err := ar.toDelta()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad_request"})
		return
	}
	epoch, err := s.applyBackend(d)
	if err != nil {
		var pe *resolve.PanicError
		if errors.As(err, &pe) {
			status, resp := errorStatus(err)
			writeError(w, status, resp)
			return
		}
		// A quarantining broadcast still advanced the universe; report
		// both the epoch and the attribution.
		resp := ErrorResponse{Error: err.Error(), Kind: "apply_failed"}
		var me *resolve.MemberError
		if errors.As(err, &me) {
			resp.Member = me.Member
		}
		writeError(w, http.StatusUnprocessableEntity, resp)
		return
	}
	s.metrics.applies.Add(1)
	writeJSON(w, http.StatusOK, ApplyResponse{Epoch: uint64(epoch)})
}

// applyBackend issues one backend Apply with panic containment, mirroring
// callBackend.
func (s *Server) applyBackend(d *resolve.Delta) (epoch resolve.Epoch, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.panics.Add(1)
			epoch, err = s.backend.Epoch(), &resolve.PanicError{Op: "serve/backend/apply", Value: fmt.Sprint(rec), Stack: debug.Stack()}
		}
	}()
	if err := fpBackendApply.Inject(""); err != nil {
		return s.backend.Epoch(), err
	}
	return s.backend.Apply(d)
}

// handleRebuild (POST /v1/rebuild) is the operator override for benched
// capacity: it force-heals every quarantined member or broken shard —
// crashlooping (sticky) ones included — and reports what it healed. 501
// when the backend has no benched-capacity concept (a bare session).
func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	rb, ok := s.backend.(rebuilder)
	if !ok {
		writeError(w, http.StatusNotImplemented, ErrorResponse{Error: "serve: backend does not support rebuild", Kind: "unsupported"})
		return
	}
	healed := rb.Rebuild()
	s.metrics.rebuilds.Add(1)
	writeJSON(w, http.StatusOK, RebuildResponse{Healed: healed})
}

// Stats snapshots the process-wide registry (also served at /v1/stats).
func (s *Server) Stats() ServerStats {
	p50, p90, p99 := s.metrics.percentiles()
	st := ServerStats{
		Requests:    s.metrics.requests.Load(),
		Coalesced:   s.metrics.coalesced.Load(),
		Solves:      s.metrics.solves.Load(),
		CacheHits:   s.metrics.cacheHits.Load(),
		MemoHits:    s.metrics.memoHits.Load(),
		Unsat:       s.metrics.unsat.Load(),
		Shed:        s.metrics.shed.Load(),
		Timeouts:    s.metrics.timeouts.Load(),
		Failures:    s.metrics.failures.Load(),
		Applies:     s.metrics.applies.Load(),
		Degraded:    s.metrics.degraded.Load(),
		Retries:     s.metrics.retries.Load(),
		Panics:      s.metrics.panics.Load(),
		Rebuilds:    s.metrics.rebuilds.Load(),
		Faultpoints: faultpoint.Armed(),
		P50Ms:       float64(p50) / float64(time.Millisecond),
		P90Ms:       float64(p90) / float64(time.Millisecond),
		P99Ms:       float64(p99) / float64(time.Millisecond),
		AvgSolveMs:  float64(s.metrics.ewmaNs.Load()) / float64(time.Millisecond),
		Inflight:    int(s.inflight.Load()),
		Queued:      int(s.queued.Load()),
		MaxInflight: s.opts.MaxInflight,
		Epoch:       uint64(s.backend.Epoch()),
	}
	if s.lkg != nil {
		st.StaleCacheLen = s.lkg.len()
	}
	if hr, ok := s.backend.(healthReporter); ok {
		for _, h := range hr.Health() {
			mh := MemberHealthResponse{Name: h.Name, Quarantined: h.Quarantined, CrashLoop: h.CrashLoop, Epoch: uint64(h.Epoch)}
			if h.Err != nil {
				mh.Error = h.Err.Error()
			}
			st.Members = append(st.Members, mh)
		}
	}
	if er, ok := s.backend.(encodingReporter); ok {
		enc := encodingResponse(er.EncodingStats())
		st.Encoding = &enc
	}
	if pr, ok := s.backend.(poolReporter); ok {
		ps := pr.Stats()
		pool := PoolStatsResponse{
			Shards:   ps.Shards,
			Hits:     ps.Hits,
			Steals:   ps.Steals,
			Waits:    ps.Waits,
			Rebuilds: ps.Rebuilds,
			Panics:   ps.Panics,
			Broken:   ps.Broken,
		}
		for _, sh := range ps.Shard {
			sr := ShardStatsResponse{
				Served:    sh.Served,
				CacheHits: sh.CacheHits,
				Inflight:  sh.Inflight,
				Broken:    sh.Broken,
				CrashLoop: sh.CrashLoop,
				Encoding:  encodingResponse(sh.Encoding),
			}
			if sh.Served > 0 {
				sr.HitRate = float64(sh.CacheHits) / float64(sh.Served)
			}
			pool.Shard = append(pool.Shard, sr)
		}
		st.Pool = &pool
	}
	return st
}

// encodingResponse lowers encoder-coverage counters onto the wire.
func encodingResponse(e resolve.EncodingStats) EncodingResponse {
	return EncodingResponse{
		Lazy:                 e.Lazy,
		MaterializedPackages: e.MaterializedPackages,
		UniversePackages:     e.UniversePackages,
		SolverVars:           e.SolverVars,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// maxBodyBytes bounds request bodies; deltas are batches, not dumps.
const maxBodyBytes = 8 << 20

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, resp ErrorResponse) {
	writeJSON(w, status, resp)
}
