package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencySamples bounds the latency reservoir: a ring of the most recent
// request latencies from which the percentile snapshot is computed.
const latencySamples = 4096

// ewmaShift is the exponential-moving-average decay for the solve-latency
// estimate driving admission control: new = old + (sample-old)/2^ewmaShift.
const ewmaShift = 3

// metrics is the process-wide serving registry: monotone counters, an EWMA
// of backend solve latency (the admission controller's wait estimator),
// and a bounded reservoir of recent request latencies for percentiles.
// All methods are safe for concurrent use.
type metrics struct {
	requests  atomic.Int64 // /v1/resolve requests accepted for processing
	coalesced atomic.Int64 // followers that shared a leader's in-flight solve
	solves    atomic.Int64 // backend Resolve calls actually issued
	cacheHits atomic.Int64 // solves answered from the session solution cache
	memoHits  atomic.Int64 // solves that reused a banked shape bound
	unsat     atomic.Int64 // definitive unsatisfiable answers
	shed      atomic.Int64 // requests rejected by admission control
	timeouts  atomic.Int64 // requests that exhausted their deadline
	failures  atomic.Int64 // other errors (budget, internal, bad request)
	applies   atomic.Int64 // /v1/apply deltas absorbed
	degraded  atomic.Int64 // stale last-known-good answers served
	retries   atomic.Int64 // backend solves retried after a transient failure
	panics    atomic.Int64 // panics contained at the serving boundary
	rebuilds  atomic.Int64 // backend rebuilds (retry-path self-heal + /v1/rebuild)

	ewmaNs atomic.Int64 // EWMA of backend solve latency, nanoseconds

	mu   sync.Mutex
	lats [latencySamples]int64 // request latency ring, nanoseconds
	pos  int
	n    int
}

// observeSolve folds one completed backend solve into the EWMA wait
// estimator.
func (m *metrics) observeSolve(d time.Duration) {
	m.solves.Add(1)
	for {
		old := m.ewmaNs.Load()
		nw := old + (int64(d)-old)>>ewmaShift
		if old == 0 {
			nw = int64(d)
		}
		if m.ewmaNs.CompareAndSwap(old, nw) {
			return
		}
	}
}

// observeLatency records one finished request's end-to-end latency.
func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	m.lats[m.pos] = int64(d)
	m.pos = (m.pos + 1) % latencySamples
	if m.n < latencySamples {
		m.n++
	}
	m.mu.Unlock()
}

// percentiles returns the p50/p90/p99 of the recorded latencies (zeros
// when nothing has been recorded yet).
func (m *metrics) percentiles() (p50, p90, p99 time.Duration) {
	m.mu.Lock()
	n := m.n
	buf := make([]int64, n)
	if n <= m.pos {
		copy(buf, m.lats[m.pos-n:m.pos])
	} else {
		k := copy(buf, m.lats[m.pos+latencySamples-n:])
		copy(buf[k:], m.lats[:m.pos])
	}
	m.mu.Unlock()
	if n == 0 {
		return 0, 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(n-1))
		return time.Duration(buf[i])
	}
	return at(0.50), at(0.90), at(0.99)
}
