package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/resolve"
)

func newDiamondServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	u, _ := repo.SynthDiamond(4, 6)
	s := New(resolve.NewSessionResolver(u, resolve.SessionOptions{}), Options{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any, out any) (int, ErrorResponse) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er ErrorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, er
}

// TestServerResolveMatchesDirect: the HTTP path returns the same answer as
// calling the resolver directly — the wire adds transport, not semantics.
func TestServerResolveMatchesDirect(t *testing.T) {
	u, root := repo.SynthDiamond(4, 6)
	direct, err := resolve.NewSessionResolver(u, resolve.SessionOptions{}).
		Resolve(context.Background(), resolve.Request{
			Roots: []resolve.Root{{Pkg: root}}, Objective: resolve.NewestVersion(),
		})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newDiamondServer(t)
	var rr ResolveResponse
	status, er := postJSON(t, ts.URL+"/v1/resolve", ResolveRequest{Roots: []string{root}}, &rr)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, er.Error)
	}
	if !rr.Optimal {
		t.Fatal("daemon answer not optimal")
	}
	if rr.Cost != direct.Stats.Cost {
		t.Fatalf("daemon cost %d != direct cost %d", rr.Cost, direct.Stats.Cost)
	}
	if len(rr.Picks) != len(direct.Picks) {
		t.Fatalf("daemon picked %d packages, direct %d", len(rr.Picks), len(direct.Picks))
	}
	for pkg, v := range direct.Picks {
		if rr.Picks[pkg] != v.String() {
			t.Fatalf("pick %s: daemon %s, direct %s", pkg, rr.Picks[pkg], v)
		}
	}
}

// TestServerUnsatAttribution: a proven-unsat answer maps to 422 with kind
// "unsat", the offending roots, and — on a portfolio backend — the member
// that produced the proof.
func TestServerUnsatAttribution(t *testing.T) {
	u, root := repo.SynthUnsatWeb(4, 2)
	p, err := resolve.NewPortfolioResolver(u, resolve.DefaultPortfolio()...)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var rr ResolveResponse
	status, er := postJSON(t, ts.URL+"/v1/resolve", ResolveRequest{Roots: []string{root}}, &rr)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", status)
	}
	if er.Kind != "unsat" {
		t.Fatalf("kind = %q, want unsat", er.Kind)
	}
	if len(er.Roots) == 0 || !strings.Contains(er.Roots[0], root) {
		t.Fatalf("unsat roots missing attribution: %v", er.Roots)
	}
	if er.Member == "" {
		t.Fatal("portfolio unsat lost member attribution")
	}
	if s.Stats().Unsat != 1 {
		t.Fatalf("unsat counter = %d, want 1", s.Stats().Unsat)
	}
}

// TestServerUnknownRoot: asking for a package the universe has never heard
// of is a client error, not a server failure.
func TestServerUnknownRoot(t *testing.T) {
	_, ts := newDiamondServer(t)
	var rr ResolveResponse
	status, er := postJSON(t, ts.URL+"/v1/resolve", ResolveRequest{Roots: []string{"no-such-package"}}, &rr)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	if er.Kind != "unknown_package" {
		t.Fatalf("kind = %q, want unknown_package", er.Kind)
	}
}

// TestServerApplyRoundtrip: an applied delta advances the epoch and the
// next resolve sees the new world — the daemon serves a live universe.
func TestServerApplyRoundtrip(t *testing.T) {
	_, ts := newDiamondServer(t)

	var before ResolveResponse
	if status, er := postJSON(t, ts.URL+"/v1/resolve", ResolveRequest{Roots: []string{"app"}}, &before); status != http.StatusOK {
		t.Fatalf("pre-apply resolve: %d %s", status, er.Error)
	}

	var ar ApplyResponse
	status, er := postJSON(t, ts.URL+"/v1/apply", ApplyRequest{Adds: []VersionAddRequest{{
		Pkg: "app", Version: "99.0",
		Deps: []DeclRequest{{Pkg: "mid0", Range: "1:"}},
	}}}, &ar)
	if status != http.StatusOK {
		t.Fatalf("apply: %d %s", status, er.Error)
	}
	if ar.Epoch != 1 {
		t.Fatalf("epoch after apply = %d, want 1", ar.Epoch)
	}

	var after ResolveResponse
	if status, er := postJSON(t, ts.URL+"/v1/resolve", ResolveRequest{Roots: []string{"app"}}, &after); status != http.StatusOK {
		t.Fatalf("post-apply resolve: %d %s", status, er.Error)
	}
	if after.Picks["app"] != "99.0" {
		t.Fatalf("post-apply pick app=%s, want the freshly added 99.0", after.Picks["app"])
	}
	if after.Epoch != 1 {
		t.Fatalf("post-apply answer epoch = %d, want 1", after.Epoch)
	}
	if before.Picks["app"] == after.Picks["app"] {
		t.Fatal("apply changed nothing observable")
	}
}

// TestServerApplyRejectsBadWire: malformed versions and ranges must be
// caught at the wire boundary — repo.Delta.Add panics on bad literals and
// wire input must never reach it.
func TestServerApplyRejectsBadWire(t *testing.T) {
	_, ts := newDiamondServer(t)
	for _, bad := range []ApplyRequest{
		{},
		{Adds: []VersionAddRequest{{Pkg: "x", Version: "1..0"}}},
		{Adds: []VersionAddRequest{{Pkg: "", Version: "1.0"}}},
		{Adds: []VersionAddRequest{{Pkg: "x", Version: "1.0", Deps: []DeclRequest{{Pkg: "y", Range: "1:2:3"}}}}},
	} {
		var ar ApplyResponse
		status, er := postJSON(t, ts.URL+"/v1/apply", bad, &ar)
		if status != http.StatusBadRequest {
			t.Fatalf("bad apply %+v: status %d (%s), want 400", bad, status, er.Error)
		}
	}
}

// TestServerStatsAndHealthz: the ops surface is wired — stats counts the
// traffic and reports portfolio member health; healthz answers.
func TestServerStatsAndHealthz(t *testing.T) {
	u, root := repo.SynthDiamond(4, 6)
	p, err := resolve.NewPortfolioResolver(u, resolve.DefaultPortfolio()...)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var rr ResolveResponse
	for i := 0; i < 3; i++ {
		if status, er := postJSON(t, ts.URL+"/v1/resolve", ResolveRequest{Roots: []string{root}}, &rr); status != http.StatusOK {
			t.Fatalf("resolve %d: %d %s", i, status, er.Error)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 {
		t.Fatalf("stats requests = %d, want 3", st.Requests)
	}
	if st.Solves < 1 {
		t.Fatal("stats recorded no solves")
	}
	if len(st.Members) == 0 {
		t.Fatal("portfolio backend reported no member health")
	}
	for _, m := range st.Members {
		if m.Quarantined {
			t.Fatalf("member %s unexpectedly quarantined: %s", m.Name, m.Error)
		}
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hz.StatusCode)
	}
}

// TestServerStatsLazyPoolSections: the registry-scale observability is
// wired through /v1/stats — a lazy session backend exposes its encoder
// coverage, and a pool backend its per-shard routing counters.
func TestServerStatsLazyPoolSections(t *testing.T) {
	fetchStats := func(t *testing.T, url string) ServerStats {
		t.Helper()
		resp, err := http.Get(url + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st ServerStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	u, root := repo.SynthRegistry(600, 6)
	sess := httptest.NewServer(New(resolve.NewSessionResolver(u, resolve.SessionOptions{Lazy: true}), Options{}))
	defer sess.Close()
	var rr ResolveResponse
	if status, er := postJSON(t, sess.URL+"/v1/resolve", ResolveRequest{Roots: []string{root}}, &rr); status != http.StatusOK {
		t.Fatalf("session resolve: %d %s", status, er.Error)
	}
	st := fetchStats(t, sess.URL)
	if st.Encoding == nil {
		t.Fatal("lazy session backend exposed no encoding section")
	}
	if !st.Encoding.Lazy || st.Encoding.UniversePackages != 600 {
		t.Fatalf("encoding section %+v, want lazy over 600 packages", st.Encoding)
	}
	if st.Encoding.MaterializedPackages == 0 || st.Encoding.MaterializedPackages >= 600 {
		t.Fatalf("materialized %d of 600 — lazy coverage should be partial", st.Encoding.MaterializedPackages)
	}

	u2, root2 := repo.SynthRegistry(600, 6)
	pool := httptest.NewServer(New(resolve.NewPoolResolver(u2, 3, resolve.SessionOptions{Lazy: true}), Options{}))
	defer pool.Close()
	for i := 0; i < 2; i++ {
		if status, er := postJSON(t, pool.URL+"/v1/resolve", ResolveRequest{Roots: []string{root2}}, &rr); status != http.StatusOK {
			t.Fatalf("pool resolve %d: %d %s", i, status, er.Error)
		}
	}
	st = fetchStats(t, pool.URL)
	if st.Pool == nil {
		t.Fatal("pool backend exposed no pool section")
	}
	if st.Pool.Shards != 3 || len(st.Pool.Shard) != 3 {
		t.Fatalf("pool section reports %d/%d shards, want 3", st.Pool.Shards, len(st.Pool.Shard))
	}
	if st.Pool.Hits < 1 {
		t.Fatalf("repeat request recorded %d routing hits, want >= 1", st.Pool.Hits)
	}
	var served uint64
	var rate float64
	for _, sh := range st.Pool.Shard {
		served += sh.Served
		rate += sh.HitRate
	}
	if served != 2 || rate <= 0 {
		t.Fatalf("shards served %d (hit rate sum %.2f), want 2 served with a warm hit", served, rate)
	}
}

// TestServerRejectsBadJSON: garbage and unknown fields are 400s.
func TestServerRejectsBadJSON(t *testing.T) {
	_, ts := newDiamondServer(t)
	for _, body := range []string{
		"{not json",
		`{"roots": ["app"], "surprise_field": 1}`,
		`{}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/resolve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestServerDeadlineOnHardInstance: a minutes-hard refutation under a tiny
// deadline comes back 504 promptly — the deadline reaches the solver.
func TestServerDeadlineOnHardInstance(t *testing.T) {
	u, root := repo.SynthPigeonhole(11)
	s := New(resolve.NewSessionResolver(u, resolve.SessionOptions{}), Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var rr ResolveResponse
	status, er := postJSON(t, ts.URL+"/v1/resolve", ResolveRequest{Roots: []string{root}, TimeoutMS: 150}, &rr)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (kind %s), want 504", status, er.Kind)
	}
	if er.Kind != "timeout" {
		t.Fatalf("kind = %q, want timeout", er.Kind)
	}
	if s.Stats().Timeouts != 1 {
		t.Fatalf("timeout counter = %d, want 1", s.Stats().Timeouts)
	}
}
