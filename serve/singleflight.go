package serve

import (
	"context"
	"sync"

	"github.com/paper-repo-growth/go-arxiv/resolve"
)

// flight is one in-flight leader solve that duplicate arrivals wait on.
// res/err are written exactly once, before done is closed; followers read
// them only after <-done, so no lock guards them.
type flight struct {
	done chan struct{}
	res  *resolve.Result
	err  error
}

// group coalesces duplicate in-flight work by key: the first arrival for a
// key becomes the leader and runs fn; arrivals while the leader is in
// flight become followers and share its outcome. The leader removes the
// key before publishing, so a request arriving after completion starts a
// fresh flight — coalescing collapses concurrency, never staleness (and
// the key carries the universe epoch anyway; see Server.resolveOnce).
type group struct {
	mu sync.Mutex
	m  map[string]*flight

	// onJoin, when set, fires the moment a follower attaches to an
	// in-flight leader — before it starts waiting — so coalescing is
	// observable (metrics, tests) while the flight is still running.
	onJoin func()
}

// do runs fn under the key, coalescing with an existing flight if one is
// in progress. It reports whether this call was a follower (coalesced).
// Followers honor their own ctx: a follower whose deadline fires before
// the leader publishes gives up with ctx's error — the leader's solve is
// unaffected. The returned Result is shared between the leader and every
// follower; callers copy before mutating or stamping (copyResult).
func (g *group) do(ctx context.Context, key string, fn func() (*resolve.Result, error)) (res *resolve.Result, err error, coalesced bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		if g.onJoin != nil {
			g.onJoin()
		}
		select {
		case <-f.done:
			return f.res, f.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.res, f.err = fn()

	// Deregister before publishing: once done is observable, new arrivals
	// must start a fresh flight rather than read a completed one.
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, f.err, false
}
