package serve

// The chaos harness (run under -race by `make chaos` and CI): randomized
// resolve->delta->resolve streams against a daemon whose faultpoints are
// armed with randomized schedules — injected errors, latency, and panics
// at the solve, extend, materialize, and serving boundaries. The
// invariants asserted every round, per fixed seed:
//
//   1. No panic escapes: every request gets an HTTP answer.
//   2. Every non-degraded 200 is identical (cost, optimality) to a
//      fault-free oracle's answer at the epoch the response states.
//   3. Degraded 200s verify the same way against their (stale) epoch.
//   4. Failures only ever map to the sanctioned statuses (429/500/503/504).
//   5. Capacity always recovers: after the storm, one operator rebuild
//      restores every member/shard and every shape resolves fresh.
//
// The oracle is an identically-seeded universe behind a plain session
// resolver, fed the same deltas with no faults armed; oracle answers are
// recorded per epoch so answers served from warm caches (which may state
// an older epoch) verify against the epoch they were computed at.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/faultpoint"
	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/resolve"
)

func TestChaosPortfolio(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { runChaos(t, "portfolio", seed) })
	}
}

func TestChaosPool(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { runChaos(t, "pool", seed) })
	}
}

// crashLooper is the subset of both resilient backends the harness tunes.
type crashLooper interface {
	SetCrashLoopPolicy(int, time.Duration)
	Rebuild() []string
}

// oracleAns is the fault-free answer for one shape at one epoch.
type oracleAns struct {
	cost  int64
	unsat bool
}

func runChaos(t *testing.T, kind string, seed int64) {
	const (
		pkgs     = 48
		versions = 5
		depsPer  = 3
		rounds   = 5
		waveSize = 16
	)
	uSrv, root := repo.SynthDense(pkgs, versions, depsPer, 7)
	uOracle, _ := repo.SynthDense(pkgs, versions, depsPer, 7)

	var backend Backend
	var solveSite string
	switch kind {
	case "portfolio":
		p, err := resolve.NewPortfolioResolver(uSrv)
		if err != nil {
			t.Fatal(err)
		}
		backend = p
		solveSite = "resolve/portfolio/solve"
	case "pool":
		backend = resolve.NewPoolResolver(uSrv, 4, resolve.SessionOptions{Lazy: true})
		solveSite = "resolve/pool/solve"
	default:
		t.Fatalf("unknown backend kind %q", kind)
	}
	// Generous crashloop budget: the storm deliberately crashes solvers
	// over and over; sticky benches are the recovery phase's concern.
	backend.(crashLooper).SetCrashLoopPolicy(1000, time.Minute)

	oracle := resolve.NewSessionResolver(uOracle, resolve.SessionOptions{})
	s := New(backend, Options{MaxInflight: 4, MaxRetries: 2, RetryBackoff: time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()
	t.Cleanup(faultpoint.DisarmAll)

	shapes := [][]string{
		{root},
		{"dense1"},
		{"dense7"},
		{"dense3", "dense11"},
		{"dense20"},
	}
	shapeKey := func(roots []string) string { return strings.Join(roots, ",") }

	rng := rand.New(rand.NewSource(seed))
	history := map[uint64]map[string]oracleAns{} // epoch -> shape -> answer

	recordOracle := func(epoch uint64) {
		if _, ok := history[epoch]; ok {
			return
		}
		m := map[string]oracleAns{}
		for _, roots := range shapes {
			req := resolve.Request{Objective: resolve.NewestVersion()}
			for _, spec := range roots {
				r, err := resolve.ParseRoot(spec)
				if err != nil {
					t.Fatal(err)
				}
				req.Roots = append(req.Roots, r)
			}
			r, err := oracle.Resolve(context.Background(), req)
			switch {
			case err == nil && r.Stats.Optimal:
				m[shapeKey(roots)] = oracleAns{cost: r.Stats.Cost}
			case errors.Is(err, resolve.ErrUnsatisfiable):
				m[shapeKey(roots)] = oracleAns{unsat: true}
			default:
				t.Fatalf("oracle at epoch %d, shape %v: %v", epoch, roots, err)
			}
		}
		history[epoch] = m
	}

	// armWave arms a randomized fault schedule for one request wave.
	armWave := func() {
		arm := func(site string, steps ...faultpoint.Step) {
			if err := faultpoint.Arm(site, faultpoint.Any(steps...)); err != nil {
				t.Fatal(err)
			}
		}
		switch rng.Intn(4) {
		case 0:
			arm(solveSite, faultpoint.Skip(rng.Intn(3)), faultpoint.Error(1+rng.Intn(3), nil))
		case 1:
			arm(solveSite, faultpoint.Skip(rng.Intn(3)), faultpoint.Panic(1+rng.Intn(2), "chaos solve panic"))
		case 2:
			arm(solveSite, faultpoint.Latency(1+rng.Intn(6), time.Duration(1+rng.Intn(3))*time.Millisecond))
		case 3:
			// No solve-site faults this wave.
		}
		if rng.Intn(2) == 0 {
			arm("serve/backend/resolve", faultpoint.Skip(rng.Intn(4)), faultpoint.Error(1+rng.Intn(2), nil))
		}
		if kind == "pool" && rng.Intn(3) == 0 {
			arm("concretize/materialize", faultpoint.Error(1, nil))
		}
	}

	type waveResult struct {
		shape  string
		status int
		ok     ResolveResponse
		bad    ErrorResponse
		err    error
	}

	for round := 0; round < rounds; round++ {
		faultpoint.DisarmAll()
		recordOracle(uint64(backend.Epoch()))
		armWave()

		results := make([]waveResult, waveSize)
		var wg sync.WaitGroup
		for i := 0; i < waveSize; i++ {
			i, roots := i, shapes[rng.Intn(len(shapes))]
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := &results[i]
				r.shape = shapeKey(roots)
				r.status, r.ok, r.bad, r.err = postResolve(ts.URL, ResolveRequest{Roots: roots, TimeoutMS: 30000})
			}()
		}
		wg.Wait()
		faultpoint.DisarmAll()

		for i, r := range results {
			if r.err != nil {
				t.Fatalf("round %d request %d: transport error %v — a panic escaped?", round, i, r.err)
			}
			switch r.status {
			case http.StatusOK:
				epochAns, ok := history[r.ok.Epoch]
				if !ok {
					t.Fatalf("round %d: answer states unknown epoch %d", round, r.ok.Epoch)
				}
				want := epochAns[r.shape]
				if want.unsat {
					t.Fatalf("round %d: 200 for %s, oracle says unsat at epoch %d", round, r.shape, r.ok.Epoch)
				}
				if !r.ok.Optimal || r.ok.Cost != want.cost {
					t.Fatalf("round %d: %s answered cost=%d optimal=%v degraded=%v at epoch %d, oracle cost=%d",
						round, r.shape, r.ok.Cost, r.ok.Optimal, r.ok.Degraded, r.ok.Epoch, want.cost)
				}
			case http.StatusTooManyRequests, http.StatusInternalServerError,
				http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				// Sanctioned failure statuses under injected faults.
			default:
				t.Fatalf("round %d: %s got unsanctioned status %d (kind %q: %s)",
					round, r.shape, r.status, r.bad.Kind, r.bad.Error)
			}
		}

		// Grow the universe — sometimes with a faulted broadcast, which may
		// quarantine members (422) or trigger shard self-heals; either way
		// the universe advances and the oracle follows with the same delta.
		if rng.Intn(2) == 0 {
			if err := faultpoint.Arm("concretize/extend",
				faultpoint.Any(faultpoint.Skip(rng.Intn(3)), faultpoint.Error(1, nil))); err != nil {
				t.Fatal(err)
			}
		}
		pkg := fmt.Sprintf("dense%d", rng.Intn(pkgs))
		dep := fmt.Sprintf("dense%d", rng.Intn(pkgs))
		ver := fmt.Sprintf("%d.0", 100+round)
		buf, _ := json.Marshal(ApplyRequest{Adds: []VersionAddRequest{
			{Pkg: pkg, Version: ver, Deps: []DeclRequest{{Pkg: dep}}},
		}})
		resp, err := http.Post(ts.URL+"/v1/apply", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("round %d apply: %v", round, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("round %d apply status = %d", round, resp.StatusCode)
		}
		faultpoint.DisarmAll()
		d := resolve.NewDelta()
		d.Add(pkg, ver, repo.Dep(dep, ":"))
		if _, err := oracle.Apply(d); err != nil {
			t.Fatalf("round %d oracle apply: %v", round, err)
		}
		if oe, se := uint64(oracle.Epoch()), uint64(backend.Epoch()); oe != se {
			t.Fatalf("round %d: oracle epoch %d != server epoch %d", round, oe, se)
		}
	}

	// Recovery: with faults gone, one operator rebuild must restore full
	// capacity, and every shape must resolve fresh (non-degraded) with the
	// oracle's answer.
	faultpoint.DisarmAll()
	resp, err := http.Post(ts.URL+"/v1/rebuild", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery rebuild status = %d", resp.StatusCode)
	}
	final := uint64(backend.Epoch())
	recordOracle(final)
	for _, roots := range shapes {
		status, ok, bad, err := postResolve(ts.URL, ResolveRequest{Roots: roots, TimeoutMS: 30000})
		if err != nil || status != http.StatusOK {
			t.Fatalf("recovery resolve %v = %d (%s), %v", roots, status, bad.Error, err)
		}
		if ok.Degraded {
			t.Fatalf("recovery resolve %v still degraded", roots)
		}
		want := history[ok.Epoch][shapeKey(roots)]
		if want.unsat || !ok.Optimal || ok.Cost != want.cost {
			t.Fatalf("recovery resolve %v: cost=%d optimal=%v at epoch %d, oracle cost=%d",
				roots, ok.Cost, ok.Optimal, ok.Epoch, want.cost)
		}
	}
	st := s.Stats()
	for _, m := range st.Members {
		if m.Quarantined {
			t.Fatalf("member %s still benched after recovery: %s", m.Name, m.Error)
		}
	}
	if st.Pool != nil && st.Pool.Broken != 0 {
		t.Fatalf("%d pool shards still broken after recovery", st.Pool.Broken)
	}
}
