package serve

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/resolve"
)

// BenchmarkDaemonResolveWarm measures the serving pipeline's overhead on
// the dominant traffic shape: a repeated identical request answered from
// the session solution cache. This is coalescing-key computation + flight
// bookkeeping + result copy on top of the backend's cached answer.
func BenchmarkDaemonResolveWarm(b *testing.B) {
	u, root := repo.SynthDense(64, 8, 3, 42)
	s := New(resolve.NewSessionResolver(u, resolve.SessionOptions{}), Options{})
	req := resolve.Request{Roots: []resolve.Root{{Pkg: root}}, Objective: resolve.NewestVersion()}
	if _, _, err := s.resolve(context.Background(), req, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.resolve(context.Background(), req, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDaemonResolveStorm measures the same warm request under
// concurrency: duplicate arrivals either hit the cache or coalesce onto an
// in-flight leader, so the solver is touched at most once per wave.
func BenchmarkDaemonResolveStorm(b *testing.B) {
	u, root := repo.SynthDense(64, 8, 3, 42)
	s := New(resolve.NewSessionResolver(u, resolve.SessionOptions{}), Options{})
	req := resolve.Request{Roots: []resolve.Root{{Pkg: root}}, Objective: resolve.NewestVersion()}
	if _, _, err := s.resolve(context.Background(), req, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	var failed atomic.Bool
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := s.resolve(context.Background(), req, 10*time.Second); err != nil {
				failed.Store(true)
				return
			}
		}
	})
	if failed.Load() {
		b.Fatal("resolve failed under storm")
	}
}
