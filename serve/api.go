package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"github.com/paper-repo-growth/go-arxiv/internal/repo"
	"github.com/paper-repo-growth/go-arxiv/internal/version"
	"github.com/paper-repo-growth/go-arxiv/resolve"
)

// ResolveRequest is the wire form of POST /v1/resolve.
type ResolveRequest struct {
	// Roots are spec strings ("zlib", "zlib@1.2:", "virtual:mpi@2:"),
	// parsed by resolve.ParseRoot.
	Roots []string `json:"roots"`

	// Objective selects the ranking: "" or "newest" for NewestVersion,
	// "minimal-change" (with Installed) to minimize churn against a
	// profile.
	Objective string `json:"objective,omitempty"`

	// Installed is the minimal-change profile: package -> version.
	Installed map[string]string `json:"installed,omitempty"`

	// MaxConflicts bounds solver effort; <= 0 means unbounded.
	MaxConflicts int64 `json:"max_conflicts,omitempty"`

	// TimeoutMS is the per-request deadline in milliseconds; 0 selects the
	// server default, values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// StatsResponse is the per-answer effort report inside a ResolveResponse.
type StatsResponse struct {
	Packages         int   `json:"packages"`
	SolveCalls       int   `json:"solve_calls"`
	Improvements     int   `json:"improvements"`
	Conflicts        int64 `json:"conflicts"`
	Decisions        int64 `json:"decisions"`
	Propagations     int64 `json:"propagations"`
	SolutionCacheHit bool  `json:"solution_cache_hit"`
	BoundMemoHit     bool  `json:"bound_memo_hit"`
	Coalesced        bool  `json:"coalesced"`
}

// ResolveResponse is the wire form of a successful resolution. Degraded
// marks a stale-answer response: the backend could not answer, so the
// last-known-good resolution for this request shape was served — Epoch is
// then the (older) epoch that answer was computed at, bounded by the
// server's staleness policy, not the current universe epoch.
type ResolveResponse struct {
	Picks     map[string]string `json:"picks"`
	Cost      int64             `json:"cost"`
	Optimal   bool              `json:"optimal"`
	Config    string            `json:"config"`
	Epoch     uint64            `json:"epoch"`
	Degraded  bool              `json:"degraded,omitempty"`
	Coalesced bool              `json:"coalesced"`
	Stats     StatsResponse     `json:"stats"`
}

// ApplyRequest is the wire form of POST /v1/apply: an append-only batch of
// universe growth.
type ApplyRequest struct {
	Adds []VersionAddRequest `json:"adds"`
}

// VersionAddRequest is one new (package, version) with its declarations.
type VersionAddRequest struct {
	Pkg       string           `json:"pkg"`
	Version   string           `json:"version"`
	Deps      []DeclRequest    `json:"deps,omitempty"`
	Conflicts []DeclRequest    `json:"conflicts,omitempty"`
	Provides  []ProvideRequest `json:"provides,omitempty"`
}

// DeclRequest is one dependency or conflict declaration, optionally
// condition-guarded (when_pkg/when_range both set).
type DeclRequest struct {
	Pkg       string `json:"pkg"`
	Range     string `json:"range,omitempty"`
	WhenPkg   string `json:"when_pkg,omitempty"`
	WhenRange string `json:"when_range,omitempty"`
}

// ProvideRequest declares the added version provides a virtual interface.
type ProvideRequest struct {
	Virtual string `json:"virtual"`
	Version string `json:"version"`
}

// ApplyResponse reports the epoch the universe reached.
type ApplyResponse struct {
	Epoch uint64 `json:"epoch"`
}

// MemberHealthResponse is one portfolio member's state in GET /v1/stats.
// CrashLoop marks a sticky bench: the member exhausted its rebuild budget
// and stays out until POST /v1/rebuild.
type MemberHealthResponse struct {
	Name        string `json:"name"`
	Quarantined bool   `json:"quarantined"`
	CrashLoop   bool   `json:"crashloop,omitempty"`
	Epoch       uint64 `json:"epoch"`
	Error       string `json:"error,omitempty"`
}

// RebuildResponse is the wire form of POST /v1/rebuild: the members or
// shards the operator override healed (empty when nothing was benched).
type RebuildResponse struct {
	Healed []string `json:"healed"`
}

// EncodingResponse is one backend session's encoder-coverage snapshot in
// GET /v1/stats: how much of the bound universe the solver formula
// actually carries. For a lazy backend the materialized counts track the
// union of subgraphs requests have reached — the number that makes
// registry-scale universes servable.
type EncodingResponse struct {
	Lazy                 bool `json:"lazy"`
	MaterializedPackages int  `json:"materialized_packages"`
	UniversePackages     int  `json:"universe_packages"`
	SolverVars           int  `json:"solver_vars"`
}

// ShardStatsResponse is one pool shard's state in GET /v1/stats.
type ShardStatsResponse struct {
	Served    uint64           `json:"served"`
	CacheHits uint64           `json:"cache_hits"`
	HitRate   float64          `json:"hit_rate"`
	Inflight  int64            `json:"inflight"`
	Broken    bool             `json:"broken,omitempty"`
	CrashLoop bool             `json:"crashloop,omitempty"`
	Encoding  EncodingResponse `json:"encoding"`
}

// PoolStatsResponse is the pool backend's routing snapshot in GET
// /v1/stats: global routing counters plus per-shard hit rates.
type PoolStatsResponse struct {
	Shards   int                  `json:"shards"`
	Hits     uint64               `json:"hits"`
	Steals   uint64               `json:"steals"`
	Waits    uint64               `json:"waits"`
	Rebuilds uint64               `json:"rebuilds"`
	Panics   uint64               `json:"panics"`
	Broken   int                  `json:"broken"`
	Shard    []ShardStatsResponse `json:"shard"`
}

// ServerStats is the wire form of GET /v1/stats: the process-wide metrics
// registry plus backend observability.
type ServerStats struct {
	Requests  int64 `json:"requests"`
	Coalesced int64 `json:"coalesced"`
	Solves    int64 `json:"solves"`
	CacheHits int64 `json:"cache_hits"`
	MemoHits  int64 `json:"bound_memo_hits"`
	Unsat     int64 `json:"unsat"`
	Shed      int64 `json:"shed"`
	Timeouts  int64 `json:"timeouts"`
	Failures  int64 `json:"failures"`
	Applies   int64 `json:"applies"`
	Degraded  int64 `json:"degraded"`
	Retries   int64 `json:"retries"`
	Panics    int64 `json:"panics"`
	Rebuilds  int64 `json:"rebuilds"`

	P50Ms       float64 `json:"latency_p50_ms"`
	P90Ms       float64 `json:"latency_p90_ms"`
	P99Ms       float64 `json:"latency_p99_ms"`
	AvgSolveMs  float64 `json:"avg_solve_ms"`
	Inflight    int     `json:"inflight"`
	Queued      int     `json:"queued"`
	MaxInflight int     `json:"max_inflight"`

	Epoch         uint64                 `json:"epoch"`
	StaleCacheLen int                    `json:"stale_cache_len"`
	Faultpoints   []string               `json:"faultpoints,omitempty"`
	Members       []MemberHealthResponse `json:"members,omitempty"`
	Encoding      *EncodingResponse      `json:"encoding,omitempty"`
	Pool          *PoolStatsResponse     `json:"pool,omitempty"`
}

// ErrorResponse is the wire form of every non-2xx answer. Kind is a stable
// machine-readable discriminator; Roots carries unsat attribution, Member
// the portfolio configuration that produced the failure.
type ErrorResponse struct {
	Error  string   `json:"error"`
	Kind   string   `json:"kind"`
	Roots  []string `json:"roots,omitempty"`
	Member string   `json:"member,omitempty"`
}

// Admission-control rejections. Both are "shed" on the wire; the status
// code distinguishes hard queue overflow (429) from deadline-infeasible
// waits (503).
var (
	// errShedQueue rejects a request because the admission queue is full.
	errShedQueue = errors.New("serve: admission queue full")
	// errShedWait rejects a request because the estimated queue wait
	// exceeds its deadline, or its deadline fired while queued.
	errShedWait = errors.New("serve: estimated queue wait exceeds request deadline")
)

// toRequest lowers the wire request into a resolve.Request.
func (wr *ResolveRequest) toRequest() (resolve.Request, error) {
	if len(wr.Roots) == 0 {
		return resolve.Request{}, fmt.Errorf("no roots")
	}
	req := resolve.Request{MaxConflicts: wr.MaxConflicts}
	for _, s := range wr.Roots {
		r, err := resolve.ParseRoot(s)
		if err != nil {
			return resolve.Request{}, err
		}
		req.Roots = append(req.Roots, r)
	}
	switch wr.Objective {
	case "", "newest":
		req.Objective = resolve.NewestVersion()
	case "minimal-change":
		prof := make(repo.Profile, len(wr.Installed))
		for pkg, vs := range wr.Installed {
			v, err := version.Parse(vs)
			if err != nil {
				return resolve.Request{}, fmt.Errorf("installed[%s]: %v", pkg, err)
			}
			prof[pkg] = v
		}
		req.Objective = resolve.MinimalChange(prof)
	default:
		return resolve.Request{}, fmt.Errorf("unknown objective %q", wr.Objective)
	}
	return req, nil
}

// toDelta lowers the wire apply body into a repo.Delta, validating every
// version and range string up front (repo.Delta.Add panics on malformed
// literals; wire input must never reach that path).
func (ar *ApplyRequest) toDelta() (*resolve.Delta, error) {
	if len(ar.Adds) == 0 {
		return nil, fmt.Errorf("empty delta")
	}
	d := resolve.NewDelta()
	for i, a := range ar.Adds {
		if a.Pkg == "" {
			return nil, fmt.Errorf("adds[%d]: empty package name", i)
		}
		if _, err := version.Parse(a.Version); err != nil {
			return nil, fmt.Errorf("adds[%d]: %v", i, err)
		}
		var decls []repo.Decl
		for _, dr := range a.Deps {
			dep, err := dr.lower(i)
			if err != nil {
				return nil, err
			}
			decls = append(decls, repo.Dependency(dep))
		}
		for _, dr := range a.Conflicts {
			c, err := dr.lower(i)
			if err != nil {
				return nil, err
			}
			decls = append(decls, repo.Conflict(c))
		}
		for _, pr := range a.Provides {
			v, err := version.Parse(pr.Version)
			if err != nil {
				return nil, fmt.Errorf("adds[%d] provides %s: %v", i, pr.Virtual, err)
			}
			decls = append(decls, repo.Provides{Virtual: pr.Virtual, Version: v})
		}
		d.Add(a.Pkg, a.Version, decls...)
	}
	return d, nil
}

// lower parses one declaration's ranges; the dependency and conflict
// shapes are structurally identical.
func (dr DeclRequest) lower(i int) (repo.Dependency, error) {
	if dr.Pkg == "" {
		return repo.Dependency{}, fmt.Errorf("adds[%d]: declaration with empty target", i)
	}
	rngStr := dr.Range
	if rngStr == "" {
		rngStr = ":" // any version
	}
	rng, err := version.ParseRange(rngStr)
	if err != nil {
		return repo.Dependency{}, fmt.Errorf("adds[%d] %s: %v", i, dr.Pkg, err)
	}
	dep := repo.Dependency{Pkg: dr.Pkg, Range: rng}
	if dr.WhenPkg != "" {
		wrng, err := version.ParseRange(orAny(dr.WhenRange))
		if err != nil {
			return repo.Dependency{}, fmt.Errorf("adds[%d] %s when: %v", i, dr.Pkg, err)
		}
		dep.When = repo.Condition{Pkg: dr.WhenPkg, Range: wrng}
	}
	return dep, nil
}

func orAny(rng string) string {
	if rng == "" {
		return ":"
	}
	return rng
}

// isPanicError reports whether err carries a contained panic.
func isPanicError(err error) bool {
	var pe *resolve.PanicError
	return errors.As(err, &pe)
}

// errorStatus maps the resolver's typed error taxonomy onto HTTP: request
// defects are 4xx, capacity and deadline outcomes distinct 429/503/504,
// contained panics 500 with kind "panic", everything else 500. Attribution
// (unsat roots, portfolio member) rides in the body so operators can tell
// *which* configuration proved unsat.
func errorStatus(err error) (int, ErrorResponse) {
	resp := ErrorResponse{Error: err.Error()}
	var me *resolve.MemberError
	if errors.As(err, &me) {
		resp.Member = me.Member
	}
	var unknown *resolve.UnknownPackageError
	var unsat *resolve.UnsatError
	switch {
	case errors.As(err, &unknown):
		resp.Kind = "unknown_package"
		return http.StatusBadRequest, resp
	case errors.As(err, &unsat):
		resp.Kind = "unsat"
		for _, r := range unsat.Roots {
			resp.Roots = append(resp.Roots, r.String())
		}
		return http.StatusUnprocessableEntity, resp
	case errors.Is(err, resolve.ErrBudget):
		resp.Kind = "budget"
		return http.StatusServiceUnavailable, resp
	case errors.Is(err, errShedQueue):
		resp.Kind = "shed"
		return http.StatusTooManyRequests, resp
	case errors.Is(err, errShedWait):
		resp.Kind = "shed"
		return http.StatusServiceUnavailable, resp
	case errors.Is(err, context.DeadlineExceeded):
		resp.Kind = "timeout"
		return http.StatusGatewayTimeout, resp
	case errors.Is(err, context.Canceled):
		resp.Kind = "canceled"
		return http.StatusServiceUnavailable, resp
	case errors.Is(err, resolve.ErrNoActiveMembers):
		resp.Kind = "no_members"
		return http.StatusServiceUnavailable, resp
	case isPanicError(err):
		resp.Kind = "panic"
		return http.StatusInternalServerError, resp
	default:
		resp.Kind = "internal"
		return http.StatusInternalServerError, resp
	}
}
