package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/paper-repo-growth/go-arxiv/internal/version"
	"github.com/paper-repo-growth/go-arxiv/resolve"
)

// stubBackend is a controllable Backend: it counts solves, optionally
// blocks each solve until released (so tests hold a flight open while a
// storm piles onto it), and returns the same Picks map on every call —
// which is exactly what makes it a probe for the per-caller copy
// contract.
type stubBackend struct {
	solves atomic.Int64
	block  chan struct{} // non-nil: solves wait for close (or ctx)
	epoch  atomic.Uint64
	picks  map[string]version.Version
	err    error
}

func (b *stubBackend) Resolve(ctx context.Context, req resolve.Request) (*resolve.Result, error) {
	b.solves.Add(1)
	if b.block != nil {
		select {
		case <-b.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if b.err != nil {
		return nil, b.err
	}
	return &resolve.Result{
		Picks:  b.picks,
		Stats:  resolve.Stats{Optimal: true, Cost: 1, Epoch: resolve.Epoch(b.epoch.Load())},
		Config: "stub",
	}, nil
}

func (b *stubBackend) Apply(d *resolve.Delta) (resolve.Epoch, error) {
	return resolve.Epoch(b.epoch.Add(1)), nil
}

func (b *stubBackend) Epoch() resolve.Epoch { return resolve.Epoch(b.epoch.Load()) }

func stubPicks() map[string]version.Version {
	return map[string]version.Version{"pkg": version.MustParse("1.0")}
}

// postResolve fires one resolve request and decodes whichever shape came
// back. It returns rather than failing so it is safe from spawned
// goroutines; callers assert on the main test goroutine.
func postResolve(url string, body ResolveRequest) (status int, ok ResolveResponse, bad ErrorResponse, err error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, ok, bad, err
	}
	resp, err := http.Post(url+"/v1/resolve", "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, ok, bad, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		err = json.NewDecoder(resp.Body).Decode(&ok)
	} else {
		err = json.NewDecoder(resp.Body).Decode(&bad)
	}
	return resp.StatusCode, ok, bad, err
}

// TestDaemonCoalesceStorm is the serving tier's keystone pin, run under
// -race in CI: N concurrent identical requests produce EXACTLY ONE
// backend solve. The stub blocks the leader's solve until the join-time
// coalesce counter proves every follower has attached, so the assertion
// is deterministic, not timing-dependent.
func TestDaemonCoalesceStorm(t *testing.T) {
	const n = 24
	b := &stubBackend{block: make(chan struct{}), picks: stubPicks()}
	s := New(b, Options{MaxInflight: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	results := make([]ResolveResponse, n)
	statuses := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			statuses[i], results[i], _, errs[i] = postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}, TimeoutMS: 30000})
		}()
	}

	// Gate: release the leader only once every duplicate has attached to
	// its flight (followers are counted at join time).
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.coalesced.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers attached", s.metrics.coalesced.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(b.block)
	wg.Wait()

	if got := b.solves.Load(); got != 1 {
		t.Fatalf("backend solves = %d, want exactly 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if results[i].Picks["pkg"] != "1.0" {
			t.Fatalf("request %d: picks %v", i, results[i].Picks)
		}
		if !results[i].Coalesced {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
	st := s.Stats()
	if st.Requests != n || st.Coalesced != n-1 || st.Solves != 1 {
		t.Fatalf("stats requests=%d coalesced=%d solves=%d, want %d/%d/1", st.Requests, st.Coalesced, st.Solves, n, n-1)
	}
}

// TestCoalesceEpochKeying: requests arriving after an Apply must not
// share a pre-delta flight — the epoch in the key splits them.
func TestCoalesceEpochKeying(t *testing.T) {
	b := &stubBackend{block: make(chan struct{}), picks: stubPicks()}
	s := New(b, Options{MaxInflight: 4})

	req := resolve.Request{Roots: []resolve.Root{{Pkg: "pkg"}}}
	done := make(chan error, 2)
	go func() {
		_, _, err := s.resolve(context.Background(), req, 10*time.Second)
		done <- err
	}()
	// Wait for the leader to be in flight.
	waitFor(t, func() bool { return b.solves.Load() == 1 })

	// A delta lands: the universe moves to epoch 1.
	if _, err := s.backend.Apply(resolve.NewDelta()); err != nil {
		t.Fatal(err)
	}
	// A post-delta arrival must start a fresh flight (it would otherwise
	// inherit a pre-delta answer).
	go func() {
		_, _, err := s.resolve(context.Background(), req, 10*time.Second)
		done <- err
	}()
	waitFor(t, func() bool { return b.solves.Load() == 2 })
	close(b.block)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.metrics.coalesced.Load(); got != 0 {
		t.Fatalf("coalesced = %d, want 0 (epochs differ)", got)
	}
}

// TestCoalescedPicksOwnership: the stub hands out ONE shared map; every
// caller — leader and follower alike — must receive an independent copy,
// so mutating a returned Picks can poison neither the flight nor any
// other caller (the serving-tier leg of the Result.Picks ownership
// contract).
func TestCoalescedPicksOwnership(t *testing.T) {
	b := &stubBackend{block: make(chan struct{}), picks: stubPicks()}
	s := New(b, Options{MaxInflight: 2})

	req := resolve.Request{Roots: []resolve.Root{{Pkg: "pkg"}}}
	type out struct {
		res *resolve.Result
		err error
	}
	outs := make(chan out, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, _, err := s.resolve(context.Background(), req, 10*time.Second)
			outs <- out{res, err}
		}()
	}
	waitFor(t, func() bool {
		return b.solves.Load() == 1 && s.metrics.coalesced.Load() == 1
	})
	close(b.block)
	a, bres := <-outs, <-outs
	if a.err != nil || bres.err != nil {
		t.Fatal(a.err, bres.err)
	}
	if reflect.ValueOf(a.res.Picks).Pointer() == reflect.ValueOf(bres.res.Picks).Pointer() {
		t.Fatal("leader and follower share one Picks map")
	}
	// Poison one caller's copy; the other and the backend's original must
	// be untouched.
	a.res.Picks["pkg"] = version.MustParse("66.6")
	a.res.Picks["evil"] = version.MustParse("1.0")
	if got := bres.res.Picks["pkg"].String(); got != "1.0" || len(bres.res.Picks) != 1 {
		t.Fatalf("sibling caller sees poisoned picks: %v", bres.res.Picks)
	}
	if got := b.picks["pkg"].String(); got != "1.0" || len(b.picks) != 1 {
		t.Fatalf("backend map poisoned: %v", b.picks)
	}
	// Exactly one caller was stamped coalesced.
	stamped := 0
	if a.res.Stats.Coalesced {
		stamped++
	}
	if bres.res.Stats.Coalesced {
		stamped++
	}
	if stamped != 1 {
		t.Fatalf("coalesced stamps = %d, want 1", stamped)
	}
}

// TestShedQueueFull: with the queue disabled and the only slot occupied,
// a non-duplicate request is rejected 429 within a small fraction of its
// deadline — shedding must cost microseconds, not the deadline.
func TestShedQueueFull(t *testing.T) {
	b := &stubBackend{block: make(chan struct{}), picks: stubPicks()}
	s := New(b, Options{MaxInflight: 1, MaxQueue: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}, TimeoutMS: 30000})
	}()
	waitFor(t, func() bool { return s.inflight.Load() == 1 })

	const deadline = 10 * time.Second
	start := time.Now()
	status, _, er, err := postResolve(ts.URL, ResolveRequest{Roots: []string{"other"}, TimeoutMS: int64(deadline / time.Millisecond)})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", status, er.Error)
	}
	if er.Kind != "shed" {
		t.Fatalf("kind = %q, want shed", er.Kind)
	}
	if elapsed > deadline/10 {
		t.Fatalf("shed took %v — not a fast rejection against a %v deadline", elapsed, deadline)
	}
	close(b.block)
	<-leaderDone
	if got := s.metrics.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}

// TestShedDeadlineInfeasible: when the estimated queue wait exceeds the
// request's deadline, the request is rejected 503 immediately instead of
// queuing to die.
func TestShedDeadlineInfeasible(t *testing.T) {
	b := &stubBackend{block: make(chan struct{}), picks: stubPicks()}
	s := New(b, Options{MaxInflight: 1, MaxQueue: 100})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Teach the wait estimator that solves take ~30s.
	s.metrics.ewmaNs.Store(int64(30 * time.Second))

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}, TimeoutMS: 30000})
	}()
	waitFor(t, func() bool { return s.inflight.Load() == 1 })

	start := time.Now()
	status, _, er, err := postResolve(ts.URL, ResolveRequest{Roots: []string{"other"}, TimeoutMS: 500})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", status, er.Error)
	}
	if er.Kind != "shed" {
		t.Fatalf("kind = %q, want shed", er.Kind)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("infeasible-deadline shed took %v, want immediate", elapsed)
	}
	close(b.block)
	<-leaderDone
}

// TestFollowerHonorsOwnDeadline: a follower with a short deadline gives
// up with a timeout while the leader keeps solving — coalescing shares
// answers, not fates.
func TestFollowerHonorsOwnDeadline(t *testing.T) {
	b := &stubBackend{block: make(chan struct{}), picks: stubPicks()}
	s := New(b, Options{MaxInflight: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	leaderDone := make(chan struct{})
	var leaderStatus atomic.Int64
	go func() {
		defer close(leaderDone)
		status, _, _, _ := postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}, TimeoutMS: 30000})
		leaderStatus.Store(int64(status))
	}()
	waitFor(t, func() bool { return b.solves.Load() == 1 })

	status, _, er, err := postResolve(ts.URL, ResolveRequest{Roots: []string{"pkg"}, TimeoutMS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("follower status = %d (kind %s), want 504", status, er.Kind)
	}
	if got := b.solves.Load(); got != 1 {
		t.Fatalf("follower timeout triggered %d solves, want 1", got)
	}
	close(b.block)
	<-leaderDone
	if got := leaderStatus.Load(); got != http.StatusOK {
		t.Fatalf("leader status = %d, want 200", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(time.Millisecond)
	}
}
